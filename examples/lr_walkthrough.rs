//! A guided walkthrough of the LR-sorting protocol (§4 of the paper) on a
//! small instance: prints the block construction, the per-node labels of
//! every prover round, and the verification-scheme multisets, so the
//! machinery of Lemma 4.1 can be read off directly.
//!
//! ```text
//! cargo run --example lr_walkthrough
//! ```

use planarity_dip::graph::gen::lr::random_lr_yes;
use planarity_dip::protocols::{LrParams, LrSorting, Transport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n = 24;
    let mut rng = SmallRng::seed_from_u64(5);
    let inst = random_lr_yes(n, 10, true, &mut rng);
    let lr = LrSorting::new(&inst, LrParams::default(), Transport::Native);

    println!("LR-sorting on n = {n} nodes, m = {} edges", inst.graph.m());
    println!("block length L = ⌈log₂ n⌉ = {}", lr.block_len);
    println!(
        "fields: 𝔽_p with p = {} ({} bits), 𝔽_p' with p' = {} ({} bits)\n",
        lr.field_p.modulus(),
        lr.field_p.element_bits(),
        lr.field_pp.modulus(),
        lr.field_pp.element_bits()
    );

    println!("path order (node ids left to right):");
    println!("  {:?}\n", inst.path);

    let res = lr.run(None, 77);
    println!("honest run: accepted = {}", res.accepted());
    println!("prover rounds (P1, P2, P3) max label bits: {:?}", res.stats.per_round_max_bits);
    println!("proof size (longest label): {} bits", res.stats.proof_size());
    println!("verifier coins: {} bits total over 2 verifier rounds\n", res.stats.coin_bits);

    println!("What each round carries (see §4 of the paper / lr_sorting.rs):");
    println!("  P1  block index i_v, the i-th bits of pos(b) and pos(b)+1, the");
    println!("      increment-pivot mark, the verification multiplicities, and");
    println!("      per-edge inner/outer flags with distinguishing indices.");
    println!("  V1  the path head samples r, r'; every block head samples r_b.");
    println!("  P2  echoes of r, r', r_b; the cumulative evaluations A2/B1 for");
    println!("      the adjacent-block equality x2(b) = x1(b'); the prefix");
    println!("      evaluations φ_i(r'); per-outer-edge commitments φ_(I-1)(r').");
    println!("  V2  block heads sample the verification challenges z0, z1.");
    println!("  P3  two in-block multiset equalities: C1(b) vs D1(b) and");
    println!("      C0(b) vs D0(b), aggregated along the block path.");

    // Show that one flipped edge flips the verdict.
    let mut bad = inst.clone();
    let non_path = (0..bad.graph.m())
        .find(|e| !bad.path_edges.contains(e))
        .expect("instance has a non-path edge");
    bad.orientation.flip(non_path);
    let lr_bad = LrSorting::new(&bad, LrParams::default(), Transport::Native);
    let mut rejected = 0;
    let trials = 50;
    for seed in 0..trials {
        if !lr_bad.run(Some(planarity_dip::protocols::LrCheat::OuterForgedIndex), seed).accepted() {
            rejected += 1;
        }
    }
    println!(
        "\nafter flipping one edge and playing the strongest cheat: rejected {rejected}/{trials} runs"
    );
}
