//! Figure 1 of the paper, reproduced: the anatomy of a path-outerplanar
//! graph — longest left/right edges, successors, and the `above`
//! assignment — on the paper's own six-node example.
//!
//! The figure shows path a–b–c–d–e–f with arcs (c,e), (c,f), (b,f) and
//! states: "The longest c-right edge is (c,f); the longest f-left edge is
//! (b,f); the successor of (c,e) is (c,f)." This example recomputes all
//! of that with the prover's sweep and then runs the full Theorem 1.2
//! protocol on the instance.
//!
//! ```text
//! cargo run --example figure1_anatomy
//! ```

use planarity_dip::dip::Tag;
use planarity_dip::graph::Graph;
use planarity_dip::protocols::nesting;
use planarity_dip::protocols::{PathOuterplanarity, PopInstance, PopParams, Transport};

const NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

fn main() {
    // Path a(0) - b(1) - c(2) - d(3) - e(4) - f(5), arcs per Figure 1.
    let mut g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
    let ce = g.add_edge(2, 4);
    let cf = g.add_edge(2, 5);
    let bf = g.add_edge(1, 5);
    let path: Vec<usize> = (0..6).collect();

    println!("Figure 1: path a-b-c-d-e-f with arcs (c,e), (c,f), (b,f)\n");

    // Deterministic position tags make the labels easy to read.
    let positions: Vec<usize> = (0..6).collect();
    let mut is_path_edge = vec![false; g.m()];
    for i in 0..5 {
        is_path_edge[g.edge_between(i, i + 1).unwrap()] = true;
    }
    let tags: Vec<Tag> = (0..6).map(|v| Tag { value: v as u64, bits: 3 }).collect();
    let labels = nesting::sweep_assign(&g, &positions, &path, &is_path_edge, &tags);

    let show_name = |name: (Tag, Tag)| {
        format!("({}, {})", NAMES[name.0.value as usize], NAMES[name.1.value as usize])
    };
    for (arc, label_id) in [("(c,e)", ce), ("(c,f)", cf), ("(b,f)", bf)] {
        let l = labels.arcs[label_id].expect("arc label");
        println!(
            "arc {arc}: longest-right-of-tail = {:<5} longest-left-of-head = {:<5} succ = {}",
            l.longest_right_of_tail,
            l.longest_left_of_head,
            l.succ.map(show_name).unwrap_or_else(|| "⊥ (virtual)".into()),
        );
    }
    println!();
    for (v, name) in NAMES.iter().enumerate() {
        println!(
            "above({}) = {}",
            name,
            labels.above[v].above.map(show_name).unwrap_or_else(|| "⊥".into())
        );
    }

    // The paper's three claims:
    assert!(labels.arcs[cf].unwrap().longest_right_of_tail, "(c,f) is the longest c-right edge");
    assert!(labels.arcs[bf].unwrap().longest_left_of_head, "(b,f) is the longest f-left edge");
    let succ_ce = labels.arcs[ce].unwrap().succ.expect("(c,e) has a successor");
    assert_eq!((succ_ce.0.value, succ_ce.1.value), (2, 5), "succ(c,e) = (c,f)");
    println!("\nAll three Figure-1 claims verified. ✓");

    // And the full 5-round protocol accepts the instance.
    let inst = PopInstance { graph: g, witness: Some(path), is_yes: true };
    let proto = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
    let res = proto.run(None, 7);
    println!(
        "Theorem 1.2 protocol: verdict = {}, proof size = {} bits over {} rounds.",
        if res.accepted() { "accept" } else { "reject" },
        res.stats.proof_size(),
        res.stats.rounds,
    );
    assert!(res.accepted());
}
