//! Soundness duel: every protocol against its cheating provers.
//!
//! Generates structured no-instances for all six families, lets each
//! implemented cheating strategy attack the verifier repeatedly, and
//! prints the measured acceptance rates — the empirical counterpart of
//! the 1/polylog n soundness errors of Theorems 1.2–1.7.
//!
//! ```text
//! cargo run --release --example soundness_duel
//! ```

use planarity_dip::dip::DipProtocol;
use planarity_dip::graph::gen;
use planarity_dip::protocols::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn duel(p: &dyn DipProtocol, trials: usize) {
    for (s, name) in p.cheat_names().into_iter().enumerate() {
        let mut accepted = 0;
        for t in 0..trials {
            if p.run_cheat(s, 10_000 + t as u64).accepted() {
                accepted += 1;
            }
        }
        println!(
            "  {:<28} vs {:<24} accepted {:>3}/{trials}  ({:.1}%)",
            p.name(),
            name,
            accepted,
            100.0 * accepted as f64 / trials as f64
        );
    }
}

fn main() {
    let trials = 60;
    let mut rng = SmallRng::seed_from_u64(99);
    println!("cheating provers vs verifiers ({trials} trials each)\n");

    let g = gen::no_instances::outerplanar_no_hamiltonian_path(5, &mut rng);
    let inst = PopInstance { graph: g, witness: None, is_yes: false };
    duel(&PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native), trials);

    let g = gen::no_instances::planar_not_outerplanar(16, &mut rng);
    let inst = OpInstance { graph: g, is_yes: false };
    duel(&Outerplanarity::new(&inst, PopParams::default(), Transport::Native), trials);

    let bad = gen::planar::scrambled_embedding(40, &mut rng);
    let inst = EmbInstance { graph: bad.graph, rho: bad.rho, is_yes: false };
    duel(&EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native), trials);

    let g = gen::no_instances::nonplanar_with_gadget(24, 1, true, &mut rng);
    let inst = PlInstance { graph: g, witness_rho: None, is_yes: false };
    duel(&Planarity::new(&inst, PopParams::default(), Transport::Native), trials);

    let g = gen::no_instances::tw2_violator(3, 1, &mut rng);
    let inst = SpaInstance { graph: g, is_yes: false };
    duel(&SeriesParallel::new(&inst, PopParams::default(), Transport::Native), trials);

    let g = gen::no_instances::tw2_violator(4, 1, &mut rng);
    let inst = Tw2Instance { graph: g, is_yes: false };
    duel(&Treewidth2::new(&inst, PopParams::default(), Transport::Native), trials);

    println!("\nEvery rate should sit near the 1/polylog n soundness error of the theorems.");
}
