//! Figure 3 of the paper, reproduced: the reduction from planar embedding
//! to path-outerplanarity. An embedded planar graph `G` with spanning tree
//! `T` is cut along the tree; the Euler-tour boundary walk becomes the
//! path `P(G,T,ρ)` and every non-tree edge becomes an arc. The rotation
//! system is a valid planar embedding iff the arcs nest (Lemma 7.3).
//!
//! The example prints the tour and arcs for a small embedded wheel, then
//! shows the same construction detecting a deliberately scrambled
//! rotation.
//!
//! ```text
//! cargo run --example figure3_reduction
//! ```

use planarity_dip::graph::gen::planar::random_triangulation;
use planarity_dip::graph::{is_path_outerplanar_with, RootedForest};
use planarity_dip::protocols::build_reduction;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(3);
    let inst = random_triangulation(8, &mut rng);
    let g = &inst.graph;
    println!(
        "G: a random planar triangulation with n = {}, m = {} and its exact embedding ρ.",
        g.n(),
        g.m()
    );
    let tree = RootedForest::bfs_spanning_tree(g, 0);
    let red = build_reduction(g, &inst.rho, &tree, 0);
    println!(
        "h(G,T,ρ): boundary path of {} copies (anchors + edge-ends), {} arcs.",
        red.h.n(),
        red.h.m() - (red.h.n() - 1)
    );
    print!("copy owners along P: ");
    for &v in red.copy_of.iter().take(20) {
        print!("{v} ");
    }
    println!("...");
    let nested = is_path_outerplanar_with(&red.h, &red.path);
    println!("arcs properly nested (Lemma 7.3, ⇒ direction): {nested}");
    assert!(nested);

    // Scramble one rotation: the same construction now produces a crossing.
    let bad = planarity_dip::graph::gen::planar::scrambled_embedding(8, &mut rng);
    let tree2 = RootedForest::bfs_spanning_tree(&bad.graph, 0);
    let red2 = build_reduction(&bad.graph, &bad.rho, &tree2, 0);
    let nested2 = is_path_outerplanar_with(&red2.h, &red2.path);
    println!(
        "\nscrambled ρ' (genus defect {}): arcs nested = {nested2} (Lemma 7.3, ⇐ direction)",
        bad.rho.euler_genus_defect(&bad.graph)
    );
    assert!(!nested2);
    println!("\nLemma 7.3 verified in both directions. ✓");
}
