//! Quickstart: generate an instance of every graph family of the paper,
//! run the corresponding 5-round distributed interactive proof with the
//! honest prover, and print the verdict, round count and proof size.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use planarity_dip::dip::DipProtocol;
use planarity_dip::graph::gen;
use planarity_dip::protocols::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn report(p: &dyn DipProtocol, seed: u64) {
    let res = p.run_honest(seed);
    println!(
        "{:<24} n = {:>5}   rounds = {}   proof size = {:>4} bits   verdict = {}",
        p.name(),
        p.instance_size(),
        p.rounds(),
        res.stats.proof_size(),
        if res.accepted() { "accept" } else { "REJECT" },
    );
    assert!(res.accepted(), "honest runs must accept: {:?}", res.rejections.first());
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);
    let n = 512;
    println!("planarity-dip quickstart — honest runs on n = {n} instances\n");

    let g = gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
    let inst = PopInstance { graph: g.graph, witness: Some(g.path), is_yes: true };
    report(&PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native), 1);

    let g = gen::outerplanar::random_outerplanar(n, 8, 0.5, &mut rng);
    let inst = OpInstance { graph: g.graph, is_yes: true };
    report(&Outerplanarity::new(&inst, PopParams::default(), Transport::Native), 2);

    let g = gen::planar::random_planar(n, 0.5, &mut rng);
    let inst = EmbInstance { graph: g.graph, rho: g.rho, is_yes: true };
    report(&EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native), 3);

    let g = gen::planar::random_planar(n, 0.5, &mut rng);
    let inst = PlInstance { graph: g.graph, witness_rho: Some(g.rho), is_yes: true };
    report(&Planarity::new(&inst, PopParams::default(), Transport::Native), 4);

    let g = gen::sp::random_series_parallel(n / 2, &mut rng);
    let inst = SpaInstance { graph: g.graph, is_yes: true };
    report(&SeriesParallel::new(&inst, PopParams::default(), Transport::Native), 5);

    let g = gen::sp::random_treewidth2(8, n / 16, &mut rng);
    let inst = Tw2Instance { graph: g.graph, is_yes: true };
    report(&Treewidth2::new(&inst, PopParams::default(), Transport::Native), 6);

    println!("\nAnd the Θ(log n) one-round baseline for comparison:");
    let g = gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
    let pls =
        pls_baseline::PlsPathOuterplanar { graph: &g.graph, witness: Some(&g.path), is_yes: true };
    report(&pls, 7);
}
