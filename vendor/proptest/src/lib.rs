//! Offline drop-in subset of the [`proptest`] API.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of proptest its test suites use: the [`proptest!`] macro with an
//! optional `#![proptest_config(..)]` header, range/collection/sample
//! strategies, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * Inputs are sampled from a deterministic per-test RNG (seeded from the
//!   test's name), not from a persisted failure file. Re-running a test
//!   replays the identical case sequence.
//! * There is **no shrinking**: a failing case reports the exact inputs
//!   that failed (they replay deterministically), rather than a minimized
//!   counterexample.
//!
//! [`proptest`]: https://docs.rs/proptest

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod prelude;

/// How many cases a property runs, mirror of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (what `prop_assert!` returns early with).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure reason.
    pub reason: String,
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError { reason: reason.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}

/// A value generator. Unlike real proptest there is no value tree /
/// shrinking; a strategy just samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// A strategy producing one constant value, mirror of `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Sub-strategies under the `prop::` path.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy for `Vec`s with sampled length and elements.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Generates vectors whose lengths lie in `len` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling strategies (`prop::sample::select`).
    pub mod sample {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Uniform choice among `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut SmallRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test path, fed to the same
/// SmallRng the rest of the workspace uses.
pub fn rng_for_test(name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Re-seeds per case so a failing case is replayable in isolation.
pub fn rng_for_case(test_rng: &mut SmallRng) -> SmallRng {
    SmallRng::seed_from_u64(test_rng.next_u64())
}

/// Mirror of `proptest::proptest!`: takes an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$attr:meta])* fn $name:ident(
        $($pname:ident in $pstrat:expr),+ $(,)?
    ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut test_rng =
                    $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut rng = $crate::rng_for_case(&mut test_rng);
                    $(let $pname = $crate::Strategy::sample(&($pstrat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($pname), " = {:?}, "),+),
                        $(&$pname),+
                    );
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    )));
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(left == right) {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        $($fmt)*
                    )));
                }
            }
        }
    };
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        match (&$a, &$b) {
            (left, right) => {
                if left == right {
                    return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left
                    )));
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn select_and_vec_strategies(
            pick in prop::sample::select(vec!["a", "b", "c"]),
            v in prop::collection::vec(0u32..100, 1..8),
        ) {
            prop_assert!(["a", "b", "c"].contains(&pick));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn question_mark_propagates(n in 1usize..50) {
            let helper = || -> Result<usize, TestCaseError> { Ok(n * 2) };
            let doubled = helper()?;
            prop_assert_eq!(doubled, n * 2);
        }
    }

    #[test]
    fn deterministic_replay() {
        let mut a = crate::rng_for_test("some::test");
        let mut b = crate::rng_for_test("some::test");
        let ra = (0u64..1000).sample(&mut a);
        let rb = (0u64..1000).sample(&mut b);
        assert_eq!(ra, rb);
    }
}
