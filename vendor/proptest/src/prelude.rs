//! The glob-import surface, mirror of `proptest::prelude`.

pub use crate::{prop, Just, ProptestConfig, Strategy, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
