//! Offline drop-in subset of the [`rand`] 0.8 API.
//!
//! The build container has no network access and no crates-io cache, so the
//! workspace vendors the exact slice of `rand` it uses as a path crate. The
//! implementation is **bit-for-bit compatible** with `rand 0.8.5` for every
//! code path this repository exercises:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ (the 64-bit `SmallRng` of rand 0.8),
//!   and [`SeedableRng::seed_from_u64`] expands the seed with the same PCG32
//!   stream `rand_core 0.6` uses, so `SmallRng::seed_from_u64(s)` produces
//!   the identical output sequence.
//! * [`Rng::gen_range`] implements the widening-multiply rejection sampler
//!   (`sample_single_inclusive`) of rand 0.8's `UniformInt`.
//! * [`Rng::gen_bool`] matches `Bernoulli::new` (53-bit scaled integer
//!   comparison), and [`seq::SliceRandom::shuffle`] is the same downward
//!   Fisher–Yates over `gen_range(0..=i)`.
//!
//! Anything the repository does not call (thread rngs, OS entropy, weighted
//! sampling, distributions beyond `Standard`) is intentionally absent.
//!
//! [`rand`]: https://docs.rs/rand/0.8

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: raw word output.
///
/// Mirror of `rand_core::RngCore` (sans `try_fill_bytes`).
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes (little-endian `u64` stream).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// Panics when the range is empty, like rand 0.8.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`, like rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p == 1.0 {
            return true;
        }
        // Bernoulli::new: p scaled into a 64-bit integer threshold.
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from fixed data, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32, exactly as
    /// `rand_core 0.6`'s default implementation does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seed_from_u64_reference_stream() {
        // First outputs of rand 0.8.5 SmallRng::seed_from_u64(0) on a
        // 64-bit target (xoshiro256++ seeded via the PCG32 expander).
        let mut rng = SmallRng::seed_from_u64(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let mut rng2 = SmallRng::seed_from_u64(0);
        assert_eq!(a, rng2.next_u64());
        assert_eq!(b, rng2.next_u64());
        assert_ne!(a, b);
        // Distinct seeds diverge immediately.
        let mut rng3 = SmallRng::seed_from_u64(1);
        assert_ne!(a, rng3.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: u32 = rng.gen_range(0..1_000_000u32);
            assert!(z < 1_000_000);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: usize = rng.gen_range(5..5);
    }
}
