//! The `Standard` distribution and uniform range sampling, matching the
//! algorithms (and therefore the output streams) of rand 0.8.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full-range uniform for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        // 64-bit targets draw a full u64, as rand does.
        rng.next_u64() as usize
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit mantissa in [0, 1), the "multiply-based" conversion.
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

/// Uniform range sampling, mirror of `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// Types with a uniform range sampler.
    pub trait SampleUniform: Sized + PartialOrd + Copy {
        /// Uniform sample from `[low, high]`.
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

        /// Uniform sample from `[low, high)`; `low < high` already checked.
        /// Integer impls reduce to `sample_inclusive(low, high - 1)`,
        /// exactly as rand's `sample_single` does.
        fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    /// Range arguments accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample; panics on an empty range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_exclusive(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_inclusive(low, high, rng)
        }
    }

    // rand 0.8's `uniform_int_impl!`: widening-multiply rejection sampling
    // (Lemire). `$large` is the unsigned working width, `$wide` the
    // double-width type used for the multiply.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $large:ty, $wide:ty) => {
            impl SampleUniform for $ty {
                fn sample_exclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    Self::sample_inclusive(low, high - 1, rng)
                }

                fn sample_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1)
                        as $large;
                    if range == 0 {
                        // Full domain: every bit pattern is valid.
                        return draw::<$large, _>(rng) as $ty;
                    }
                    // rand keys this branch on the sample type's own
                    // width (modulo zone for i8/i16/u8/u16).
                    let zone = if (<$unsigned>::MAX as u128) <= u16::MAX as u128 {
                        let ints_to_reject = (<$large>::MAX - range + 1) % range;
                        <$large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $large = draw::<$large, _>(rng);
                        let m = (v as $wide) * (range as $wide);
                        let lo = m as $large;
                        let hi = (m >> <$large>::BITS) as $large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    /// Draws one full word of the working width from the generator,
    /// through the same `Standard` paths rand uses.
    fn draw<T, R: RngCore + ?Sized>(rng: &mut R) -> T
    where
        super::Standard: super::Distribution<T>,
    {
        use super::Distribution as _;
        super::Standard.sample(rng)
    }

    uniform_int_impl! { u8, u8, u32, u64 }
    uniform_int_impl! { u16, u16, u32, u64 }
    uniform_int_impl! { u32, u32, u32, u64 }
    uniform_int_impl! { u64, u64, u64, u128 }
    uniform_int_impl! { usize, usize, usize, u128 }
    uniform_int_impl! { i32, u32, u32, u64 }
    uniform_int_impl! { i64, u64, u64, u128 }

    impl SampleUniform for f64 {
        fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            // Simple scale-and-shift (rand's UniformFloat modulo the
            // open/closed edge subtleties, which no caller here relies on).
            use super::Distribution as _;
            let u: f64 = super::Standard.sample(rng);
            low + u * (high - low)
        }

        fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            Self::sample_inclusive(low, high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::uniform::SampleRange;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn usize_draw_consumes_u64() {
        // usize sampling must consume exactly one u64 per accepted draw on
        // the happy path, matching the 64-bit rand build.
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        let x: usize = (0usize..1024).sample_single(&mut a);
        assert!(x < 1024);
        use crate::RngCore as _;
        let _ = b.next_u64();
        // Power-of-two range never rejects, so the streams realign.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(0usize..3).sample_single(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
