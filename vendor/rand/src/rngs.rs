//! Named generators. Only `SmallRng` is provided: the 64-bit variant of
//! rand 0.8, i.e. xoshiro256++.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator: xoshiro256++,
/// bit-identical to rand 0.8's 64-bit `SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // An all-zero state would be a fixed point; rand 0.8 re-seeds it
        // through the u64 expander the same way.
        if seed.iter().all(|&b| b == 0) {
            return Self::seed_from_u64(0);
        }
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // The low bits of xoshiro256++ have weak linear structure; rand
        // takes the upper half of a 64-bit output.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference test vector from the xoshiro256++ specification
        // (Blackman & Vigna): state {1, 2, 3, 4}.
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = SmallRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
