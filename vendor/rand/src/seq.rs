//! Slice helpers, mirror of `rand::seq` for the methods the workspace
//! uses (`shuffle`, `choose`).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles in place: downward Fisher–Yates over `gen_range(0..=i)`,
    /// identical to rand 0.8's stream.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [5u8, 6, 7];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
