//! Offline drop-in subset of the [`criterion`] API.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of criterion its benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, and `Bencher::iter`.
//!
//! Measurement is intentionally simple — a fixed warm-up then `sample_size`
//! timed batches, reporting min/mean — because these benches exist to track
//! relative regressions in CI logs, not to do rigorous statistics. The
//! statistical machinery (outlier classification, bootstrapping, HTML
//! reports) is absent.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { _c: self, sample_size: 40 }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&id.0);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        b.report(&id.0);
        self
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, timed. Criterion's batching is collapsed to
    /// one-iteration samples; `sample_size` controls the repeat count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        drop(black_box(out));
        self.samples.push(elapsed);
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{id:<40} mean {:>12?}   min {:>12?}   ({} samples)",
            mean,
            min,
            self.samples.len()
        );
        self.samples.clear();
    }
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * x
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
