//! `pdip` — command-line driver for the planarity DIPs.
//!
//! ```text
//! pdip families
//! pdip run <family> [--n N] [--seed S] [--no-instance] [--cheat IDX]
//!                   [--simulated] [--repeat K]
//! pdip size <family> [--from K] [--to K]
//! pdip soundness <family> [--n N] [--trials T]
//! pdip sweep [--families a,b,..] [--n-from N] [--n-to N] [--trials T]
//!            [--threads K] [--seed S] [--honest-only] [--out PATH] [--quiet]
//! pdip bench-hotpath [--out PATH]
//! pdip bench-graph [--smoke] [--out PATH]
//! pdip bench-round [--smoke] [--workers K] [--out PATH]
//! pdip chaos [--smoke] [--threads K] [--out PREFIX]
//! pdip trace [--smoke] [--threads K] [--out PREFIX] [--quiet]
//! pdip scale [--smoke] [--threads K] [--out PREFIX]
//! pdip prove <family> [--n N] [--prover honest|IDX] [--no-instance]
//!                     [--gen-seed G] [--seed S] [--simulated] [--out PATH]
//! pdip verify <PATH>
//! pdip serve [--stdin | --port P | --smoke] [--threads K] [--queue Q]
//!            [--deadline-ms D] [--read-deadline-ms D] [--drain-deadline-ms D]
//!            [--max-frame-bytes B] [--flight-dump PATH] [--out PREFIX]
//! pdip serve-chaos [--smoke] [--out PREFIX]
//! pdip obs-audit [--smoke] [--out PREFIX]
//! pdip stats [--host H] [--port P] [--json | --flight]
//! pdip client [--host H] [--port P] [--seed S] [--retries R]
//!             [--backoff-ms B] [--shutdown] [--json] FILE...
//! ```
//!
//! Exit codes of `pdip verify`: 0 = replay matched and the verifier
//! accepts, 3 = well-formed but rejected (verifier rejection or replay
//! mismatch), 4 = malformed transcript (decode error). `pdip serve`
//! reports the same distinction per request via response status codes,
//! and `pdip client` folds its responses back into exit codes: 0 all
//! accepted, 3 at least one reject/malformed, 5 busy-retries exhausted,
//! 6 transport failure.
//!
//! `pdip serve --port P` runs the long-lived concurrent front-end:
//! SIGTERM/SIGINT (or a client shutdown frame) triggers a graceful
//! drain that answers every accepted request before exiting. The
//! running server exposes live metrics over the same frame protocol:
//! `pdip stats` fetches a Prometheus-style snapshot (`--json` for the
//! JSON form, `--flight` for the flight-recorder event ring), and
//! `--flight-dump PATH` makes the server write that ring as JSONL on
//! panic and at drain. `pdip obs-audit` is the gating E14 audit of the
//! whole observability layer.

use pdip_bench::{no_instance, Family, YesInstance, FAMILIES};

/// Track the allocator high-water so `pdip scale` (E11) and the
/// `[engine]` summary line can report real heap peaks; see
/// [`pdip_obs::PeakAlloc`]. Library users and plain test binaries run
/// untracked — only this binary pays the (two relaxed atomics) cost.
#[global_allocator]
static ALLOC: pdip_obs::PeakAlloc = pdip_obs::PeakAlloc::new();
use pdip_engine::{Engine, ProverSpec, Reporter, ServeConfig, SweepSpec};
use planarity_dip::dip::DipProtocol;
use planarity_dip::protocols::{Amplified, PopParams, Transport};
use planarity_dip::wire::{Transcript, VerifyOutcome, WireInstance};

fn usage() -> ! {
    eprintln!(
        "usage:\n  pdip families\n  pdip run <family> [--n N] [--seed S] [--no-instance] \
         [--cheat IDX] [--simulated] [--repeat K]\n  pdip size <family> [--from K] [--to K]\n  \
         pdip soundness <family> [--n N] [--trials T]\n  \
         pdip sweep [--families a,b,..] [--n-from N] [--n-to N] [--trials T] [--threads K] \
         [--seed S] [--honest-only] [--out PATH] [--quiet]\n  \
         pdip bench-hotpath [--out PATH]\n  \
         pdip bench-graph [--smoke] [--out PATH]\n  \
         pdip bench-round [--smoke] [--workers K] [--out PATH]\n  \
         pdip chaos [--smoke] [--threads K] [--out PREFIX]\n  \
         pdip trace [--smoke] [--threads K] [--out PREFIX] [--quiet]\n  \
         pdip scale [--smoke] [--threads K] [--out PREFIX]\n  \
         pdip prove <family> [--n N] [--prover honest|IDX] [--no-instance] [--gen-seed G] \
         [--seed S] [--simulated] [--out PATH]\n  \
         pdip verify <PATH>   (exit 0 accept / 3 rejected / 4 malformed)\n  \
         pdip serve [--stdin | --port P | --smoke] [--threads K] [--queue Q] [--deadline-ms D] \
         [--read-deadline-ms D] [--drain-deadline-ms D] [--max-frame-bytes B] \
         [--flight-dump PATH] [--out PREFIX]\n  \
         pdip serve-chaos [--smoke] [--out PREFIX]\n  \
         pdip obs-audit [--smoke] [--out PREFIX]\n  \
         pdip stats [--host H] [--port P] [--json | --flight]\n  \
         pdip client [--host H] [--port P] [--seed S] [--retries R] [--backoff-ms B] \
         [--shutdown] [--json] FILE...\n\nfamilies: {}",
        FAMILIES.iter().map(|f| f.name()).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2)
}

fn parse_family(s: &str) -> Family {
    FAMILIES.iter().copied().find(|f| f.name() == s).unwrap_or_else(|| {
        eprintln!("unknown family '{s}'");
        usage()
    })
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn flag_num(args: &[String], name: &str, default: usize) -> usize {
    flag_value(args, name).map(|v| v.parse().expect("numeric flag")).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "families" => {
            for f in FAMILIES {
                let inst = YesInstance::generate(f, 64, 1);
                inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                    println!(
                        "{:<22} rounds = {}   cheats = [{}]",
                        f.name(),
                        p.rounds(),
                        p.cheat_names().join(", ")
                    );
                });
            }
        }
        "run" => {
            let fam = parse_family(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let n = flag_num(&args, "--n", 1024);
            let seed = flag_num(&args, "--seed", 7) as u64;
            let repeat = flag_num(&args, "--repeat", 1);
            let transport = if args.iter().any(|a| a == "--simulated") {
                Transport::Simulated
            } else {
                Transport::Native
            };
            let cheat = flag_value(&args, "--cheat").map(|v| v.parse::<usize>().expect("index"));
            let inst = if args.iter().any(|a| a == "--no-instance") || cheat.is_some() {
                no_instance(fam, n, seed)
            } else {
                YesInstance::generate(fam, n, seed)
            };
            inst.with_protocol(PopParams::default(), transport, |p| {
                let run = |p: &dyn DipProtocol| match cheat {
                    Some(s) => p.run_cheat(s, seed),
                    None => p.run_honest(seed),
                };
                // Amplification needs ownership; emulate by repeated runs.
                let res = if repeat <= 1 {
                    run(p)
                } else {
                    let wrapper = RepeatRef { inner: p, k: repeat };
                    run(&Amplified::new(wrapper, 1))
                };
                println!("protocol   : {}", p.name());
                println!("instance   : n = {}, yes = {}", p.instance_size(), p.is_yes_instance());
                println!("rounds     : {}", res.stats.rounds);
                println!(
                    "proof size : {} bits (per prover round: {:?})",
                    res.stats.proof_size(),
                    res.stats.per_round_max_bits
                );
                println!("coins      : {} bits total", res.stats.coin_bits);
                println!("verdict    : {}", if res.accepted() { "ACCEPT" } else { "REJECT" });
                for (v, r) in res.rejections.iter().take(5) {
                    println!("  node {v}: {r}");
                }
            });
        }
        "size" => {
            let fam = parse_family(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let from = flag_num(&args, "--from", 8);
            let to = flag_num(&args, "--to", 14);
            println!("{:>10}  {:>10}", "n", "proof bits");
            for k in from..=to {
                let n = 1usize << k;
                let inst = YesInstance::generate(fam, n, 3);
                let size = inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                    p.run_honest(1).stats.proof_size()
                });
                println!("{n:>10}  {size:>10}");
            }
        }
        "soundness" => {
            let fam = parse_family(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let n = flag_num(&args, "--n", 300);
            let trials = flag_num(&args, "--trials", 60) as u64;
            let probe = no_instance(fam, n, 0);
            let cheats =
                probe.with_protocol(PopParams::default(), Transport::Native, |p| p.cheat_names());
            for (s, name) in cheats.iter().enumerate() {
                let mut accepted = 0u64;
                for t in 0..trials {
                    let inst = no_instance(fam, n, t * 101 + 1);
                    inst.with_protocol(PopParams::default(), Transport::Native, |p| {
                        if p.run_cheat(s, t).accepted() {
                            accepted += 1;
                        }
                    });
                }
                println!(
                    "{:<28} accepted {accepted}/{trials} ({:.1}%)",
                    name,
                    100.0 * accepted as f64 / trials as f64
                );
            }
        }
        "sweep" => {
            let families: Vec<Family> = match flag_value(&args, "--families") {
                Some(list) => list.split(',').map(parse_family).collect(),
                None => FAMILIES.to_vec(),
            };
            let n_from = flag_num(&args, "--n-from", 64);
            let n_to = flag_num(&args, "--n-to", 256);
            if n_from == 0 || n_to < n_from {
                eprintln!("--n-from must be positive and at most --n-to");
                usage()
            }
            // Doubling grid from n-from up to (and including) n-to.
            let mut sizes = Vec::new();
            let mut n = n_from;
            while n < n_to {
                sizes.push(n);
                n *= 2;
            }
            sizes.push(n_to);
            let threads = flag_num(&args, "--threads", {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
            let provers = if args.iter().any(|a| a == "--honest-only") {
                vec![ProverSpec::Honest]
            } else {
                vec![ProverSpec::Honest, ProverSpec::AllCheats]
            };
            let spec = SweepSpec {
                families,
                sizes,
                provers,
                trials: flag_num(&args, "--trials", 10) as u64,
                base_seed: flag_num(&args, "--seed", 0xd1b) as u64,
                ..SweepSpec::default()
            };
            let mut rep = Reporter::from_quiet_flag(args.iter().any(|a| a == "--quiet"));
            rep.line(&format!(
                "sweep: {} jobs over {} families x {} sizes, {} threads\n",
                spec.job_count(),
                spec.families.len(),
                spec.sizes.len(),
                threads
            ));
            let outcome = Engine::with_threads(threads).run(&spec);
            rep.table(&pdip_engine::SweepOutcome::aggregate_headers(), &outcome.aggregate_rows());
            if !outcome.failures.is_empty() {
                rep.line("\nquarantined jobs:");
                for f in &outcome.failures {
                    rep.line(&format!(
                        "  #{} {} n={} {} trial={} after {} attempts: {}",
                        f.index,
                        f.family.name(),
                        f.n,
                        f.prover.tag(),
                        f.trial,
                        f.attempts,
                        f.payload
                    ));
                }
            }
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/sweep".to_string());
            let (json, csv) =
                pdip_engine::sink::write_outputs(std::path::Path::new(&out), &spec, &outcome)
                    .expect("writing sweep outputs");
            rep.line(&format!("\nwrote {} and {}", json.display(), csv.display()));
            rep.summary(&outcome.metrics);
        }
        "bench-hotpath" => {
            let out =
                flag_value(&args, "--out").unwrap_or_else(|| "results/bench_hotpath.json".into());
            println!("hot-path microbenchmarks (optimized vs division-based baseline):\n");
            let entries = pdip_bench::hotpath::run_hotpath();
            println!(
                "{:<24} {:>10} {:>14} {:>14} {:>9}",
                "benchmark", "n", "baseline ns", "fast ns", "speedup"
            );
            for e in &entries {
                println!(
                    "{:<24} {:>10} {:>14.1} {:>14.1} {:>8.2}x",
                    e.name,
                    e.n,
                    e.baseline_ns,
                    e.fast_ns,
                    e.speedup()
                );
            }
            let p = planarity_dip::field::smallest_prime_above(1 << 20);
            let doc = pdip_bench::hotpath::hotpath_json(p, &entries);
            let path = std::path::Path::new(&out);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(path, doc).expect("writing bench snapshot");
            println!("\nwrote {}", path.display());
        }
        "bench-graph" => {
            let out =
                flag_value(&args, "--out").unwrap_or_else(|| "results/bench_graph.json".into());
            let smoke = args.iter().any(|a| a == "--smoke");
            let cfg = if smoke {
                pdip_bench::graphbench::GraphBenchConfig::smoke()
            } else {
                pdip_bench::graphbench::GraphBenchConfig::full()
            };
            println!(
                "graph-substrate benchmarks ({}; frozen CSR + warm scratch vs legacy shape):\n",
                if smoke { "smoke" } else { "full" }
            );
            let entries = pdip_bench::graphbench::run_graphbench(&cfg);
            println!(
                "{:<24} {:>10} {:>14} {:>14} {:>9}",
                "benchmark", "n", "baseline ns", "fast ns", "speedup"
            );
            for e in &entries {
                println!(
                    "{:<24} {:>10} {:>14.1} {:>14.1} {:>8.2}x",
                    e.name,
                    e.n,
                    e.baseline_ns,
                    e.fast_ns,
                    e.speedup()
                );
            }
            let doc = pdip_bench::graphbench::graphbench_json(
                if smoke { "smoke" } else { "full" },
                &entries,
            );
            let path = std::path::Path::new(&out);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(path, doc).expect("writing bench snapshot");
            println!("\nwrote {}", path.display());
        }
        "bench-round" => {
            let out =
                flag_value(&args, "--out").unwrap_or_else(|| "results/bench_round.json".into());
            let smoke = args.iter().any(|a| a == "--smoke");
            // Intra-job workers for the round's chunked per-node loops.
            // Transcripts are byte-identical at any value (the chunk grid
            // is worker-count independent), so the default follows the
            // machine: available_parallelism, capped at MAX_AUTO_WORKERS.
            // Pass --workers 1 to reproduce single-thread timings.
            match flag_value(&args, "--workers") {
                Some(w) => {
                    let w: usize = w.parse().expect("--workers takes a positive integer");
                    pdip_core::par::set_intra_workers(w.max(1));
                }
                None => pdip_core::par::set_intra_workers_auto(),
            }
            println!("intra-job workers: {}\n", pdip_core::par::intra_workers());
            let cfg = if smoke {
                pdip_bench::roundbench::RoundBenchConfig::smoke()
            } else {
                pdip_bench::roundbench::RoundBenchConfig::full()
            };
            println!(
                "planarity-round profile ({}; honest run vs committed pre-optimization baseline):\n",
                if smoke { "smoke" } else { "full" }
            );
            let report = pdip_bench::roundbench::run_roundbench(&cfg);
            println!(
                "{:<24} {:>10} {:>14} {:>14} {:>9}",
                "benchmark", "n", "baseline ns", "fast ns", "speedup"
            );
            for e in &report.entries {
                println!(
                    "{:<24} {:>10} {:>14.1} {:>14.1} {:>8.2}x",
                    e.name,
                    e.n,
                    e.baseline_ns,
                    e.fast_ns,
                    e.speedup()
                );
            }
            println!("\n{:<24} {:>10} {:>14} {:>8}", "stage", "n", "total ns", "share");
            for r in &report.stages {
                println!(
                    "{:<24} {:>10} {:>14.1} {:>7.1}%",
                    r.stage,
                    r.n,
                    r.total_ns,
                    100.0 * r.share
                );
            }
            let doc = pdip_bench::roundbench::roundbench_json(
                if smoke { "smoke" } else { "full" },
                &report,
            );
            let path = std::path::Path::new(&out);
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(path, doc).expect("writing bench snapshot");
            println!("\nwrote {}", path.display());
        }
        "chaos" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let mut spec = if smoke {
                pdip_engine::ChaosSpec::smoke()
            } else {
                pdip_engine::ChaosSpec::full()
            };
            spec.threads = flag_num(&args, "--threads", {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/e9_chaos".into());
            println!(
                "chaos sweep ({}): n={} trials-per-cell={} base-seed={:#x} threads={}\n",
                if smoke { "smoke" } else { "full" },
                spec.n,
                spec.trials,
                spec.base_seed,
                spec.threads
            );
            let report = pdip_engine::run_chaos(&spec);
            print!("{}", report.render_text());
            let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
            let json_path = std::path::PathBuf::from(format!("{out}.json"));
            if let Some(dir) = txt_path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(&txt_path, report.render_text()).expect("writing chaos text report");
            std::fs::write(&json_path, report.render_json()).expect("writing chaos json report");
            println!("\nwrote {} and {}", txt_path.display(), json_path.display());
            if !report.all_pass {
                eprintln!("chaos audit FAILED (see table above)");
                std::process::exit(1);
            }
        }
        "trace" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let mut spec = if smoke {
                pdip_engine::TraceSpec::smoke()
            } else {
                pdip_engine::TraceSpec::full()
            };
            spec.threads = flag_num(&args, "--threads", {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/e10_trace".into());
            let mut rep = Reporter::from_quiet_flag(args.iter().any(|a| a == "--quiet"));
            rep.line(&format!(
                "trace audit ({}): sizes={:?} trials-per-cell={} base-seed={:#x} threads={}\n",
                if smoke { "smoke" } else { "full" },
                spec.sizes,
                spec.trials,
                spec.base_seed,
                spec.threads
            ));
            let outcome = pdip_engine::run_trace(&spec);
            rep.line(&outcome.report.render_text());
            // Timing breakdown is stdout-only: scheduling-dependent, so
            // it never reaches the committed artifact files.
            rep.line("span timing (wall-clock, not part of the artifact):");
            for l in outcome.timing_lines() {
                rep.line(&format!("  {l}"));
            }
            let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
            let json_path = std::path::PathBuf::from(format!("{out}.json"));
            if let Some(dir) = txt_path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(&txt_path, outcome.report.render_text())
                .expect("writing trace text report");
            std::fs::write(&json_path, outcome.report.render_json())
                .expect("writing trace json report");
            rep.line(&format!("\nwrote {} and {}", txt_path.display(), json_path.display()));
            rep.summary(&outcome.metrics);
            if !outcome.report.all_pass {
                eprintln!("trace audit FAILED (see table above)");
                std::process::exit(1);
            }
        }
        "scale" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let mut spec = if smoke {
                pdip_engine::ScaleSpec::smoke()
            } else {
                pdip_engine::ScaleSpec::full()
            };
            spec.threads = flag_num(&args, "--threads", spec.threads);
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/e11_scale".into());
            println!(
                "scaling audit ({}): sizes={:?} shard-n={} base-seed={:#x} threads={}\n",
                if smoke { "smoke" } else { "full" },
                spec.sizes,
                spec.shard_n,
                spec.base_seed,
                spec.threads
            );
            let start = std::time::Instant::now();
            let report = pdip_engine::run_scale(&spec);
            print!("{}", report.render_text());
            let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
            let json_path = std::path::PathBuf::from(format!("{out}.json"));
            if let Some(dir) = txt_path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(&txt_path, report.render_text()).expect("writing scale text report");
            std::fs::write(&json_path, report.render_json()).expect("writing scale json report");
            println!("\nwrote {} and {}", txt_path.display(), json_path.display());
            let mut rep = Reporter::from_quiet_flag(false);
            rep.summary(&pdip_engine::scale_metrics(&report, start.elapsed()));
            // This binary installs the tracking allocator, so the
            // bounded-memory gate must have run for real — an untracked
            // run means the gate silently passed vacuously.
            if !report.rss_tracked {
                eprintln!("scale audit FAILED: allocator peak untracked in the pdip binary");
                std::process::exit(1);
            }
            if !report.all_pass {
                eprintln!("scale audit FAILED (see table above)");
                std::process::exit(1);
            }
        }
        "prove" => {
            let fam = parse_family(args.get(1).map(String::as_str).unwrap_or_else(|| usage()));
            let n = flag_num(&args, "--n", 64);
            let gen_seed = flag_num(&args, "--gen-seed", 7) as u64;
            let run_seed = flag_num(&args, "--seed", 11) as u64;
            let transport = if args.iter().any(|a| a == "--simulated") {
                Transport::Simulated
            } else {
                Transport::Native
            };
            let prover_arg = flag_value(&args, "--prover").unwrap_or_else(|| "honest".into());
            let prover: u8 = if prover_arg == "honest" {
                0
            } else {
                let idx: u8 = prover_arg.parse().unwrap_or_else(|_| {
                    eprintln!("--prover must be 'honest' or a cheat index");
                    usage()
                });
                idx + 1
            };
            let inst = if args.iter().any(|a| a == "--no-instance") || prover != 0 {
                no_instance(fam, n, gen_seed)
            } else {
                YesInstance::generate(fam, n, gen_seed)
            };
            let t = Transcript::record(
                to_wire(inst),
                PopParams::default(),
                transport,
                prover,
                gen_seed,
                run_seed,
            );
            let bytes = t.encode();
            let out = flag_value(&args, "--out").unwrap_or_else(|| "out.transcript".into());
            let path = std::path::Path::new(&out);
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).expect("creating output dir");
            }
            std::fs::write(path, &bytes).expect("writing transcript");
            println!(
                "wrote {} ({} bytes): {} n={} prover={} verdict={}",
                path.display(),
                bytes.len(),
                t.instance.family_name(),
                t.instance.n(),
                prover_arg,
                if t.accepted { "ACCEPT" } else { "REJECT" }
            );
        }
        "verify" => {
            let path = args.get(1).cloned().unwrap_or_else(|| usage());
            let data = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("reading {path}: {e}");
                std::process::exit(4)
            });
            let t = match Transcript::decode(&data) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("malformed transcript: {e}");
                    std::process::exit(4)
                }
            };
            println!(
                "transcript : {} n={} prover={} transport={}",
                t.instance.family_name(),
                t.instance.n(),
                match t.cheat() {
                    None => "honest".to_string(),
                    Some(k) => format!("cheat {k}"),
                },
                if t.transport == 0 { "native" } else { "simulated" }
            );
            match t.verify() {
                VerifyOutcome::Accepted(_) => {
                    println!("verdict    : ACCEPT (replay matched)");
                }
                VerifyOutcome::VerifierRejected(res) => {
                    println!("verdict    : REJECT (replay matched; the verifier rejects)");
                    for (v, r) in res.rejections.iter().take(5) {
                        println!("  node {v}: {r}");
                    }
                    std::process::exit(3)
                }
                VerifyOutcome::ReplayMismatch { detail } => {
                    println!("verdict    : REJECT (replay mismatch: {detail})");
                    std::process::exit(3)
                }
            }
        }
        "serve" => {
            let max_frame_bytes =
                flag_num(&args, "--max-frame-bytes", pdip_engine::serve::MAX_FRAME);
            // A cap below one response header (13 bytes) or absurdly
            // large is a configuration mistake, not a policy.
            if !(64..=(1usize << 30)).contains(&max_frame_bytes) {
                eprintln!("--max-frame-bytes must be in [64, 2^30], got {max_frame_bytes}");
                std::process::exit(2);
            }
            let cfg = ServeConfig {
                threads: flag_num(&args, "--threads", {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                }),
                queue_cap: flag_num(&args, "--queue", 256),
                deadline: flag_value(&args, "--deadline-ms")
                    .map(|v| std::time::Duration::from_millis(v.parse().expect("milliseconds"))),
                max_frame_bytes,
                read_deadline: flag_value(&args, "--read-deadline-ms")
                    .map(|v| std::time::Duration::from_millis(v.parse().expect("milliseconds")))
                    .or(ServeConfig::default().read_deadline),
                drain_deadline: flag_value(&args, "--drain-deadline-ms")
                    .map(|v| std::time::Duration::from_millis(v.parse().expect("milliseconds")))
                    .unwrap_or(ServeConfig::default().drain_deadline),
                // A shared obs bridge so the flight ring survives the
                // server and can land on disk at drain or panic.
                obs: flag_value(&args, "--flight-dump").map(|path| {
                    std::sync::Arc::new(pdip_engine::ServeObs::with_options(
                        pdip_engine::DEFAULT_FLIGHT_CAP,
                        pdip_engine::DEFAULT_SLOW_THRESHOLD,
                        Some(std::path::PathBuf::from(path)),
                    ))
                }),
                ..ServeConfig::default()
            };
            if args.iter().any(|a| a == "--smoke") {
                let out = flag_value(&args, "--out").unwrap_or_else(|| "results/e12_serve".into());
                let report = pdip_engine::run_serve_smoke(&[1, 4], pdip_engine::E12_SEED);
                print!("{}", report.render_text());
                let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
                let json_path = std::path::PathBuf::from(format!("{out}.json"));
                if let Some(dir) = txt_path.parent() {
                    std::fs::create_dir_all(dir).expect("creating results dir");
                }
                std::fs::write(&txt_path, report.render_text()).expect("writing serve text report");
                std::fs::write(&json_path, report.render_json())
                    .expect("writing serve json report");
                println!("\nwrote {} and {}", txt_path.display(), json_path.display());
                if !report.passed {
                    eprintln!("serve smoke FAILED (see failures above)");
                    std::process::exit(1);
                }
            } else if args.iter().any(|a| a == "--stdin") {
                let mut stdin = std::io::stdin().lock();
                let mut stdout = std::io::stdout().lock();
                let (stats, _) = pdip_engine::serve_stream(
                    &cfg,
                    &mut stdin,
                    &mut stdout,
                    &pdip_obs::NoopRecorder,
                )
                .expect("serving stdin stream");
                eprintln!(
                    "served: accept={} reject={} malformed={} busy={} deadline={} panics={}",
                    stats.accepted,
                    stats.rejected,
                    stats.malformed,
                    stats.busy,
                    stats.deadline,
                    stats.panics
                );
            } else {
                let port = flag_num(&args, "--port", 7437) as u16;
                let mut rep = Reporter::from_quiet_flag(false);
                let shutdown = pdip_engine::ShutdownFlag::new();
                install_signal_drain(&shutdown);
                let stats = pdip_engine::serve_tcp(
                    &cfg,
                    port,
                    &shutdown,
                    &mut rep,
                    &pdip_obs::NoopRecorder,
                )
                .expect("serving tcp");
                eprintln!(
                    "served: accept={} reject={} malformed={} busy={} deadline={} panics={} \
                     conn_faults={} connections={}",
                    stats.accepted,
                    stats.rejected,
                    stats.malformed,
                    stats.busy,
                    stats.deadline,
                    stats.panics,
                    stats.conn_faults,
                    stats.connections
                );
            }
        }
        "serve-chaos" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let spec = if smoke {
                pdip_engine::ServeChaosSpec::smoke()
            } else {
                pdip_engine::ServeChaosSpec::full()
            };
            let out =
                flag_value(&args, "--out").unwrap_or_else(|| "results/e13_serve_chaos".into());
            println!(
                "serve chaos audit ({}): trials-per-class={} base-seed={:#x}\n",
                if smoke { "smoke" } else { "full" },
                spec.trials,
                pdip_engine::E13_SEED
            );
            let report = pdip_engine::run_serve_chaos(&spec, pdip_engine::E13_SEED);
            print!("{}", report.render_text());
            // Throughput is timing data: stdout only in the text form,
            // one clearly-marked field in the JSON.
            println!("\nsustained throughput: {:.1} requests/sec over localhost TCP", report.rps);
            let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
            let json_path = std::path::PathBuf::from(format!("{out}.json"));
            if let Some(dir) = txt_path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(&txt_path, report.render_text()).expect("writing chaos text report");
            std::fs::write(&json_path, report.render_json()).expect("writing chaos json report");
            println!("wrote {} and {}", txt_path.display(), json_path.display());
            if !report.passed {
                eprintln!("serve chaos audit FAILED (see failures above)");
                std::process::exit(1);
            }
        }
        "obs-audit" => {
            let smoke = args.iter().any(|a| a == "--smoke");
            let spec = if smoke {
                pdip_engine::ObsAuditSpec::smoke()
            } else {
                pdip_engine::ObsAuditSpec::full()
            };
            let out = flag_value(&args, "--out").unwrap_or_else(|| "results/e14_obs".into());
            println!(
                "observability audit ({}): fault-trials-per-class={} threads={:?} base-seed={:#x}\n",
                if smoke { "smoke" } else { "full" },
                spec.fault_trials,
                spec.threads,
                pdip_engine::E14_SEED
            );
            let report = pdip_engine::run_obs_audit(&spec, pdip_engine::E14_SEED);
            print!("{}", report.render_text());
            // Throughput and latency are timing data: stdout only in
            // the text form, clearly-marked fields in the JSON.
            println!(
                "\nsustained throughput: {:.1} requests/sec, mean verify latency {} ns",
                report.rps, report.mean_verify_ns
            );
            let txt_path = std::path::PathBuf::from(format!("{out}.txt"));
            let json_path = std::path::PathBuf::from(format!("{out}.json"));
            if let Some(dir) = txt_path.parent() {
                std::fs::create_dir_all(dir).expect("creating results dir");
            }
            std::fs::write(&txt_path, report.render_text()).expect("writing obs text report");
            std::fs::write(&json_path, report.render_json()).expect("writing obs json report");
            println!("wrote {} and {}", txt_path.display(), json_path.display());
            if !report.passed {
                eprintln!("observability audit FAILED (see failures above)");
                std::process::exit(1);
            }
        }
        "stats" => {
            let host = flag_value(&args, "--host").unwrap_or_else(|| "127.0.0.1".into());
            let port = flag_num(&args, "--port", 7437) as u16;
            let mode: u8 = if args.iter().any(|a| a == "--flight") {
                2
            } else if args.iter().any(|a| a == "--json") {
                1
            } else {
                0
            };
            match pdip_engine::fetch_stats(&host, port, mode) {
                Ok(body) => print!("{body}"),
                Err(e) => {
                    eprintln!("pdip stats: {e}");
                    std::process::exit(6);
                }
            }
        }
        "client" => {
            let opts = pdip_engine::ClientOpts {
                host: flag_value(&args, "--host").unwrap_or_else(|| "127.0.0.1".into()),
                port: flag_num(&args, "--port", 7437) as u16,
                seed: flag_num(&args, "--seed", 0) as u64,
                retries: flag_num(&args, "--retries", 5) as u32,
                backoff_base_ms: flag_num(&args, "--backoff-ms", 10) as u64,
                send_shutdown: args.iter().any(|a| a == "--shutdown"),
                ..pdip_engine::ClientOpts::default()
            };
            // Positional FILE... arguments: everything that is neither
            // a flag nor a flag's value.
            let flags_with_value = ["--host", "--port", "--seed", "--retries", "--backoff-ms"];
            let mut files: Vec<String> = Vec::new();
            let mut skip = false;
            for a in args.iter().skip(1) {
                if skip {
                    skip = false;
                    continue;
                }
                if flags_with_value.contains(&a.as_str()) {
                    skip = true;
                } else if !a.starts_with("--") {
                    files.push(a.clone());
                }
            }
            if files.is_empty() {
                eprintln!("pdip client: no transcript files given");
                usage()
            }
            let mut items = Vec::with_capacity(files.len());
            for f in &files {
                match std::fs::read(f) {
                    Ok(bytes) => items.push((f.clone(), bytes)),
                    Err(e) => {
                        eprintln!("reading {f}: {e}");
                        std::process::exit(6)
                    }
                }
            }
            let json = args.iter().any(|a| a == "--json");
            // With --json the human-readable per-file lines are
            // suppressed so stdout carries exactly one JSON object.
            let mut rep = Reporter::from_quiet_flag(json);
            let outcome = pdip_engine::run_client(&opts, &items, &mut rep);
            if let Some(e) = &outcome.io_error {
                eprintln!("pdip client: {e}");
            }
            if json {
                let detail = outcome.shutdown_stats.as_deref().unwrap_or("");
                println!("{}", pdip_engine::stats_detail_to_json(detail));
            }
            std::process::exit(outcome.exit_code());
        }
        _ => usage(),
    }
}

/// Wires SIGTERM/SIGINT to a graceful drain: the handler only sets an
/// atomic; a watcher thread forwards it to the serve shutdown flag.
/// Raw `signal(2)` keeps this dependency-free (no libc crate).
#[cfg(unix)]
fn install_signal_drain(shutdown: &pdip_engine::ShutdownFlag) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALLED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
    let shutdown = shutdown.clone();
    std::thread::spawn(move || loop {
        if SIGNALLED.load(Ordering::SeqCst) {
            shutdown.request();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

#[cfg(not(unix))]
fn install_signal_drain(_shutdown: &pdip_engine::ShutdownFlag) {}

/// Maps an engine instance onto its wire-format container.
fn to_wire(inst: YesInstance) -> WireInstance {
    match inst {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        YesInstance::Op(i) => WireInstance::Op(i),
        YesInstance::Emb(i) => WireInstance::Emb(i),
        YesInstance::Pl(i) => WireInstance::Pl(i),
        YesInstance::Spa(i) => WireInstance::Spa(i),
        YesInstance::Tw2(i) => WireInstance::Tw2(i),
    }
}

/// A by-reference repetition shim so `--repeat` can reuse [`Amplified`]
/// over a borrowed protocol.
struct RepeatRef<'a> {
    inner: &'a dyn DipProtocol,
    k: usize,
}

impl DipProtocol for RepeatRef<'_> {
    fn name(&self) -> String {
        format!("{} x{}", self.inner.name(), self.k)
    }
    fn rounds(&self) -> usize {
        self.inner.rounds()
    }
    fn instance_size(&self) -> usize {
        self.inner.instance_size()
    }
    fn is_yes_instance(&self) -> bool {
        self.inner.is_yes_instance()
    }
    fn run_honest(&self, seed: u64) -> planarity_dip::dip::RunResult {
        let mut res = self.inner.run_honest(seed);
        for i in 1..self.k {
            let r = self.inner.run_honest(seed.wrapping_add(i as u64 * 7919));
            res.stats.merge_parallel(&r.stats);
            if !r.accepted() {
                res.verdict = planarity_dip::dip::Verdict::Reject;
                res.rejections.extend(r.rejections);
            }
        }
        res
    }
    fn cheat_names(&self) -> Vec<String> {
        self.inner.cheat_names()
    }
    fn run_cheat(&self, strategy: usize, seed: u64) -> planarity_dip::dip::RunResult {
        let mut res = self.inner.run_cheat(strategy, seed);
        for i in 1..self.k {
            let r = self.inner.run_cheat(strategy, seed.wrapping_add(i as u64 * 7919));
            res.stats.merge_parallel(&r.stats);
            if !r.accepted() {
                res.verdict = planarity_dip::dip::Verdict::Reject;
                res.rejections.extend(r.rejections);
            }
        }
        res
    }
}
