//! `planarity-dip` — a Rust reproduction of Gil & Parter, *"New
//! Distributed Interactive Proofs for Planarity: A Matter of Left and
//! Right"* (PODC 2025).
//!
//! This facade crate re-exports the workspace: the graph substrate
//! ([`graph`]), prime-field machinery ([`field`]), the DIP model
//! ([`dip`]) and every protocol of the paper ([`protocols`]). See the
//! README for a tour and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ```
//! use planarity_dip::protocols::{PathOuterplanarity, PopInstance, PopParams, Transport};
//! use planarity_dip::graph::gen::outerplanar::random_path_outerplanar;
//! use rand::{rngs::SmallRng, SeedableRng};
//!
//! let mut rng = SmallRng::seed_from_u64(1);
//! let gen = random_path_outerplanar(64, 0.6, &mut rng);
//! let inst = PopInstance { graph: gen.graph, witness: Some(gen.path), is_yes: true };
//! let proto = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
//! let run = proto.run(None, 7);
//! assert!(run.accepted());
//! assert_eq!(run.stats.rounds, 5);
//! ```

#![warn(missing_docs)]

pub use pdip_core as dip;
pub use pdip_field as field;
pub use pdip_graph as graph;
pub use pdip_protocols as protocols;
pub use pdip_wire as wire;
