//! E13: chaos at the wire — the concurrent serve front-end under
//! connection-level fault injection.
//!
//! The audit reuses the PR-4 chaos [`Mutator`] one layer down: instead
//! of corrupting transcript *bytes*, it corrupts connection *behaviour*
//! — mid-frame disconnects, truncated and interleaved frames, stalled
//! writers, oversized length declarations, panic-inducing blobs, and
//! busy storms over queue capacity. Every cell spawns a fresh server
//! ([`spawn_server`]) so per-trial server-side statistics are exact.
//!
//! Gating invariants (all re-derivable from the committed JSON, see
//! `tests/e13_freshness.rs`):
//!
//! * **Zero panics escape.** Every server thread joins cleanly; worker
//!   panics are counted, answered, and survived.
//! * **Structured errors, always.** Every injected connection fault is
//!   either observed client-side as a [`Status::ConnError`] frame
//!   carrying the expected stable fault class, or counted server-side
//!   in `conn_faults` — never silence, never a crash.
//! * **Isolation.** A victim connection running honest requests next
//!   to every attacker sees nothing but accepts.
//! * **Determinism.** The full E12 request mix pushed through a live
//!   server at 1 and 4 worker threads yields byte-identical seq-sorted
//!   response records.
//! * **Drain completeness.** A graceful shutdown answers every request
//!   accepted before the shutdown frame, then reports `drained=ok`.
//!
//! Throughput (requests/sec over localhost TCP) is measured and
//! reported, but as timing data it is asserted only to be positive —
//! the committed artifact's deterministic payload never includes it in
//! a byte-compared digest.

use crate::chaos::Mutator;
use crate::report::render_table;
use crate::seed::sub_seed;
use crate::serve::{
    decode_response, panic_blob, read_frame, smoke_requests, spawn_server, write_frame, Gate,
    Response, ServeConfig, Status, REQ_SHUTDOWN, REQ_VERIFY,
};
use pdip_wire::{fnv1a64, frame::fault};
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Base seed of the committed E13 artifacts.
pub const E13_SEED: u64 = 0xe13;

/// Audit dimensions.
#[derive(Debug, Clone)]
pub struct ServeChaosSpec {
    /// Fault-injection trials per class.
    pub trials: usize,
    /// Honest requests the victim connection runs next to each trial.
    pub victims: usize,
    /// Requests of the sustained-throughput measurement.
    pub throughput_requests: usize,
}

impl ServeChaosSpec {
    /// The CI-gated configuration (also what produced the committed
    /// artifacts): 2 trials per class.
    pub fn smoke() -> ServeChaosSpec {
        ServeChaosSpec { trials: 2, victims: 2, throughput_requests: 64 }
    }

    /// The deeper local configuration.
    pub fn full() -> ServeChaosSpec {
        ServeChaosSpec { trials: 4, victims: 3, throughput_requests: 128 }
    }
}

/// The seven injected fault classes.
const CLASSES: [&str; 7] = [
    "mid-frame-disconnect",
    fault::TRUNCATED_FRAME,
    "garbage-interleaved",
    "stalled-writer",
    "oversized-length",
    "panic-blob",
    "busy-storm",
];

/// One class's aggregated outcome.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Stable class name (see [`CLASSES`]).
    pub class: &'static str,
    /// Trials run.
    pub trials: u64,
    /// Server-side `conn_faults` accumulated over all trials.
    pub conn_faults: u64,
    /// Honest victim requests run next to the attackers.
    pub victim_requests: u64,
    /// Victim requests answered [`Status::Accept`].
    pub victim_clean: u64,
    /// Trials whose client-observable structured error (or response
    /// pattern) matched the expectation exactly.
    pub confirmed: u64,
    /// Trials that were expected to confirm.
    pub expected: u64,
    /// Whether this cell met its invariants.
    pub passed: bool,
}

/// The complete audit outcome.
#[derive(Debug)]
pub struct ServeChaosReport {
    /// Base seed.
    pub seed: u64,
    /// Trials per class.
    pub trials: u64,
    /// Per-class outcomes.
    pub cells: Vec<ChaosCell>,
    /// Busy storm totals: requests submitted over capacity.
    pub busy_submitted: u64,
    /// Busy storm queue bound.
    pub busy_queue_cap: u64,
    /// Busy rejections observed (must be exactly
    /// `busy_submitted - queue_cap` per trial).
    pub busy_rejected: u64,
    /// Requests verified after the gate opened.
    pub busy_verified: u64,
    /// Requests accepted before the drain probe's shutdown frame.
    pub drain_requests: u64,
    /// Of those, requests answered after the graceful shutdown.
    pub drain_completed: u64,
    /// Whether the final stats frame reported `drained=ok`.
    pub drain_stats_ok: bool,
    /// Worker thread counts compared by the determinism probe.
    pub determinism_threads: Vec<usize>,
    /// Requests of the determinism probe (the E12 mix).
    pub determinism_requests: u64,
    /// FNV-1a-64 digest of the seq-sorted response records.
    pub determinism_digest: u64,
    /// Whether all compared thread counts digested identically.
    pub deterministic: bool,
    /// Server threads that failed to join (a panic escaped). Must be 0.
    pub escaped_panics: u64,
    /// Requests of the throughput measurement.
    pub throughput_requests: u64,
    /// Sustained requests/sec (timing data — informational only).
    pub rps: f64,
    /// Audit verdict.
    pub passed: bool,
    /// Human-readable failures (empty when `passed`).
    pub failures: Vec<String>,
}

fn connect(port: u16) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(("127.0.0.1", port))?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    Ok(s)
}

fn verify_frame(blob: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(1 + blob.len());
    f.push(REQ_VERIFY);
    f.extend_from_slice(blob);
    f
}

/// Reads exactly `n` response frames and returns them sorted by seq.
fn read_responses(stream: &mut TcpStream, n: usize) -> Result<Vec<Response>, String> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        match read_frame(stream) {
            Ok(Some(p)) => match decode_response(&p) {
                Some(r) => out.push(r),
                None => return Err(format!("undecodable response frame {i}")),
            },
            Ok(None) => return Err(format!("EOF after {i}/{n} responses")),
            Err(e) => return Err(format!("recv {i}/{n}: {e}")),
        }
    }
    out.sort_by_key(|r| r.seq);
    Ok(out)
}

/// A small honest transcript blob (accepts under replay).
fn honest_blob(seed: u64) -> Vec<u8> {
    use crate::family::{Family, YesInstance};
    use pdip_protocols::{PopParams, Transport};
    use pdip_wire::WireInstance;
    let inst = match YesInstance::generate(Family::PathOuterplanar, 16, seed) {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        _ => unreachable!("PathOuterplanar generates Pop"),
    };
    pdip_wire::Transcript::record(
        inst,
        PopParams::default(),
        Transport::Simulated,
        0,
        seed,
        seed ^ 1,
    )
    .encode()
}

/// Runs `victims` honest requests on their own connection; returns how
/// many accepted, or an error string on transport failure.
fn victim_roundtrip(port: u16, victims: usize, seed: u64) -> Result<u64, String> {
    if victims == 0 {
        return Ok(0);
    }
    let blob = honest_blob(seed);
    let mut s = connect(port).map_err(|e| format!("victim connect: {e}"))?;
    for _ in 0..victims {
        write_frame(&mut s, &verify_frame(&blob)).map_err(|e| format!("victim send: {e}"))?;
    }
    s.flush().map_err(|e| format!("victim flush: {e}"))?;
    let responses = read_responses(&mut s, victims)?;
    Ok(responses.iter().filter(|r| r.status == Status::Accept).count() as u64)
}

/// The server configuration of one chaos cell.
fn cell_config(class: &str, hold: Option<Gate>) -> ServeConfig {
    let mut cfg = ServeConfig {
        threads: 2,
        queue_cap: 64,
        deadline: None,
        read_deadline: Some(Duration::from_secs(5)),
        ..ServeConfig::default()
    };
    match class {
        "stalled-writer" => cfg.read_deadline = Some(Duration::from_millis(80)),
        // Far above any honest blob in this audit, far below the
        // default: the attacker's declaration exceeds it, victims don't.
        "oversized-length" => cfg.max_frame_bytes = 1 << 20,
        "panic-blob" => cfg.panic_token = Some(0xdead_beef),
        "busy-storm" => {
            cfg.queue_cap = 4;
            cfg.hold = hold;
        }
        _ => {}
    }
    cfg
}

struct CellOutcome {
    conn_faults: u64,
    victim_clean: u64,
    victim_requests: u64,
    confirmed: bool,
    escaped: bool,
    busy: Option<(u64, u64)>, // (busy rejections, verified)
    failures: Vec<String>,
}

/// Runs one fault-injection trial of `class` against a fresh server.
fn run_trial(class: &'static str, spec: &ServeChaosSpec, seed: u64) -> CellOutcome {
    let mut m = Mutator::new(seed);
    let mut failures = Vec::new();
    let gate = Gate::closed();
    let cfg = cell_config(class, Some(gate.clone()));
    let server = match spawn_server(cfg) {
        Ok(s) => s,
        Err(e) => {
            return CellOutcome {
                conn_faults: 0,
                victim_clean: 0,
                victim_requests: 0,
                confirmed: false,
                escaped: false,
                busy: None,
                failures: vec![format!("{class}: spawn: {e}")],
            }
        }
    };
    let port = server.port();
    let mut confirmed = false;
    let mut busy = None;
    let run_victim = class != "busy-storm";

    let attack: Result<bool, String> = (|| match class {
        "mid-frame-disconnect" => {
            // Partial header, then a hard close: the server must
            // classify a truncated frame without anyone left to tell.
            let mut s = connect(port).map_err(|e| e.to_string())?;
            let cut = 1 + m.index(3); // 1..=3 of the 4 header bytes
            let header = 64u32.to_le_bytes();
            s.write_all(&header[..cut]).map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            drop(s);
            Ok(true) // confirmation is server-side (conn_faults)
        }
        fault::TRUNCATED_FRAME => {
            // Declared length exceeds the bytes sent; half-close keeps
            // our read side open to catch the structured answer.
            let mut s = connect(port).map_err(|e| e.to_string())?;
            let declared = 64 + m.index(64);
            let sent = m.index(declared);
            s.write_all(&(declared as u32).to_le_bytes()).map_err(|e| e.to_string())?;
            s.write_all(&vec![0xab; sent]).map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            s.shutdown(Shutdown::Write).map_err(|e| e.to_string())?;
            let r = read_responses(&mut s, 1)?;
            Ok(r[0].status == Status::ConnError && r[0].detail.starts_with(fault::TRUNCATED_FRAME))
        }
        "garbage-interleaved" => {
            // Honest, unknown-tag, corrupted-blob, honest on ONE
            // connection: per-request verdicts, no connection fault.
            let good = honest_blob(seed ^ 0x60);
            let mut junk = good.clone();
            let (i, j) = m.pair(junk.len());
            junk[i] ^= 0x40;
            junk[j] = junk[j].wrapping_add(1 + m.index(255) as u8);
            junk.truncate(junk.len() - 1 - m.index(junk.len() / 2));
            let mut s = connect(port).map_err(|e| e.to_string())?;
            write_frame(&mut s, &verify_frame(&good)).map_err(|e| e.to_string())?;
            write_frame(&mut s, &[0x66, 0x6f, 0x6f]).map_err(|e| e.to_string())?;
            write_frame(&mut s, &verify_frame(&junk)).map_err(|e| e.to_string())?;
            write_frame(&mut s, &verify_frame(&good)).map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            let r = read_responses(&mut s, 4)?;
            Ok(r[0].status == Status::Accept
                && r[1].status == Status::Malformed
                && r[1].detail.contains("unknown request tag")
                && r[2].status == Status::Malformed
                && r[3].status == Status::Accept)
        }
        "stalled-writer" => {
            // Half a header, then silence past the read deadline.
            let mut s = connect(port).map_err(|e| e.to_string())?;
            let cut = 1 + m.index(3);
            let header = 32u32.to_le_bytes();
            s.write_all(&header[..cut]).map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            std::thread::sleep(Duration::from_millis(300));
            let r = read_responses(&mut s, 1)?;
            Ok(r[0].status == Status::ConnError && r[0].detail.starts_with(fault::READ_STALL))
        }
        "oversized-length" => {
            // Header declaring cap+1+jitter bytes: rejected before any
            // allocation, answered with the oversized-frame class.
            let mut s = connect(port).map_err(|e| e.to_string())?;
            let declared = (1u32 << 20) + 1 + m.index(1 << 20) as u32;
            s.write_all(&declared.to_le_bytes()).map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            let r = read_responses(&mut s, 1)?;
            Ok(r[0].status == Status::ConnError && r[0].detail.starts_with(fault::OVERSIZED_FRAME))
        }
        "panic-blob" => {
            // The panic-injection blob, then an honest request on the
            // same connection: the panic poisons only its own request.
            let mut s = connect(port).map_err(|e| e.to_string())?;
            write_frame(&mut s, &verify_frame(&panic_blob(0xdead_beef)))
                .map_err(|e| e.to_string())?;
            write_frame(&mut s, &verify_frame(&honest_blob(seed ^ 0x9a)))
                .map_err(|e| e.to_string())?;
            s.flush().map_err(|e| e.to_string())?;
            let r = read_responses(&mut s, 2)?;
            Ok(r[0].status == Status::Malformed
                && r[0].detail.starts_with("panic:")
                && r[1].status == Status::Accept)
        }
        "busy-storm" => {
            // 12 requests into a held 4-slot queue: exactly 8 busy
            // rejections at deterministic seqs, then 4 verdicts once
            // the gate opens. Every request is answered.
            let blob = honest_blob(seed ^ 0xb5);
            let mut s = connect(port).map_err(|e| e.to_string())?;
            for _ in 0..12 {
                write_frame(&mut s, &verify_frame(&blob)).map_err(|e| e.to_string())?;
            }
            s.flush().map_err(|e| e.to_string())?;
            let early = read_responses(&mut s, 8)?;
            gate.open();
            let late = read_responses(&mut s, 4)?;
            let busy_ok = early.iter().all(|r| r.status == Status::Busy)
                && early.iter().map(|r| r.seq).eq(4u64..12);
            let verified = late.iter().filter(|r| r.status == Status::Accept).count() as u64;
            let late_ok = late.iter().map(|r| r.seq).eq(0u64..4) && verified == 4;
            busy = Some((early.len() as u64, verified));
            Ok(busy_ok && late_ok)
        }
        other => Err(format!("unknown class {other}")),
    })();

    match attack {
        Ok(ok) => confirmed = ok,
        Err(e) => failures.push(format!("{class}: {e}")),
    }

    // The victim runs AFTER the fault: its full round-trip proves the
    // serving threads recycled and no cross-connection damage occurred.
    let (victim_clean, victim_requests) = if run_victim {
        match victim_roundtrip(port, spec.victims, seed ^ 0x71c) {
            Ok(clean) => (clean, spec.victims as u64),
            Err(e) => {
                failures.push(format!("{class}: {e}"));
                (0, spec.victims as u64)
            }
        }
    } else {
        (0, 0)
    };

    // Hard-close faults are classified server-side; give the reader
    // thread a beat to observe the EOF before stopping.
    if class == "mid-frame-disconnect" {
        std::thread::sleep(Duration::from_millis(50));
    }
    gate.open();
    let (conn_faults, escaped) = match server.stop() {
        Ok(stats) => {
            if class == "panic-blob" && stats.panics != 1 {
                failures.push(format!("{class}: expected 1 worker panic, got {}", stats.panics));
            }
            (stats.conn_faults, false)
        }
        Err(e) => {
            failures.push(format!("{class}: server stop: {e}"));
            (0, true)
        }
    };

    CellOutcome { conn_faults, victim_clean, victim_requests, confirmed, escaped, busy, failures }
}

/// Streams the full E12 request mix through a live server at `threads`
/// worker threads and returns `(record digest, request count)`. Public
/// so the freshness test can replay it against the committed digest.
pub fn determinism_probe(base_seed: u64, threads: usize) -> Result<(u64, usize), String> {
    let requests = smoke_requests(base_seed);
    let n = requests.len();
    let cfg =
        ServeConfig { threads, queue_cap: n.max(1), deadline: None, ..ServeConfig::default() };
    let server = spawn_server(cfg).map_err(|e| format!("spawn: {e}"))?;
    let mut s = connect(server.port()).map_err(|e| format!("connect: {e}"))?;
    for (_seq, blob) in &requests {
        write_frame(&mut s, &verify_frame(blob)).map_err(|e| format!("send: {e}"))?;
    }
    s.flush().map_err(|e| format!("flush: {e}"))?;
    let responses = read_responses(&mut s, n)?;
    drop(s);
    server.stop().map_err(|e| format!("stop: {e}"))?;
    let lines: Vec<String> = responses
        .iter()
        .map(|r| {
            let detail = if r.detail.is_empty() { "-" } else { r.detail.as_str() };
            format!("seq={:03} status={} detail={}", r.seq, r.status.name(), detail)
        })
        .collect();
    Ok((fnv1a64(lines.join("\n").as_bytes()), n))
}

/// Drain probe: requests queued behind a held gate must all be answered
/// across a graceful shutdown, and the final stats frame must confirm
/// `drained=ok`. Returns `(requests, completed, stats_ok)`.
fn drain_probe(seed: u64) -> Result<(u64, u64, bool), String> {
    let gate = Gate::closed();
    let cfg = ServeConfig {
        threads: 2,
        queue_cap: 32,
        deadline: None,
        drain_deadline: Duration::from_secs(10),
        hold: Some(gate.clone()),
        ..ServeConfig::default()
    };
    let server = spawn_server(cfg).map_err(|e| format!("spawn: {e}"))?;
    let blob = honest_blob(seed);
    let mut s = connect(server.port()).map_err(|e| format!("connect: {e}"))?;
    let n = 16u64;
    for _ in 0..n {
        write_frame(&mut s, &verify_frame(&blob)).map_err(|e| format!("send: {e}"))?;
    }
    write_frame(&mut s, &[REQ_SHUTDOWN]).map_err(|e| format!("send shutdown: {e}"))?;
    s.flush().map_err(|e| format!("flush: {e}"))?;
    // Workers are held, so the first frame back is the shutdown ack.
    let ack = read_responses(&mut s, 1)?;
    if ack[0].status != Status::ShutdownAck {
        return Err(format!("expected shutdown-ack first, got {}", ack[0].status.name()));
    }
    gate.open();
    // All 16 queued verdicts stream back, then the final stats frame.
    let mut completed = 0u64;
    let mut stats_ok = false;
    for _ in 0..=n {
        match read_frame(&mut s) {
            Ok(Some(p)) => match decode_response(&p) {
                Some(r) if r.status == Status::Stats => {
                    stats_ok = r.detail.contains("drained=ok")
                        && r.detail.contains(&format!("accept={n}"));
                }
                Some(r) if r.status == Status::Accept => completed += 1,
                Some(r) => return Err(format!("unexpected {} during drain", r.status.name())),
                None => return Err("undecodable frame during drain".into()),
            },
            Ok(None) => break,
            Err(e) => return Err(format!("recv during drain: {e}")),
        }
    }
    server.stop().map_err(|e| format!("stop: {e}"))?;
    Ok((n, completed, stats_ok))
}

/// Sustained throughput over localhost TCP (timing data): `n` honest
/// requests split over two connections.
fn throughput_probe(seed: u64, n: usize) -> Result<(u64, f64), String> {
    let cfg = ServeConfig { queue_cap: n.max(1), ..ServeConfig::default() };
    let server = spawn_server(cfg).map_err(|e| format!("spawn: {e}"))?;
    let blob = honest_blob(seed);
    let half = n / 2;
    let started = Instant::now();
    let mut handles = Vec::new();
    for part in [half, n - half] {
        let port = server.port();
        let blob = blob.clone();
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut s = connect(port).map_err(|e| format!("connect: {e}"))?;
            for _ in 0..part {
                write_frame(&mut s, &verify_frame(&blob)).map_err(|e| format!("send: {e}"))?;
            }
            s.flush().map_err(|e| format!("flush: {e}"))?;
            let r = read_responses(&mut s, part)?;
            Ok(r.iter().filter(|r| r.status == Status::Accept).count() as u64)
        }));
    }
    let mut accepted = 0u64;
    for h in handles {
        accepted += h.join().map_err(|_| "throughput client panicked".to_string())??;
    }
    let elapsed = started.elapsed().as_secs_f64();
    server.stop().map_err(|e| format!("stop: {e}"))?;
    if accepted != n as u64 {
        return Err(format!("throughput: {accepted}/{n} accepted"));
    }
    let rps = if elapsed > 0.0 { n as f64 / elapsed } else { 0.0 };
    Ok((n as u64, rps))
}

/// Runs the full E13 audit.
pub fn run_serve_chaos(spec: &ServeChaosSpec, base_seed: u64) -> ServeChaosReport {
    let mut failures: Vec<String> = Vec::new();
    let mut cells = Vec::new();
    let mut escaped_panics = 0u64;
    let mut busy_submitted = 0u64;
    let mut busy_rejected = 0u64;
    let mut busy_verified = 0u64;

    for (ci, class) in CLASSES.iter().enumerate() {
        let mut cell = ChaosCell {
            class,
            trials: spec.trials as u64,
            conn_faults: 0,
            victim_requests: 0,
            victim_clean: 0,
            confirmed: 0,
            expected: spec.trials as u64,
            passed: false,
        };
        for trial in 0..spec.trials {
            let seed = sub_seed(base_seed, (ci as u64) * 1000 + trial as u64);
            let out = run_trial(class, spec, seed);
            cell.conn_faults += out.conn_faults;
            cell.victim_requests += out.victim_requests;
            cell.victim_clean += out.victim_clean;
            cell.confirmed += u64::from(out.confirmed);
            escaped_panics += u64::from(out.escaped);
            if let Some((b, v)) = out.busy {
                busy_submitted += 12;
                busy_rejected += b;
                busy_verified += v;
            }
            failures.extend(out.failures);
        }
        // Per-class invariants: which classes must produce server-side
        // connection faults, and which must not.
        let faults_expected: u64 = match *class {
            "mid-frame-disconnect"
            | fault::TRUNCATED_FRAME
            | "stalled-writer"
            | "oversized-length" => cell.trials,
            _ => 0,
        };
        if cell.conn_faults != faults_expected {
            failures.push(format!(
                "{class}: expected {faults_expected} server-side conn faults, got {}",
                cell.conn_faults
            ));
        }
        if cell.confirmed != cell.expected {
            failures.push(format!(
                "{class}: {}/{} trials confirmed the structured outcome",
                cell.confirmed, cell.expected
            ));
        }
        if cell.victim_clean != cell.victim_requests {
            failures.push(format!(
                "{class}: victim saw {}/{} accepts — cross-connection damage",
                cell.victim_clean, cell.victim_requests
            ));
        }
        cell.passed = cell.conn_faults == faults_expected
            && cell.confirmed == cell.expected
            && cell.victim_clean == cell.victim_requests;
        cells.push(cell);
    }

    // Busy storm accounting: every over-capacity request must have been
    // rejected, every queued one verified.
    let expect_rejected = (spec.trials as u64) * 8;
    let expect_verified = (spec.trials as u64) * 4;
    if busy_rejected != expect_rejected || busy_verified != expect_verified {
        failures.push(format!(
            "busy storm: expected {expect_rejected} busy + {expect_verified} verified, \
             got {busy_rejected} + {busy_verified}"
        ));
    }

    // Drain probe.
    let (drain_requests, drain_completed, drain_stats_ok) =
        match drain_probe(sub_seed(base_seed, 0xd3a1)) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("drain probe: {e}"));
                (0, 0, false)
            }
        };
    if drain_completed != drain_requests || !drain_stats_ok {
        failures.push(format!(
            "drain: {drain_completed}/{drain_requests} completed, stats_ok={drain_stats_ok}"
        ));
    }

    // Determinism probe: E12 mix at 1 and 4 worker threads.
    let determinism_threads = vec![1usize, 4];
    let mut digests = Vec::new();
    for &t in &determinism_threads {
        match determinism_probe(base_seed, t) {
            Ok(d) => digests.push(d),
            Err(e) => failures.push(format!("determinism probe threads={t}: {e}")),
        }
    }
    let deterministic =
        digests.len() == determinism_threads.len() && digests.windows(2).all(|w| w[0] == w[1]);
    if !deterministic {
        failures.push("response records differ across worker thread counts".into());
    }
    let (determinism_digest, determinism_requests) = digests.first().copied().unwrap_or((0, 0));

    // Throughput (timing — informational).
    let (throughput_requests, rps) =
        match throughput_probe(sub_seed(base_seed, 0x7bf), spec.throughput_requests) {
            Ok(t) => t,
            Err(e) => {
                failures.push(format!("throughput probe: {e}"));
                (0, 0.0)
            }
        };
    if rps <= 0.0 {
        failures.push("throughput probe measured zero requests/sec".into());
    }

    if escaped_panics > 0 {
        failures.push(format!("{escaped_panics} panics escaped a server thread"));
    }

    ServeChaosReport {
        seed: base_seed,
        trials: spec.trials as u64,
        cells,
        busy_submitted,
        busy_queue_cap: 4,
        busy_rejected,
        busy_verified,
        drain_requests,
        drain_completed,
        drain_stats_ok,
        determinism_threads,
        determinism_requests: determinism_requests as u64,
        determinism_digest,
        deterministic,
        escaped_panics,
        throughput_requests,
        rps,
        passed: failures.is_empty(),
        failures,
    }
}

impl ServeChaosReport {
    /// The text artifact (`results/e13_serve_chaos.txt`). The
    /// requests/sec figure is printed to stdout by the CLI but *not*
    /// written here — the committed artifact stays timing-free.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("E13: chaos at the wire — concurrent serve under connection faults\n");
        out.push_str(&format!("seed={:#x} trials_per_class={}\n\n", self.seed, self.trials));
        let rows: Vec<Vec<String>> = self
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.class.to_string(),
                    c.trials.to_string(),
                    c.conn_faults.to_string(),
                    format!("{}/{}", c.victim_clean, c.victim_requests),
                    format!("{}/{}", c.confirmed, c.expected),
                    if c.passed { "ok" } else { "FAIL" }.to_string(),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &["class", "trials", "conn_faults", "victim", "confirmed", "verdict"],
            &rows,
        ));
        out.push_str(&format!(
            "\nbusy storm: submitted={} queue_cap={} busy={} verified={}\n",
            self.busy_submitted, self.busy_queue_cap, self.busy_rejected, self.busy_verified
        ));
        out.push_str(&format!(
            "drain: requests={} completed={} stats_ok={}\n",
            self.drain_requests, self.drain_completed, self.drain_stats_ok
        ));
        out.push_str(&format!(
            "determinism: threads={:?} requests={} digest={:016x} identical={}\n",
            self.determinism_threads,
            self.determinism_requests,
            self.determinism_digest,
            self.deterministic
        ));
        out.push_str(&format!("escaped_panics={}\n", self.escaped_panics));
        out.push_str(&format!("\nE13 audit: {}\n", if self.passed { "PASS" } else { "FAIL" }));
        for f in &self.failures {
            out.push_str(&format!("  failure: {f}\n"));
        }
        out
    }

    /// The JSON artifact (`results/e13_serve_chaos.json`). The
    /// deterministic payload carries the invariants; `rps` is the one
    /// timing field and is never byte-compared (the freshness test
    /// asserts it parses and is positive).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e13-serve-chaos\",\n");
        out.push_str(&format!("  \"seed\": \"{:#x}\",\n", self.seed));
        out.push_str(&format!("  \"trials_per_class\": {},\n", self.trials));
        out.push_str(&format!("  \"escaped_panics\": {},\n", self.escaped_panics));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"trials\": {}, \"conn_faults\": {}, \
                 \"victim_requests\": {}, \"victim_clean\": {}, \"confirmed\": {}, \
                 \"expected\": {}, \"passed\": {}}}{}\n",
                c.class,
                c.trials,
                c.conn_faults,
                c.victim_requests,
                c.victim_clean,
                c.confirmed,
                c.expected,
                c.passed,
                if i + 1 < self.cells.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"busy_storm\": {{\"submitted\": {}, \"queue_cap\": {}, \"busy\": {}, \
             \"verified\": {}}},\n",
            self.busy_submitted, self.busy_queue_cap, self.busy_rejected, self.busy_verified
        ));
        out.push_str(&format!(
            "  \"drain\": {{\"requests\": {}, \"completed\": {}, \"stats_ok\": {}}},\n",
            self.drain_requests, self.drain_completed, self.drain_stats_ok
        ));
        out.push_str(&format!(
            "  \"determinism\": {{\"threads\": [{}], \"requests\": {}, \
             \"digest\": \"{:016x}\", \"identical\": {}}},\n",
            self.determinism_threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", "),
            self.determinism_requests,
            self.determinism_digest,
            self.deterministic
        ));
        out.push_str(&format!(
            "  \"throughput\": {{\"requests\": {}, \"rps\": {:.1}}},\n",
            self.throughput_requests, self.rps
        ));
        out.push_str(&format!("  \"passed\": {}\n", self.passed));
        out.push_str("}\n");
        out
    }
}
