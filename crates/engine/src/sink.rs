//! Machine-readable sinks: aggregate JSON and per-run CSV.
//!
//! The JSON sink serializes only scheduling-independent data (the spec
//! echo, the aggregate table, quarantined failures), so for a fixed spec
//! its bytes are identical at any worker count. The CSV sink carries one
//! row per run *including wall time*, and is therefore documented as
//! non-deterministic across executions.

use crate::record::SweepOutcome;
use crate::spec::SweepSpec;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the deterministic aggregate document as a JSON string.
pub fn aggregate_json(spec: &SweepSpec, outcome: &SweepOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    // Spec echo (the deterministic inputs).
    let _ = writeln!(
        s,
        "  \"spec\": {{\"families\": [{}], \"sizes\": [{}], \"trials\": {}, \"base_seed\": {}}},",
        spec.families.iter().map(|f| format!("\"{}\"", f.name())).collect::<Vec<_>>().join(", "),
        spec.sizes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", "),
        spec.trials,
        spec.base_seed,
    );
    s.push_str("  \"aggregates\": [\n");
    let table = outcome.aggregate();
    let rows: Vec<String> = table
        .iter()
        .map(|((family, prover, n), c)| {
            format!(
                "    {{\"family\": \"{}\", \"prover\": \"{}\", \"n\": {}, \"runs\": {}, \
                 \"accepted\": {}, \"acceptance_rate\": {:.6}, \"min_proof_bits\": {}, \
                 \"mean_proof_bits\": {:.3}, \"max_proof_bits\": {}, \"rounds\": {}, \
                 \"quarantined\": {}}}",
                family.name(),
                prover.tag(),
                n,
                c.runs,
                c.accepted,
                c.acceptance_rate(),
                if c.runs == 0 { 0 } else { c.min_proof_bits },
                c.mean_proof_bits(),
                c.max_proof_bits,
                c.rounds,
                c.failures,
            )
        })
        .collect();
    s.push_str(&rows.join(",\n"));
    s.push_str("\n  ],\n");
    s.push_str("  \"failures\": [\n");
    let fails: Vec<String> = outcome
        .failures
        .iter()
        .map(|f| {
            format!(
                "    {{\"index\": {}, \"family\": \"{}\", \"prover\": \"{}\", \"n\": {}, \
                 \"trial\": {}, \"attempts\": {}, \"kind\": \"{}\", \"payload\": \"{}\"}}",
                f.index,
                f.family.name(),
                f.prover.tag(),
                f.n,
                f.trial,
                f.attempts,
                f.kind.name(),
                json_escape(&f.payload),
            )
        })
        .collect();
    s.push_str(&fails.join(",\n"));
    s.push_str("\n  ]\n}\n");
    s
}

/// Renders every run as a CSV document (includes wall-clock micros; not
/// byte-stable across executions).
pub fn records_csv(outcome: &SweepOutcome) -> String {
    let mut s = String::from(
        "index,family,n,actual_n,prover,trial,gen_seed,run_seed,accepted,rounds,\
         proof_size_bits,coin_bits,attempts,wall_micros,first_rejection\n",
    );
    for r in &outcome.records {
        let first_rej = r
            .rejections
            .first()
            .map(|(v, reason)| format!("node {v}: {reason}"))
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.index,
            r.family.name(),
            r.n,
            r.actual_n,
            r.prover.tag(),
            r.trial,
            r.gen_seed,
            r.run_seed,
            r.accepted,
            r.rounds,
            r.proof_size_bits,
            r.coin_bits,
            r.attempts,
            r.wall.as_micros(),
            csv_escape(&first_rej),
        );
    }
    s
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes the aggregate JSON and records CSV next to each other:
/// `<base>.json` and `<base>.csv`. Returns the two paths written.
pub fn write_outputs(
    base: &Path,
    spec: &SweepSpec,
    outcome: &SweepOutcome,
) -> io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    if let Some(dir) = base.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json_path = base.with_extension("json");
    let csv_path = base.with_extension("csv");
    std::fs::write(&json_path, aggregate_json(spec, outcome))?;
    std::fs::write(&csv_path, records_csv(outcome))?;
    Ok((json_path, csv_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Family;
    use crate::pool::Engine;
    use crate::spec::{ProverSpec, SweepSpec};

    fn spec() -> SweepSpec {
        SweepSpec {
            families: vec![Family::PathOuterplanar],
            sizes: vec![40],
            provers: vec![ProverSpec::Honest, ProverSpec::PanicInjection],
            trials: 2,
            base_seed: 5,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn json_is_deterministic_across_thread_counts() {
        let spec = spec();
        let a = aggregate_json(&spec, &Engine::with_threads(1).run(&spec));
        let b = aggregate_json(&spec, &Engine::with_threads(4).run(&spec));
        assert_eq!(a, b, "aggregate JSON must not depend on worker count");
        assert!(a.contains("\"quarantined\": 2"));
        assert!(a.contains("\"kind\": \"panicked\""));
        assert!(a.contains("injected panic"));
    }

    #[test]
    fn json_reports_timed_out_failures() {
        use std::time::Duration;
        let spec = SweepSpec { job_deadline: Some(Duration::ZERO), ..spec() };
        let json = aggregate_json(&spec, &Engine::with_threads(1).run(&spec));
        assert!(json.contains("\"kind\": \"timed-out\""));
        assert!(json.contains("watchdog"));
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let spec = spec();
        let outcome = Engine::with_threads(2).run(&spec);
        let csv = records_csv(&outcome);
        // Header plus one line per completed record (panics quarantine).
        assert_eq!(csv.lines().count(), 1 + outcome.records.len());
        assert!(csv.lines().nth(1).unwrap().contains("path-outerplanarity"));
    }

    #[test]
    fn escaping_helpers() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b\"c"), "\"a,b\"\"c\"");
    }
}
