//! The fixed worker pool: std threads + channels, deterministic results,
//! panic isolation with retry-then-quarantine.
//!
//! Workers pull jobs from a shared atomic cursor and send outcomes to a
//! collector thread; after the pool drains, records are sorted back into
//! grid order. Because per-job seeds are derived from `(base_seed, index)`
//! alone (see [`crate::seed`]), the sorted records — and everything folded
//! from them — are byte-identical for any worker count.

use crate::family::{no_instance_with, Family, YesInstance};
use crate::record::{FailureKind, JobFailure, RunRecord, SweepMetrics, SweepOutcome};
use crate::seed::{labels, sub_seed};
use crate::spec::{JobSpec, Prover, SweepSpec};
use pdip_graph::TraversalScratch;
use pdip_obs::{counter, span, BufferedRecorder, NoopRecorder, Recorder, ScopedRecorder, SpanId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Instant;

/// Cache capacity per worker; on overflow the cache is cleared wholesale
/// (generation is pure in the key, so eviction can never change results).
const SCRATCH_CAP: usize = 256;

/// Per-worker reusable scratch: an instance cache keyed by the full
/// generation input `(family, n, yes/no, gen_seed)`.
///
/// Sweep grids with explicit seed functions (E3-style soundness grids)
/// re-generate the *same* instance for every cheat strategy and every
/// retry; caching it per worker removes that regeneration from the hot
/// path. Because [`YesInstance::generate`] / [`no_instance`] are pure
/// functions of the key, a cache hit returns a byte-identical instance
/// and the engine's determinism guarantee is untouched — records are
/// the same whether the scratch is cold, warm, or shared with other
/// jobs. Each worker thread owns one arena for its whole drain of the
/// job queue.
#[derive(Default)]
pub struct WorkerScratch {
    cache: HashMap<(Family, usize, bool, u64), YesInstance>,
    /// Graph-side traversal buffers (visited epochs, BFS/DFS stacks, LR
    /// arena) reused by every instance generation this worker performs,
    /// so repeated sweep jobs do no graph-side allocation after warmup.
    traversal: TraversalScratch,
    hits: u64,
    misses: u64,
}

impl WorkerScratch {
    /// A fresh (cold) scratch arena.
    pub fn new() -> WorkerScratch {
        WorkerScratch::default()
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (instance generations) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The instance for `(family, n, yes, gen_seed)`, generated on first
    /// use and reused on every later request with the same key.
    pub fn instance(&mut self, family: Family, n: usize, yes: bool, gen_seed: u64) -> &YesInstance {
        let key = (family, n, yes, gen_seed);
        if self.cache.len() >= SCRATCH_CAP && !self.cache.contains_key(&key) {
            self.cache.clear();
        }
        let WorkerScratch { cache, traversal, hits, misses } = self;
        match cache.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                *hits += 1;
                e.into_mut()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                *misses += 1;
                e.insert(if yes {
                    YesInstance::generate_with(family, n, gen_seed, traversal)
                } else {
                    no_instance_with(family, n, gen_seed, traversal)
                })
            }
        }
    }
}

/// The batch-verification engine: a sweep executor with a fixed worker
/// count.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Worker threads (1 = serial; results are identical either way).
    pub threads: usize,
    /// Suppress the default panic hook's stderr spew while jobs run
    /// (quarantined panics are reported as [`JobFailure`]s instead).
    pub quiet_panics: bool,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            threads: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            quiet_panics: true,
        }
    }
}

impl Engine {
    /// An engine with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        Engine { threads, ..Engine::default() }
    }

    /// Expands `spec` and executes every job, returning records and
    /// quarantined failures in grid order.
    pub fn run(&self, spec: &SweepSpec) -> SweepOutcome {
        let jobs = spec.expand();
        self.run_jobs(spec, &jobs)
    }

    /// [`Engine::run`] with an instrumentation [`Recorder`]: per-job
    /// execute spans (job index as the event context), queue-wait and
    /// execute duration histograms, retry/timeout counters, and every
    /// protocol-level span the instrumented protocols emit.
    ///
    /// The recorder rides as a parameter (not an engine field) so the
    /// engine stays `Clone`; each worker buffers through one
    /// [`BufferedRecorder`] shard, keeping a collecting parent's drain
    /// deterministic across worker counts. With a disabled recorder
    /// this is exactly [`Engine::run`].
    pub fn run_traced(&self, spec: &SweepSpec, rec: &dyn Recorder) -> SweepOutcome {
        let jobs = spec.expand();
        self.run_jobs_traced(spec, &jobs, rec)
    }

    /// Executes an explicit job list (already expanded from `spec`).
    pub fn run_jobs(&self, spec: &SweepSpec, jobs: &[JobSpec]) -> SweepOutcome {
        self.run_jobs_traced(spec, jobs, &NoopRecorder)
    }

    /// [`Engine::run_jobs`] with an instrumentation [`Recorder`]
    /// (see [`Engine::run_traced`]).
    pub fn run_jobs_traced(
        &self,
        spec: &SweepSpec,
        jobs: &[JobSpec],
        rec: &dyn Recorder,
    ) -> SweepOutcome {
        let threads = self.threads.max(1);
        let _silencer = self.quiet_panics.then(PanicSilencer::engage);
        let start = Instant::now();
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<Result<RunRecord, JobFailure>>();

        let (mut records, mut failures) = thread::scope(|s| {
            // Collector: drains the channel while workers run, so job
            // outputs never pile up in channel buffers of blocked senders.
            let collector = s.spawn(move || {
                let mut records = Vec::new();
                let mut failures = Vec::new();
                for out in rx {
                    match out {
                        Ok(r) => records.push(r),
                        Err(f) => failures.push(f),
                    }
                }
                (records, failures)
            });
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                s.spawn(move || {
                    // Sweeps parallelize across jobs; intra-job chunk
                    // splitting (pdip_core::par) inside a pool worker
                    // would nest a second thread layer, so pin this
                    // worker serial for its whole life.
                    let _serial = pdip_core::par::SerialGuard::install();
                    // One scratch arena per worker, reused across every
                    // job this worker drains from the queue, and one
                    // contiguous event shard (flushed on drop).
                    let mut scratch = WorkerScratch::new();
                    let worker_rec = BufferedRecorder::new(rec);
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        if worker_rec.enabled() {
                            // Time from pool start to job pickup: the
                            // job's queue wait (histogram only — wall
                            // data never enters the event stream).
                            let nanos = start.elapsed().as_nanos();
                            worker_rec.duration(
                                "engine/queue-wait",
                                u64::try_from(nanos).unwrap_or(u64::MAX),
                            );
                        }
                        let out = execute_job_traced(spec, job, &mut scratch, &worker_rec);
                        if tx.send(out).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            collector.join().expect("collector thread panicked")
        });

        records.sort_by_key(|r| r.index);
        failures.sort_by_key(|f| f.index);
        let quarantined =
            failures.iter().filter(|f| f.kind == FailureKind::Panicked).count() as u64;
        let timed_out = failures.iter().filter(|f| f.kind == FailureKind::TimedOut).count() as u64;
        let retries = records.iter().map(|r| (r.attempts - 1) as u64).sum::<u64>()
            + failures.iter().map(|f| (f.attempts - 1) as u64).sum::<u64>();
        let mut metrics = SweepMetrics {
            jobs: (records.len() + failures.len()) as u64,
            failures: failures.len() as u64,
            quarantined,
            timed_out,
            retries,
            threads,
            wall: start.elapsed(),
            peak_rss_bytes: None,
            alloc_peak_bytes: None,
        };
        metrics.capture_memory();
        SweepOutcome { records, failures, metrics }
    }
}

/// Runs one job behind panic isolation with a cold scratch arena.
///
/// Equivalent to [`execute_job_with`] on a fresh [`WorkerScratch`]; the
/// worker pool threads a persistent per-worker arena instead.
pub fn execute_job(spec: &SweepSpec, job: &JobSpec) -> Result<RunRecord, JobFailure> {
    execute_job_with(spec, job, &mut WorkerScratch::new())
}

/// Runs one job behind panic isolation with the spec's retry budget,
/// reusing `scratch` for instance generation.
///
/// Retry `k` re-runs the protocol with a seed derived from the job's run
/// seed and `k`, so a panic caused by an unlucky coin draw can clear
/// while a deterministic panic exhausts its attempts and is quarantined.
/// The attempt sequence depends only on the job, never on scheduling or
/// on the scratch contents.
///
/// A completed run whose wall time exceeds the spec's
/// [`SweepSpec::job_deadline`] watchdog is quarantined as
/// [`FailureKind::TimedOut`] instead of entering the record stream; a
/// timeout is terminal (never retried), because re-running a structurally
/// slow job only stalls the pool again.
pub fn execute_job_with(
    spec: &SweepSpec,
    job: &JobSpec,
    scratch: &mut WorkerScratch,
) -> Result<RunRecord, JobFailure> {
    execute_job_traced(spec, job, scratch, &NoopRecorder)
}

/// [`execute_job_with`] with an instrumentation [`Recorder`]: the run
/// executes under an `engine/job` span whose event context is the job's
/// grid index, with `retry` / `timed_out` counters and the protocol's
/// own spans nested inside. With a disabled recorder this is exactly
/// [`execute_job_with`] — same seeds, same records.
pub fn execute_job_traced(
    spec: &SweepSpec,
    job: &JobSpec,
    scratch: &mut WorkerScratch,
    rec: &dyn Recorder,
) -> Result<RunRecord, JobFailure> {
    // Every event below carries the job's grid index as its context, so
    // the drained trace groups per job no matter which worker ran it.
    let job_rec = ScopedRecorder::new(rec, job.coords.index);
    let job_id = SpanId::new("engine/job");
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if attempt > 1 {
            counter(&job_rec, 0, job_id, "retry", 1);
        }
        let run_seed = if attempt == 1 {
            job.run_seed
        } else {
            sub_seed(sub_seed(job.run_seed, labels::RETRY), attempt as u64)
        };
        match catch_unwind(AssertUnwindSafe(|| {
            let _exec = span(&job_rec, 0, SpanId::new("engine/execute"));
            run_once(spec, job, run_seed, scratch, &job_rec)
        })) {
            Ok(mut record) => {
                record.attempts = attempt;
                if let Some(deadline) = spec.job_deadline {
                    if record.wall > deadline {
                        counter(&job_rec, 0, job_id, "timed_out", 1);
                        let c = &job.coords;
                        return Err(JobFailure {
                            index: c.index,
                            family: c.family,
                            n: c.n,
                            prover: c.prover,
                            trial: c.trial,
                            attempts: attempt,
                            kind: FailureKind::TimedOut,
                            // The measured wall time stays out of the
                            // payload: failures feed the deterministic
                            // JSON sink, which must not carry timings.
                            payload: format!(
                                "watchdog: exceeded the {:.3}s job deadline",
                                deadline.as_secs_f64()
                            ),
                        });
                    }
                }
                return Ok(record);
            }
            Err(payload) => {
                if attempt > spec.max_retries {
                    let c = &job.coords;
                    return Err(JobFailure {
                        index: c.index,
                        family: c.family,
                        n: c.n,
                        prover: c.prover,
                        trial: c.trial,
                        attempts: attempt,
                        kind: FailureKind::Panicked,
                        payload: payload_string(payload),
                    });
                }
            }
        }
    }
}

fn run_once(
    spec: &SweepSpec,
    job: &JobSpec,
    run_seed: u64,
    scratch: &mut WorkerScratch,
    rec: &dyn Recorder,
) -> RunRecord {
    let c = &job.coords;
    let start = Instant::now();
    let (res, actual_n, rounds) = match c.prover {
        Prover::Honest => {
            let inst = scratch.instance(c.family, c.n, true, job.gen_seed);
            inst.with_protocol(spec.params, spec.transport, |p| {
                (p.run_honest_traced(run_seed, rec), p.instance_size(), p.rounds())
            })
        }
        Prover::Cheat(s) => {
            let inst = scratch.instance(c.family, c.n, false, job.gen_seed);
            inst.with_protocol(spec.params, spec.transport, |p| {
                (p.run_cheat_traced(s, run_seed, rec), p.instance_size(), p.rounds())
            })
        }
        Prover::PanicInjection => panic!(
            "injected panic: {} n={} trial={} (fault injection)",
            c.family.name(),
            c.n,
            c.trial
        ),
    };
    let mut record = RunRecord::from_result(job, actual_n, rounds, &res, start.elapsed());
    record.run_seed = run_seed;
    record
}

fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Depth-counted suppression of the global panic hook, so quarantined
/// panics don't spray backtrace noise over sweep output. Re-entrant
/// across concurrently running engines; the previous hook is restored
/// when the last engine finishes.
pub(crate) struct PanicSilencer;

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync>;

struct SilenceState {
    depth: usize,
    saved: Option<PanicHook>,
}

static SILENCE: Mutex<SilenceState> = Mutex::new(SilenceState { depth: 0, saved: None });

impl PanicSilencer {
    pub(crate) fn engage() -> PanicSilencer {
        let mut st = SILENCE.lock().expect("panic-hook state poisoned");
        if st.depth == 0 {
            st.saved = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|_| {}));
        }
        st.depth += 1;
        PanicSilencer
    }
}

impl Drop for PanicSilencer {
    fn drop(&mut self) {
        let mut st = SILENCE.lock().expect("panic-hook state poisoned");
        st.depth -= 1;
        if st.depth == 0 {
            if let Some(hook) = st.saved.take() {
                std::panic::set_hook(hook);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::Family;
    use crate::spec::ProverSpec;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            families: vec![Family::PathOuterplanar],
            sizes: vec![40],
            provers: vec![ProverSpec::Honest],
            trials: 4,
            base_seed: 99,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn honest_jobs_complete_and_accept() {
        let outcome = Engine::with_threads(2).run(&tiny_spec());
        assert_eq!(outcome.records.len(), 4);
        assert!(outcome.failures.is_empty());
        assert!(outcome.records.iter().all(|r| r.accepted));
        assert!(outcome.records.iter().all(|r| r.rounds == 5));
        assert_eq!(outcome.metrics.jobs, 4);
    }

    #[test]
    fn panic_injection_is_quarantined_not_fatal() {
        let spec = SweepSpec {
            provers: vec![ProverSpec::Honest, ProverSpec::PanicInjection],
            trials: 2,
            max_retries: 1,
            ..tiny_spec()
        };
        let outcome = Engine::with_threads(3).run(&spec);
        // Honest jobs complete; every injected panic is quarantined.
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.failures.len(), 2);
        for f in &outcome.failures {
            assert_eq!(f.attempts, 2, "one attempt + one retry");
            assert!(f.payload.contains("injected panic"), "{}", f.payload);
            assert_eq!(f.prover, Prover::PanicInjection);
            assert_eq!(f.kind, FailureKind::Panicked);
        }
        assert_eq!(outcome.metrics.failures, 2);
        assert_eq!(outcome.metrics.quarantined, 2);
        assert_eq!(outcome.metrics.timed_out, 0);
        assert_eq!(outcome.metrics.retries, 2, "each panic job burned one retry");
        assert!(outcome.metrics.summary_line().contains("2 quarantined"));
    }

    #[test]
    fn watchdog_deadline_quarantines_slow_jobs_without_retry() {
        use std::time::Duration;
        // A zero-length deadline times out every job: the watchdog
        // classifies completed runs post-hoc, so detection is exact.
        let spec = SweepSpec { job_deadline: Some(Duration::ZERO), ..tiny_spec() };
        let outcome = Engine::with_threads(2).run(&spec);
        assert!(outcome.records.is_empty());
        assert_eq!(outcome.failures.len(), 4);
        for f in &outcome.failures {
            assert_eq!(f.kind, FailureKind::TimedOut);
            assert_eq!(f.attempts, 1, "timeouts must not be retried");
            assert!(f.payload.contains("watchdog"), "{}", f.payload);
        }
        assert_eq!(outcome.metrics.timed_out, 4);
        assert_eq!(outcome.metrics.quarantined, 0);
        assert_eq!(outcome.metrics.retries, 0);
        assert!(outcome.metrics.summary_line().contains("4 timed out"));
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        use std::time::Duration;
        let lax = SweepSpec { job_deadline: Some(Duration::from_secs(3600)), ..tiny_spec() };
        let outcome = Engine::with_threads(2).run(&lax);
        assert_eq!(outcome.records.len(), 4);
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.metrics.timed_out, 0);
        // Records under a generous deadline match the no-deadline run
        // bit-for-bit on the deterministic surface.
        let plain = Engine::with_threads(2).run(&tiny_spec());
        let key = |r: &RunRecord| (r.index, r.accepted, r.proof_size_bits, r.run_seed);
        assert_eq!(
            outcome.records.iter().map(key).collect::<Vec<_>>(),
            plain.records.iter().map(key).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn records_come_back_in_grid_order() {
        let spec = SweepSpec { trials: 12, ..tiny_spec() };
        let outcome = Engine::with_threads(4).run(&spec);
        let indices: Vec<u64> = outcome.records.iter().map(|r| r.index).collect();
        assert_eq!(indices, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn warm_scratch_produces_identical_records() {
        use crate::spec::SeedMode;
        // An E3-style grid where every cheat strategy at a cell shares
        // the generation seed, so a warm scratch actually gets hits.
        let spec = SweepSpec {
            families: vec![Family::PathOuterplanar],
            sizes: vec![40],
            provers: vec![ProverSpec::Honest, ProverSpec::AllCheats],
            trials: 3,
            base_seed: 7,
            seeds: SeedMode::Explicit(|c| (c.trial * 31 + c.n as u64, c.trial)),
            ..SweepSpec::default()
        };
        let timeless = |r: &RunRecord| {
            format!(
                "{} {} {} {} {} {} {} {:?}",
                r.index,
                r.gen_seed,
                r.run_seed,
                r.accepted,
                r.rounds,
                r.proof_size_bits,
                r.coin_bits,
                r.rejections,
            )
        };
        let jobs = spec.expand();
        let mut scratch = WorkerScratch::new();
        let warm: Vec<String> = jobs
            .iter()
            .map(|j| timeless(&execute_job_with(&spec, j, &mut scratch).unwrap()))
            .collect();
        let cold: Vec<String> =
            jobs.iter().map(|j| timeless(&execute_job(&spec, j).unwrap())).collect();
        assert_eq!(warm, cold, "scratch reuse must not change any record");
        assert!(scratch.hits() > 0, "shared gen seeds must hit the cache");
        assert!(scratch.misses() > 0);
    }

    #[test]
    fn scratch_cache_stays_bounded() {
        let mut scratch = WorkerScratch::new();
        for seed in 0..(2 * super::SCRATCH_CAP as u64 + 10) {
            scratch.instance(Family::PathOuterplanar, 24, true, seed);
        }
        assert!(scratch.cache.len() <= super::SCRATCH_CAP);
        assert_eq!(scratch.hits(), 0, "distinct keys never hit");
    }
}
