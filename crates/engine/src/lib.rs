//! `pdip-engine` — the parallel batch-verification engine.
//!
//! Every paper-claim table in this repository is a sweep: protocol runs
//! over families × instance sizes × prover behaviours × trials. This
//! crate executes such sweeps on a fixed worker pool (std threads +
//! channels; no external dependencies) with three guarantees:
//!
//! 1. **Determinism.** Per-job seeds derive from `(base_seed, job index)`
//!    through a SplitMix64 stream ([`seed`]), never from scheduling, and
//!    results are re-sorted into grid order — so a sweep at 16 workers
//!    produces byte-identical records and aggregate tables to the same
//!    sweep at 1 worker.
//! 2. **Panic isolation.** Each job runs behind `catch_unwind` with a
//!    bounded retry budget; a panicking protocol run is quarantined as a
//!    [`JobFailure`] carrying its payload, and the sweep continues.
//! 3. **Structured output.** Every run yields a [`RunRecord`] (verdict,
//!    proof-size bits, per-round bits, coins, rejections, wall time); a
//!    collector folds records into deterministic aggregate tables and
//!    machine-readable JSON/CSV sinks ([`sink`]), plus throughput
//!    metrics ([`SweepMetrics`]).
//!
//! The experiment binaries E1–E3 (`pdip-bench`) and the `pdip sweep` CLI
//! subcommand drive their grids through this engine.
//!
//! ```
//! use pdip_engine::{Engine, Family, ProverSpec, SweepSpec};
//!
//! let spec = SweepSpec {
//!     families: vec![Family::PathOuterplanar],
//!     sizes: vec![48],
//!     provers: vec![ProverSpec::Honest, ProverSpec::AllCheats],
//!     trials: 2,
//!     base_seed: 7,
//!     ..SweepSpec::default()
//! };
//! let outcome = Engine::with_threads(4).run(&spec);
//! assert!(outcome.failures.is_empty());
//! assert_eq!(outcome.records.len() as u64, spec.job_count());
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod client;
pub mod family;
pub mod obs_audit;
pub mod pool;
pub mod record;
pub mod report;
pub mod scale;
pub mod seed;
pub mod serve;
pub mod serve_chaos;
pub mod sink;
pub mod spec;
pub mod trace;

pub use chaos::{
    build_target, run_chaos, ChaosOutcome, ChaosRecord, ChaosReport, ChaosSpec, Determinism,
    MutatorKind, TamperOutcome, Tamperable, TargetId, MUTATORS, TARGETS,
};
pub use client::{
    backoff_delay_ms, fetch_stats, run_client, stats_detail_to_json, ClientOpts, ClientOutcome,
};
pub use family::{no_instance, no_instance_with, Family, YesInstance, FAMILIES};
pub use obs_audit::{
    metrics_determinism_probe, run_obs_audit, MetricsProbe, ObsAuditReport, ObsAuditSpec, E14_SEED,
};
pub use pool::{execute_job, execute_job_traced, execute_job_with, Engine, WorkerScratch};
pub use record::{
    CellAgg, CellKey, FailureKind, JobFailure, RunRecord, SweepMetrics, SweepOutcome,
};
pub use report::{print_table, render_table, Reporter};
pub use scale::{
    digest_result, run_scale, scale_metrics, verify_stream, OverlapAudit, ScaleReport, ScaleRow,
    ScaleSpec, E11_SEED,
};
pub use seed::{job_seed, splitmix_finalize, sub_seed};
pub use serve::{
    decode_response, encode_response, panic_blob, process_batch, read_frame, run_serve_smoke,
    serve_concurrent, serve_stream, serve_tcp, smoke_requests, spawn_server, verify_blob,
    write_frame, Gate, Response, ServeConfig, ServeObs, ServeSmokeReport, ServeStats, ServerHandle,
    ShutdownFlag, Status, DEFAULT_FLIGHT_CAP, DEFAULT_SLOW_THRESHOLD, E12_SEED, REQ_STATS,
};
pub use serve_chaos::{
    determinism_probe, run_serve_chaos, ChaosCell, ServeChaosReport, ServeChaosSpec, E13_SEED,
};
pub use sink::{aggregate_json, records_csv, write_outputs};
pub use spec::{JobCoords, JobSpec, Prover, ProverSpec, SeedMode, SweepSpec};
pub use trace::{
    envelope_bits, run_trace, TraceCell, TraceOutcome, TraceReport, TraceSpec, E10_SEED,
};
