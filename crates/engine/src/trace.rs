//! E10 — the round-by-round proof-size trace audit.
//!
//! Runs every derived protocol family honestly over an n-grid with a
//! [`CollectingRecorder`] threaded through the engine, then audits the
//! drained trace three ways:
//!
//! 1. **Span/record cross-check.** For every job, the `"round_max_bits"`
//!    / run-level counters the protocol emitted through [`trace_stats`]
//!    conventions (see `pdip-core::trace`) must equal the
//!    [`RunRecord`]'s own `per_round_max_bits` / `proof_size_bits` /
//!    `coin_bits` — the tracing layer is not allowed to drift from the
//!    bit accounting the tables are built on.
//! 2. **Envelope audit.** Every prover round's max label bits must sit
//!    inside the family's `C·log2(n)` envelope — a deliberately loose
//!    ceiling over the theorems' O(log log n) claims (Theorems 1.2–1.7;
//!    planarity's O(log Δ) term is covered by its larger constant), so
//!    a regression that blows up label widths fails the audit while
//!    honest drift in constants does not.
//! 3. **Determinism.** The report is built from record-ordered events
//!    only (rule 1/2 of the `pdip-obs` determinism rules) and contains
//!    no timing, so its rendered forms are byte-identical across worker
//!    counts. Duration histograms are exposed separately
//!    ([`TraceOutcome::timing_lines`]) for stdout only.
//!
//! [`trace_stats`]: pdip_core::trace_stats

use crate::family::{Family, FAMILIES};
use crate::pool::Engine;
use crate::record::SweepMetrics;
use crate::spec::{ProverSpec, SweepSpec};
use pdip_obs::{CollectingRecorder, SpanId, Trace};
use std::collections::BTreeMap;

/// The E10 grid: every family, honest prover, `sizes` × `trials`.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Instance sizes to trace.
    pub sizes: Vec<usize>,
    /// Honest runs per (family, n) cell.
    pub trials: u64,
    /// Base seed of the job-seed stream.
    pub base_seed: u64,
    /// Worker threads (the report is identical for any value).
    pub threads: usize,
}

/// The committed-artifact seed (results/e10_trace.*).
pub const E10_SEED: u64 = 0xE10;

impl TraceSpec {
    /// The full grid behind the committed `results/e10_trace.*`.
    pub fn full() -> Self {
        TraceSpec { sizes: vec![64, 256, 1024], trials: 3, base_seed: E10_SEED, threads: 4 }
    }

    /// The CI smoke grid (`pdip trace --smoke`): small sizes, same
    /// audits.
    pub fn smoke() -> Self {
        TraceSpec { sizes: vec![48, 96], trials: 2, base_seed: E10_SEED, threads: 4 }
    }

    /// The engine sweep behind the grid (honest provers only, streamed
    /// per-job seeds). Public so the freshness guard can re-execute
    /// individual jobs with the exact seeds of the committed artifact.
    pub fn sweep(&self) -> SweepSpec {
        SweepSpec {
            families: FAMILIES.to_vec(),
            sizes: self.sizes.clone(),
            provers: vec![ProverSpec::Honest],
            trials: self.trials,
            base_seed: self.base_seed,
            ..SweepSpec::default()
        }
    }
}

/// Per-round slope of the `C·log2(n)` label-bit envelope.
///
/// Constants are calibrated to ~2× the observed honest maxima at the
/// smallest audited size (n = 48), so they catch order-of-magnitude
/// label-width regressions without tripping on constant-factor drift.
/// The embedded/planarity families carry the ×5 copy-simulation of the
/// h(G,T,ρ) reduction (§7), hence the larger slope; planarity adds its
/// O(log Δ) rotation term under the same ceiling.
pub fn envelope_slope(family: Family) -> usize {
    match family {
        Family::PathOuterplanar => 64,
        Family::Outerplanar => 64,
        Family::EmbeddedPlanarity => 384,
        Family::Planarity => 384,
        Family::SeriesParallel => 64,
        Family::Treewidth2 => 64,
    }
}

/// The audited ceiling for one (family, n) cell: `slope · ceil(log2 n)`.
pub fn envelope_bits(family: Family, n: usize) -> usize {
    let log2n = usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1;
    envelope_slope(family) * log2n as usize
}

/// One audited (family, n) cell of the trace report.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// Graph family.
    pub family: Family,
    /// Instance size.
    pub n: usize,
    /// Honest runs aggregated into the cell.
    pub runs: u64,
    /// Per prover-round max label bits (max over the cell's runs).
    pub round_max_bits: Vec<u64>,
    /// Per prover-round total label bits (max over the cell's runs).
    pub round_total_bits: Vec<u64>,
    /// Proof size (max over the cell's runs).
    pub proof_size_bits: u64,
    /// Verifier coin bits (max over the cell's runs).
    pub coin_bits: u64,
    /// The cell's `C·log2(n)` ceiling.
    pub envelope_bits: u64,
    /// Whether every round of every run stayed inside the envelope.
    pub pass: bool,
}

/// The deterministic E10 report.
#[derive(Debug)]
pub struct TraceReport {
    /// Audited sizes.
    pub sizes: Vec<usize>,
    /// Trials per cell.
    pub trials: u64,
    /// Base seed.
    pub base_seed: u64,
    /// Cells in (family, n) order.
    pub cells: Vec<TraceCell>,
    /// Cross-check / envelope violations (empty on a clean audit).
    pub audit_errors: Vec<String>,
    /// `audit_errors.is_empty()` and every cell passed.
    pub all_pass: bool,
}

/// Everything `pdip trace` produces: the deterministic report plus the
/// timing-side data that must stay out of committed artifacts.
#[derive(Debug)]
pub struct TraceOutcome {
    /// The deterministic, artifact-safe report.
    pub report: TraceReport,
    /// The drained trace (events + duration histograms).
    pub trace: Trace,
    /// Engine throughput metrics (scheduling-dependent).
    pub metrics: SweepMetrics,
}

impl TraceOutcome {
    /// Human-readable duration-histogram lines for stdout (mean and
    /// p99-upper-bound nanoseconds per span name). Timing data: never
    /// write these into a committed artifact.
    pub fn timing_lines(&self) -> Vec<String> {
        self.trace
            .histograms()
            .iter()
            .map(|(name, h)| {
                format!(
                    "{:<28} {:>8} spans  mean {:>12}ns  p99<= {:>12}ns",
                    name,
                    h.count(),
                    h.mean_nanos(),
                    h.quantile_upper_bound(0.99)
                )
            })
            .collect()
    }
}

/// Runs the E10 grid and audits the drained trace.
pub fn run_trace(spec: &TraceSpec) -> TraceOutcome {
    let sweep = spec.sweep();
    let rec = CollectingRecorder::new();
    let outcome = Engine::with_threads(spec.threads.max(1)).run_traced(&sweep, &rec);
    let trace = rec.drain();

    let mut audit: Vec<String> = Vec::new();
    for f in &outcome.failures {
        audit.push(format!(
            "job {} ({} n={}) quarantined: {}",
            f.index,
            f.family.name(),
            f.n,
            f.payload
        ));
    }

    // Fold per-job traced counters into (family, n) cells, cross-checked
    // against the records the engine produced for the same jobs.
    let mut cells: BTreeMap<(Family, usize), TraceCell> = BTreeMap::new();
    for r in &outcome.records {
        let ctx = r.index;
        let name = r.family.name();
        if !r.accepted {
            audit.push(format!("job {ctx} ({name} n={}): honest run rejected", r.n));
        }
        if r.attempts != 1 {
            // A retried job records its counters once per attempt; the
            // grid is honest-only, so any retry is itself an anomaly.
            audit.push(format!("job {ctx} ({name} n={}): took {} attempts", r.n, r.attempts));
        }
        let run_id = SpanId::new(name);
        for (key, want) in [
            ("proof_size_bits", r.proof_size_bits as u64),
            ("coin_bits", r.coin_bits as u64),
            ("rounds", r.rounds as u64),
        ] {
            let got = trace.counter_total(ctx, run_id, key);
            if got != want {
                audit.push(format!(
                    "job {ctx} ({name} n={}): traced {key}={got} != recorded {want}",
                    r.n
                ));
            }
        }
        let cell = cells.entry((r.family, r.n)).or_insert_with(|| TraceCell {
            family: r.family,
            n: r.n,
            runs: 0,
            round_max_bits: Vec::new(),
            round_total_bits: Vec::new(),
            proof_size_bits: 0,
            coin_bits: 0,
            envelope_bits: envelope_bits(r.family, r.n) as u64,
            pass: true,
        });
        cell.runs += 1;
        cell.proof_size_bits = cell.proof_size_bits.max(r.proof_size_bits as u64);
        cell.coin_bits = cell.coin_bits.max(r.coin_bits as u64);
        let rounds = r.per_round_max_bits.len();
        if cell.round_max_bits.len() < rounds {
            cell.round_max_bits.resize(rounds, 0);
            cell.round_total_bits.resize(rounds, 0);
        }
        for (i, &want) in r.per_round_max_bits.iter().enumerate() {
            let id = SpanId::at(name, (i + 1) as u64);
            let got = trace.counter_total(ctx, id, "round_max_bits");
            if got != want as u64 {
                audit.push(format!(
                    "job {ctx} ({name} n={}): round {} traced max {got} != recorded {want}",
                    r.n,
                    i + 1
                ));
            }
            let total = trace.counter_total(ctx, id, "round_total_bits");
            cell.round_max_bits[i] = cell.round_max_bits[i].max(got);
            cell.round_total_bits[i] = cell.round_total_bits[i].max(total);
            let env = envelope_bits(r.family, r.n) as u64;
            if got > env {
                cell.pass = false;
                audit.push(format!(
                    "job {ctx} ({name} n={}): round {} max {got} bits exceeds the {env}-bit envelope",
                    r.n,
                    i + 1
                ));
            }
        }
    }

    let cells: Vec<TraceCell> = cells.into_values().collect();
    let all_pass = audit.is_empty() && cells.iter().all(|c| c.pass);
    TraceOutcome {
        report: TraceReport {
            sizes: spec.sizes.clone(),
            trials: spec.trials,
            base_seed: spec.base_seed,
            cells,
            audit_errors: audit,
            all_pass,
        },
        trace,
        metrics: outcome.metrics,
    }
}

impl TraceReport {
    /// The human-readable E10 table (results/e10_trace.txt). Contains
    /// no timing or scheduling information.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# E10: round-by-round proof-size trace audit\n");
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "# sizes=[{}] trials-per-cell={} base-seed={:#x}\n",
            sizes.join(","),
            self.trials,
            self.base_seed
        ));
        out.push_str(&format!(
            "# all-pass={} audit-errors={}\n\n",
            self.all_pass,
            self.audit_errors.len()
        ));
        out.push_str(&format!(
            "{:<20} {:>5} {:>4}  {:>7} {:>7} {:>7}  {:>9} {:>9} {:>9}  {:>6} {:>6} {:>8}  {}\n",
            "family",
            "n",
            "runs",
            "r1 max",
            "r2 max",
            "r3 max",
            "r1 total",
            "r2 total",
            "r3 total",
            "proof",
            "coins",
            "envelope",
            "pass"
        ));
        for c in &self.cells {
            let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
            out.push_str(&format!(
                "{:<20} {:>5} {:>4}  {:>7} {:>7} {:>7}  {:>9} {:>9} {:>9}  {:>6} {:>6} {:>8}  {}\n",
                c.family.name(),
                c.n,
                c.runs,
                at(&c.round_max_bits, 0),
                at(&c.round_max_bits, 1),
                at(&c.round_max_bits, 2),
                at(&c.round_total_bits, 0),
                at(&c.round_total_bits, 1),
                at(&c.round_total_bits, 2),
                c.proof_size_bits,
                c.coin_bits,
                c.envelope_bits,
                if c.pass { "ok" } else { "FAIL" }
            ));
        }
        for e in &self.audit_errors {
            out.push_str(&format!("# AUDIT: {e}\n"));
        }
        out
    }

    /// The machine-readable E10 report (results/e10_trace.json), hand
    /// rendered with stable key order and no timing fields.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e10-trace\",\n");
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("  \"sizes\": [{}],\n", sizes.join(", ")));
        out.push_str(&format!("  \"trials_per_cell\": {},\n", self.trials));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"all_pass\": {},\n", self.all_pass));
        out.push_str(&format!("  \"audit_errors\": {},\n", self.audit_errors.len()));
        out.push_str("  \"cells\": [\n");
        let ints = |v: &[u64]| v.iter().map(|b| b.to_string()).collect::<Vec<_>>().join(", ");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"family\": \"{}\", \"n\": {}, \"runs\": {}, \
                 \"round_max_bits\": [{}], \"round_total_bits\": [{}], \
                 \"proof_size_bits\": {}, \"coin_bits\": {}, \
                 \"envelope_bits\": {}, \"pass\": {}}}{}\n",
                c.family.name(),
                c.n,
                c.runs,
                ints(&c.round_max_bits),
                ints(&c.round_total_bits),
                c.proof_size_bits,
                c.coin_bits,
                c.envelope_bits,
                c.pass,
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TraceSpec {
        TraceSpec { sizes: vec![24], trials: 1, base_seed: E10_SEED, threads: 2 }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let a = run_trace(&TraceSpec { threads: 1, ..tiny_spec() });
        let b = run_trace(&TraceSpec { threads: 4, ..tiny_spec() });
        assert_eq!(a.report.render_text(), b.report.render_text());
        assert_eq!(a.report.render_json(), b.report.render_json());
    }

    #[test]
    fn tiny_grid_passes_the_audit() {
        let out = run_trace(&tiny_spec());
        assert!(out.report.all_pass, "{}", out.report.render_text());
        assert_eq!(out.report.cells.len(), FAMILIES.len());
        for c in &out.report.cells {
            assert_eq!(c.runs, 1);
            assert!(c.proof_size_bits > 0, "{} traced no bits", c.family.name());
        }
    }

    #[test]
    fn trace_captures_protocol_and_engine_spans() {
        let out = run_trace(&tiny_spec());
        let names: std::collections::BTreeSet<&str> =
            out.trace.events().iter().map(|s| s.ev.span.name).collect();
        for expected in
            ["engine/execute", "lemma2.5/spanning-tree", "lr-sorting/prover-round", "planarity"]
        {
            assert!(names.contains(expected), "missing span {expected}: {names:?}");
        }
        assert!(!out.trace.histograms().is_empty(), "duration histograms must accumulate");
    }

    #[test]
    fn envelope_grows_with_n() {
        for f in FAMILIES {
            assert!(envelope_bits(f, 1024) > envelope_bits(f, 48));
        }
    }
}
