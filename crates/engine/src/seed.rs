//! Deterministic per-job seed derivation.
//!
//! Every job in a sweep draws its seeds from a SplitMix64-style stream
//! keyed by `(base_seed, job_index)`. The derivation depends only on those
//! two values — never on scheduling — so a sweep executed on one worker
//! and on sixteen workers produces byte-identical records.
//!
//! The derivation itself lives in [`pdip_graph::seed`] so the streaming
//! generator and the sharded verifier share the exact same streams; this
//! module re-exports it and owns the engine's label constants.

pub use pdip_graph::seed::{job_seed, splitmix_finalize, sub_seed};

/// Seed-derivation labels used by the engine (public so tests and docs
/// can name them).
pub mod labels {
    /// Instance-generation seed.
    pub const GEN: u64 = 1;
    /// Protocol-run seed.
    pub const RUN: u64 = 2;
    /// Retry-attempt stream (combined with the attempt number).
    pub const RETRY: u64 = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine's job-seed stream is the shared `pdip-graph` one: a
    /// re-export, not a second derivation that could silently drift.
    #[test]
    fn engine_stream_is_the_shared_stream() {
        for (base, i) in [(0u64, 0u64), (42, 7), (0xE11, 305)] {
            assert_eq!(job_seed(base, i), pdip_graph::seed::job_seed(base, i));
            assert_eq!(sub_seed(base, i), pdip_graph::seed::sub_seed(base, i));
        }
        assert_eq!(splitmix_finalize(7), pdip_graph::seed::splitmix_finalize(7));
    }

    #[test]
    fn labels_are_distinct() {
        let s = job_seed(9, 3);
        let g = sub_seed(s, labels::GEN);
        let r = sub_seed(s, labels::RUN);
        let t = sub_seed(s, labels::RETRY);
        assert!(g != r && r != t && g != t);
    }
}
