//! Plain-text table rendering (moved here from `pdip-bench` so the
//! engine can print aggregate tables without a dependency cycle).

/// Prints a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s
    };
    println!("{}", line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in rows {
        println!("{}", line(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_aligns() {
        // Smoke: must not panic on ragged content.
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "22222".into()], vec!["333".into(), "4".into()]],
        );
    }
}
