//! Writer-backed report rendering: aligned tables, summary lines, and
//! the [`Reporter`] sink the experiment binaries print through.
//!
//! Rendering is pure ([`render_table`] returns a `String`), so output
//! formats are snapshot-testable; the [`Reporter`] decides where the
//! rendered text goes (stdout, an arbitrary writer, a capture buffer,
//! or nowhere under `--quiet`).

use crate::record::SweepMetrics;
use std::io::Write;

/// Renders a simple aligned table (right-justified cells, a dashed rule
/// under the header) as a string ending in a newline.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Where a [`Reporter`]'s output lands.
enum Sink {
    /// Line-buffered standard output.
    Stdout,
    /// Discard everything (`--quiet`).
    Quiet,
    /// An in-memory capture buffer ([`Reporter::into_string`]).
    Buffer(Vec<u8>),
    /// Any caller-supplied writer.
    Writer(Box<dyn Write>),
}

/// The sink experiment binaries and the CLI print human-readable
/// output through. Replaces scattered `println!` calls so `--quiet`
/// can silence a whole run and tests can capture exact bytes.
pub struct Reporter {
    sink: Sink,
}

impl Reporter {
    /// A reporter printing to stdout.
    pub fn stdout() -> Self {
        Reporter { sink: Sink::Stdout }
    }

    /// A reporter that discards all output.
    pub fn quiet() -> Self {
        Reporter { sink: Sink::Quiet }
    }

    /// A reporter capturing output in memory; read it back with
    /// [`Reporter::into_string`].
    pub fn buffered() -> Self {
        Reporter { sink: Sink::Buffer(Vec::new()) }
    }

    /// A reporter writing to an arbitrary writer.
    pub fn to_writer(w: Box<dyn Write>) -> Self {
        Reporter { sink: Sink::Writer(w) }
    }

    /// Stdout unless `quiet` (the shape every `--quiet` flag needs).
    pub fn from_quiet_flag(quiet: bool) -> Self {
        if quiet {
            Reporter::quiet()
        } else {
            Reporter::stdout()
        }
    }

    fn write_str(&mut self, s: &str) {
        match &mut self.sink {
            Sink::Stdout => print!("{s}"),
            Sink::Quiet => {}
            Sink::Buffer(buf) => buf.extend_from_slice(s.as_bytes()),
            // Report output is best-effort: a broken pipe must not
            // abort the sweep that produced the data.
            Sink::Writer(w) => {
                let _ = w.write_all(s.as_bytes());
            }
        }
    }

    /// Writes one line (a trailing newline is appended).
    pub fn line(&mut self, s: &str) {
        self.write_str(s);
        self.write_str("\n");
    }

    /// Renders and writes an aligned table.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) {
        let rendered = render_table(headers, rows);
        self.write_str(&rendered);
    }

    /// Writes the `[engine]` one-line sweep summary.
    pub fn summary(&mut self, metrics: &SweepMetrics) {
        self.line(&metrics.summary_line());
    }

    /// The captured output of a [`Reporter::buffered`] reporter
    /// (empty for other sinks).
    pub fn into_string(self) -> String {
        match self.sink {
            Sink::Buffer(buf) => String::from_utf8_lossy(&buf).into_owned(),
            _ => String::new(),
        }
    }
}

/// Prints a simple aligned table to stdout (back-compat shim over
/// [`render_table`]).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut r = Reporter::stdout();
    r.table(headers, rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns() {
        let s = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "22222".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All content rows share the header's column layout.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn quiet_reporter_discards() {
        let mut r = Reporter::quiet();
        r.line("should vanish");
        r.table(&["h"], &[vec!["x".into()]]);
        assert_eq!(r.into_string(), "");
    }

    #[test]
    fn buffered_reporter_captures_exact_bytes() {
        let mut r = Reporter::buffered();
        r.line("hello");
        r.table(&["k", "v"], &[vec!["a".into(), "1".into()]]);
        let got = r.into_string();
        assert!(got.starts_with("hello\n"));
        assert!(got.contains("k  v"));
    }
}
