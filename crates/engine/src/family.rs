//! The six graph families of the paper and their instance factories.
//!
//! This used to live in `pdip-bench`; it moved here so the engine can
//! expand sweep grids without depending on the benchmark harness
//! (`pdip-bench` re-exports everything for backward compatibility).

use pdip_core::DipProtocol;
use pdip_graph::gen;
use pdip_graph::{with_thread_scratch, TraversalScratch};
use pdip_protocols::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The six graph families of the paper (plus the LR-sorting sub-task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Path-outerplanar graphs (Theorem 1.2).
    PathOuterplanar,
    /// Outerplanar graphs (Theorem 1.3).
    Outerplanar,
    /// Embedded planarity (Theorem 1.4).
    EmbeddedPlanarity,
    /// Planarity (Theorem 1.5).
    Planarity,
    /// Series-parallel graphs (Theorem 1.6).
    SeriesParallel,
    /// Treewidth ≤ 2 (Theorem 1.7).
    Treewidth2,
}

/// All families in theorem order.
pub const FAMILIES: [Family; 6] = [
    Family::PathOuterplanar,
    Family::Outerplanar,
    Family::EmbeddedPlanarity,
    Family::Planarity,
    Family::SeriesParallel,
    Family::Treewidth2,
];

impl Family {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::PathOuterplanar => "path-outerplanarity",
            Family::Outerplanar => "outerplanarity",
            Family::EmbeddedPlanarity => "embedded-planarity",
            Family::Planarity => "planarity",
            Family::SeriesParallel => "series-parallel",
            Family::Treewidth2 => "treewidth-2",
        }
    }

    /// Inverse of [`Family::name`].
    pub fn from_name(s: &str) -> Option<Family> {
        FAMILIES.iter().copied().find(|f| f.name() == s)
    }

    /// Number of implemented cheating-prover strategies (static per
    /// family; probed once from a small no-instance).
    pub fn cheat_count(&self) -> usize {
        no_instance(*self, 24, 0)
            .with_protocol(PopParams::default(), Transport::Native, |p| p.cheat_names().len())
    }

    /// Names of the cheating-prover strategies.
    pub fn cheat_names(&self) -> Vec<String> {
        no_instance(*self, 24, 0)
            .with_protocol(PopParams::default(), Transport::Native, |p| p.cheat_names())
    }
}

/// A self-contained yes-instance of a family (owns its data so the
/// protocol can be constructed on demand).
pub enum YesInstance {
    /// Theorem 1.2 instance.
    Pop(PopInstance),
    /// Theorem 1.3 instance.
    Op(OpInstance),
    /// Theorem 1.4 instance.
    Emb(EmbInstance),
    /// Theorem 1.5 instance.
    Pl(PlInstance),
    /// Theorem 1.6 instance.
    Spa(SpaInstance),
    /// Theorem 1.7 instance.
    Tw2(Tw2Instance),
}

impl YesInstance {
    /// Generates a yes-instance with roughly `n` nodes.
    pub fn generate(family: Family, n: usize, seed: u64) -> YesInstance {
        with_thread_scratch(|s| YesInstance::generate_with(family, n, seed, s))
    }

    /// [`YesInstance::generate`] with an explicit [`TraversalScratch`], so
    /// batch generation (worker pools, benches) reuses traversal buffers
    /// across instances. Pure in `(family, n, seed)`: the scratch never
    /// influences the generated instance.
    pub fn generate_with(
        family: Family,
        n: usize,
        seed: u64,
        scratch: &mut TraversalScratch,
    ) -> YesInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        match family {
            Family::PathOuterplanar => {
                let g = gen::outerplanar::random_path_outerplanar(n, 0.6, &mut rng);
                YesInstance::Pop(PopInstance {
                    graph: g.graph,
                    witness: Some(g.path),
                    is_yes: true,
                })
            }
            Family::Outerplanar => {
                let g =
                    gen::outerplanar::random_outerplanar(n.max(6), (n / 24).max(1), 0.5, &mut rng);
                YesInstance::Op(OpInstance { graph: g.graph, is_yes: true })
            }
            Family::EmbeddedPlanarity => {
                let g = gen::planar::random_planar_with(n.max(4), 0.5, &mut rng, scratch);
                YesInstance::Emb(EmbInstance { graph: g.graph, rho: g.rho, is_yes: true })
            }
            Family::Planarity => {
                let g = gen::planar::random_planar_with(n.max(4), 0.5, &mut rng, scratch);
                YesInstance::Pl(PlInstance {
                    graph: g.graph,
                    witness_rho: Some(g.rho),
                    is_yes: true,
                })
            }
            Family::SeriesParallel => {
                let g = gen::sp::random_series_parallel((n / 2).max(1), &mut rng);
                YesInstance::Spa(SpaInstance { graph: g.graph, is_yes: true })
            }
            Family::Treewidth2 => {
                let g = gen::sp::random_treewidth2((n / 16).max(1), 8, &mut rng);
                YesInstance::Tw2(Tw2Instance { graph: g.graph, is_yes: true })
            }
        }
    }

    /// Runs `f` with the protocol bound to this instance.
    pub fn with_protocol<R>(
        &self,
        params: PopParams,
        transport: Transport,
        f: impl FnOnce(&dyn DipProtocol) -> R,
    ) -> R {
        match self {
            YesInstance::Pop(i) => f(&PathOuterplanarity::new(i, params, transport)),
            YesInstance::Op(i) => f(&Outerplanarity::new(i, params, transport)),
            YesInstance::Emb(i) => f(&EmbeddedPlanarity::new(i, params, transport)),
            YesInstance::Pl(i) => f(&Planarity::new(i, params, transport)),
            YesInstance::Spa(i) => f(&SeriesParallel::new(i, params, transport)),
            YesInstance::Tw2(i) => f(&Treewidth2::new(i, params, transport)),
        }
    }
}

/// A self-contained no-instance of a family.
pub fn no_instance(family: Family, n: usize, seed: u64) -> YesInstance {
    with_thread_scratch(|s| no_instance_with(family, n, seed, s))
}

/// [`no_instance`] with an explicit [`TraversalScratch`]. Pure in
/// `(family, n, seed)`: the scratch never influences the instance.
pub fn no_instance_with(
    family: Family,
    n: usize,
    seed: u64,
    scratch: &mut TraversalScratch,
) -> YesInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    match family {
        Family::PathOuterplanar => {
            let g = gen::no_instances::outerplanar_no_hamiltonian_path((n / 3).max(3), &mut rng);
            YesInstance::Pop(PopInstance { graph: g, witness: None, is_yes: false })
        }
        Family::Outerplanar => {
            let g = gen::no_instances::planar_not_outerplanar(n.max(6), &mut rng);
            YesInstance::Op(OpInstance { graph: g, is_yes: false })
        }
        Family::EmbeddedPlanarity => {
            let g = gen::planar::scrambled_embedding(n.max(6), &mut rng);
            YesInstance::Emb(EmbInstance { graph: g.graph, rho: g.rho, is_yes: false })
        }
        Family::Planarity => {
            let g = gen::no_instances::nonplanar_with_gadget_with(
                n.max(8),
                1,
                seed.is_multiple_of(2),
                &mut rng,
                scratch,
            );
            YesInstance::Pl(PlInstance { graph: g, witness_rho: None, is_yes: false })
        }
        Family::SeriesParallel => {
            let g = gen::no_instances::tw2_violator((n / 8).max(1), 1, &mut rng);
            YesInstance::Spa(SpaInstance { graph: g, is_yes: false })
        }
        Family::Treewidth2 => {
            let g = gen::no_instances::tw2_violator((n / 8).max(2), 1, &mut rng);
            YesInstance::Tw2(Tw2Instance { graph: g, is_yes: false })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_roundtrip() {
        for fam in FAMILIES {
            assert_eq!(Family::from_name(fam.name()), Some(fam));
        }
        assert_eq!(Family::from_name("nonsense"), None);
    }

    #[test]
    fn every_family_has_cheats() {
        for fam in FAMILIES {
            assert!(fam.cheat_count() > 0, "{}", fam.name());
            assert_eq!(fam.cheat_count(), fam.cheat_names().len());
        }
    }
}
