//! E14: the observability audit — live metrics under load must obey
//! conservation laws, stay monotone, and digest identically at any
//! worker thread count.
//!
//! Observability code rots silently: a histogram that misses one code
//! path, a counter that double-fires, a stats endpoint that drifts from
//! the instruments it claims to expose. E14 pins the serve path's live
//! metrics (see [`crate::serve::ServeObs`]) the same way E12/E13 pin
//! its verdicts — with replayable invariants over a deterministic
//! workload:
//!
//! * **Conservation.** Pushing the full E12 request mix through a live
//!   server must land every request in every latency histogram exactly
//!   once: `latency_decode_ns` and `latency_queue_wait_ns` count one
//!   observation per verify request, `latency_verify_ns` counts one per
//!   request that decoded, and `latency_write_ns` counts one per
//!   response frame written (requests + the stats probe + the shutdown
//!   ack + the final drain stats frame). Status counters must agree
//!   with both the client-observed verdicts and the server's own drain
//!   stats.
//! * **Monotonicity.** A snapshot taken mid-run is a valid predecessor
//!   of the final one ([`pdip_obs::MetricsSnapshot::monotone_over`]).
//! * **Stats frames.** A live [`crate::serve::REQ_STATS`] round trip
//!   returns the same accept count the client derived itself.
//! * **Determinism.** The scheduling-independent projection
//!   ([`pdip_obs::MetricsSnapshot::render_deterministic`] — counter
//!   totals and histogram counts, no bucket shapes, sums, or gauges)
//!   digests byte-identically at 1 and 4 worker threads.
//! * **Fault attribution.** Under the E13 fault mix, every injected
//!   fault lands in exactly the right `conn_faults_total{class=…}`
//!   counter, every injected panic in `panics_total`, every
//!   over-capacity request in `requests_total{status="busy"}` — and the
//!   flight recorder's `conn-fault` event sequence replays the
//!   injection order.
//!
//! Timing data (requests/sec, mean verify latency) is reported but
//! never digested; the committed artifact's deterministic payload is
//! guarded by `tests/e14_freshness.rs`.

use crate::report::render_table;
use crate::seed::sub_seed;
use crate::serve::{
    decode_response, panic_blob, read_frame, smoke_requests, spawn_server, write_frame, Gate,
    Response, ServeConfig, ServeObs, Status, REQ_SHUTDOWN, REQ_STATS, REQ_VERIFY,
};
use pdip_obs::MetricsSnapshot;
use pdip_wire::{fnv1a64, frame::fault};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Base seed of the committed E14 artifacts.
pub const E14_SEED: u64 = 0xe14;

/// Audit dimensions.
#[derive(Debug, Clone)]
pub struct ObsAuditSpec {
    /// Fault-injection trials per class in the attribution phase.
    pub fault_trials: usize,
    /// Worker thread counts whose metric digests are compared.
    pub threads: Vec<usize>,
}

impl ObsAuditSpec {
    /// The CI-gated configuration (also what produced the committed
    /// artifacts).
    pub fn smoke() -> ObsAuditSpec {
        ObsAuditSpec { fault_trials: 2, threads: vec![1, 4] }
    }

    /// The deeper local configuration.
    pub fn full() -> ObsAuditSpec {
        ObsAuditSpec { fault_trials: 4, threads: vec![1, 2, 4] }
    }
}

/// What one [`metrics_determinism_probe`] run observed.
#[derive(Debug)]
pub struct MetricsProbe {
    /// Requests streamed (the E12 mix).
    pub requests: u64,
    /// Client-observed accepts.
    pub accepted: u64,
    /// Client-observed rejects.
    pub rejected: u64,
    /// Client-observed malformed verdicts.
    pub malformed: u64,
    /// Total proof-size bits accumulated across the family counters.
    pub proof_bits: u64,
    /// FNV-1a-64 digest of the deterministic metrics projection.
    pub digest: u64,
    /// Whether the final snapshot is monotone over the mid-run one.
    pub monotone: bool,
    /// Whether the live stats frame agreed with client-side counts.
    pub stats_frame_ok: bool,
    /// Mean verify latency in nanoseconds (timing data).
    pub mean_verify_ns: u64,
    /// Requests per second over the verify phase (timing data).
    pub rps: f64,
    /// Conservation violations (empty when all invariants held).
    pub failures: Vec<String>,
}

fn connect(port: u16) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(("127.0.0.1", port))?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    Ok(s)
}

fn verify_frame(blob: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(1 + blob.len());
    f.push(REQ_VERIFY);
    f.extend_from_slice(blob);
    f
}

fn read_responses(stream: &mut TcpStream, n: usize) -> Result<Vec<Response>, String> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        match read_frame(stream) {
            Ok(Some(p)) => match decode_response(&p) {
                Some(r) => out.push(r),
                None => return Err(format!("undecodable response frame {i}")),
            },
            Ok(None) => return Err(format!("EOF after {i}/{n} responses")),
            Err(e) => return Err(format!("recv {i}/{n}: {e}")),
        }
    }
    out.sort_by_key(|r| r.seq);
    Ok(out)
}

/// A small honest transcript blob (accepts under replay).
fn honest_blob(seed: u64) -> Vec<u8> {
    use crate::family::{Family, YesInstance};
    use pdip_protocols::{PopParams, Transport};
    use pdip_wire::WireInstance;
    let inst = match YesInstance::generate(Family::PathOuterplanar, 16, seed) {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        _ => unreachable!("PathOuterplanar generates Pop"),
    };
    pdip_wire::Transcript::record(
        inst,
        PopParams::default(),
        Transport::Simulated,
        0,
        seed,
        seed ^ 1,
    )
    .encode()
}

fn hist_count(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.histogram(name).map(|h| h.count()).unwrap_or(0)
}

/// Streams the full E12 request mix through a live server that shares
/// a fresh [`ServeObs`], then checks the conservation laws against the
/// final snapshot and digests the deterministic projection. Public so
/// the freshness test can replay the committed digest.
pub fn metrics_determinism_probe(base_seed: u64, threads: usize) -> Result<MetricsProbe, String> {
    let obs = Arc::new(ServeObs::new());
    let requests = smoke_requests(base_seed);
    let n = requests.len() as u64;
    let cfg = ServeConfig {
        threads,
        queue_cap: requests.len().max(1),
        deadline: None,
        obs: Some(Arc::clone(&obs)),
        ..ServeConfig::default()
    };
    let server = spawn_server(cfg).map_err(|e| format!("spawn: {e}"))?;
    let mut s = connect(server.port()).map_err(|e| format!("connect: {e}"))?;
    let started = Instant::now();
    for (_seq, blob) in &requests {
        write_frame(&mut s, &verify_frame(blob)).map_err(|e| format!("send: {e}"))?;
    }
    s.flush().map_err(|e| format!("flush: {e}"))?;
    let responses = read_responses(&mut s, requests.len())?;
    let elapsed = started.elapsed().as_secs_f64();
    let mid = obs.snapshot();

    let accepted = responses.iter().filter(|r| r.status == Status::Accept).count() as u64;
    let rejected = responses.iter().filter(|r| r.status == Status::Reject).count() as u64;
    let malformed = responses.iter().filter(|r| r.status == Status::Malformed).count() as u64;

    // Live stats round trip: the Prometheus-style rendering must carry
    // the accept count the client just derived for itself.
    write_frame(&mut s, &[REQ_STATS, 0])
        .and_then(|()| s.flush())
        .map_err(|e| format!("send stats: {e}"))?;
    let stats_resp = read_responses(&mut s, 1)?.remove(0);
    let stats_frame_ok = stats_resp.status == Status::Stats
        && stats_resp.detail.contains(&format!("requests_total{{status=\"accept\"}} {accepted}"))
        && stats_resp.detail.contains("latency_verify_ns_count");

    // Graceful shutdown: ack + final drain stats frame, then EOF.
    write_frame(&mut s, &[REQ_SHUTDOWN])
        .and_then(|()| s.flush())
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut drain_detail = String::new();
    loop {
        match read_frame(&mut s) {
            Ok(Some(p)) => {
                if let Some(r) = decode_response(&p) {
                    if r.status == Status::Stats {
                        drain_detail = r.detail;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => return Err(format!("recv drain: {e}")),
        }
    }
    let server_stats = server.stop().map_err(|e| format!("stop: {e}"))?;
    let fin = obs.snapshot();

    // Conservation laws over the final, fully-quiesced snapshot.
    let mut failures = Vec::new();
    let mut law = |name: &str, got: u64, want: u64| {
        if got != want {
            failures.push(format!("threads={threads}: {name}: {got} != expected {want}"));
        }
    };
    law("latency_decode_ns count", hist_count(&fin, "latency_decode_ns"), n);
    law("latency_queue_wait_ns count", hist_count(&fin, "latency_queue_wait_ns"), n);
    law("latency_verify_ns count", hist_count(&fin, "latency_verify_ns"), n - malformed);
    // One write per verify response + the stats probe + the shutdown
    // ack + the final drain stats frame.
    law("latency_write_ns count", hist_count(&fin, "latency_write_ns"), n + 3);
    let status_counter =
        |st: &str| fin.counter(&format!("requests_total{{status=\"{st}\"}}")).unwrap_or(0);
    law("requests_total{accept}", status_counter("accept"), accepted);
    law("requests_total{reject}", status_counter("reject"), rejected);
    law("requests_total{malformed}", status_counter("malformed"), malformed);
    law("requests_total{busy}", status_counter("busy"), 0);
    law("server drain accepted", server_stats.accepted, accepted);
    law("server drain rejected", server_stats.rejected, rejected);
    law("server drain malformed", server_stats.malformed, malformed);
    law("connections_total", fin.counter("connections_total").unwrap_or(0), 1);
    law("panics_total", fin.counter("panics_total").unwrap_or(0), 0);
    law("io_errors_total", fin.counter("io_errors_total").unwrap_or(0), 0);
    for class in fault::ALL {
        law(
            &format!("conn_faults_total{{{class}}}"),
            fin.counter(&format!("conn_faults_total{{class=\"{class}\"}}")).unwrap_or(0),
            0,
        );
    }
    if accepted + rejected + malformed != n {
        failures.push(format!(
            "threads={threads}: verdicts {accepted}+{rejected}+{malformed} != requests {n}"
        ));
    }
    if !drain_detail.contains("drained=ok") {
        failures.push(format!("threads={threads}: final stats frame not drained=ok"));
    }
    let proof_bits: u64 = fin
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("proof_size_bits_total"))
        .map(|(_, v)| *v)
        .sum();
    if proof_bits == 0 {
        failures.push(format!("threads={threads}: no live proof-size bits accumulated"));
    }

    let mean_verify_ns = fin.histogram("latency_verify_ns").map(|h| h.mean_nanos()).unwrap_or(0);
    Ok(MetricsProbe {
        requests: n,
        accepted,
        rejected,
        malformed,
        proof_bits,
        digest: fnv1a64(fin.render_deterministic().as_bytes()),
        monotone: fin.monotone_over(&mid),
        stats_frame_ok,
        mean_verify_ns,
        rps: if elapsed > 0.0 { n as f64 / elapsed } else { 0.0 },
        failures,
    })
}

/// The fault-attribution phase's outcome.
struct FaultMix {
    /// `(class, expected, observed)` per wire fault class.
    fault_counts: Vec<(&'static str, u64, u64)>,
    panics_observed: u64,
    busy_observed: u64,
    busy_verified: u64,
    flight_events: u64,
    flight_replay_ok: bool,
    failures: Vec<String>,
}

/// Injects the E13 fault mix — sequential per-class sub-servers all
/// sharing one [`ServeObs`] — and checks that every injection landed in
/// exactly the right counter and that the flight recorder replays the
/// injection order.
fn fault_mix(trials: usize, base_seed: u64) -> Result<FaultMix, String> {
    // A deep ring so no conn-fault event scrolls off before the replay
    // check reads it back.
    let obs =
        Arc::new(ServeObs::with_options(1024, crate::serve::obs::DEFAULT_SLOW_THRESHOLD, None));
    let base_cfg = || ServeConfig {
        threads: 2,
        queue_cap: 64,
        deadline: None,
        read_deadline: Some(Duration::from_secs(5)),
        obs: Some(Arc::clone(&obs)),
        ..ServeConfig::default()
    };
    let mut failures = Vec::new();

    // Class 1: truncated frame — declared length exceeds the bytes sent.
    {
        let server = spawn_server(base_cfg()).map_err(|e| format!("spawn truncated: {e}"))?;
        for t in 0..trials {
            let mut s = connect(server.port()).map_err(|e| format!("truncated connect: {e}"))?;
            s.write_all(&64u32.to_le_bytes()).map_err(|e| format!("truncated send: {e}"))?;
            s.write_all(&[0xab; 10]).map_err(|e| format!("truncated send: {e}"))?;
            s.flush().map_err(|e| format!("truncated flush: {e}"))?;
            s.shutdown(std::net::Shutdown::Write).map_err(|e| format!("truncated: {e}"))?;
            let r = read_responses(&mut s, 1)?;
            if r[0].status != Status::ConnError || !r[0].detail.starts_with(fault::TRUNCATED_FRAME)
            {
                failures.push(format!("truncated trial {t}: got {:?}", r[0]));
            }
        }
        server.stop().map_err(|e| format!("truncated stop: {e}"))?;
    }

    // Class 2: mid-frame disconnect — partial header, hard close. The
    // server classifies it server-side (nobody is left to answer);
    // mid-frame EOF maps to the truncated-frame class too.
    {
        let server = spawn_server(base_cfg()).map_err(|e| format!("spawn mid-frame: {e}"))?;
        for _ in 0..trials {
            let mut s = connect(server.port()).map_err(|e| format!("mid-frame connect: {e}"))?;
            s.write_all(&64u32.to_le_bytes()[..2]).map_err(|e| format!("mid-frame send: {e}"))?;
            s.flush().map_err(|e| format!("mid-frame flush: {e}"))?;
            drop(s);
            // Let the reader observe the EOF before the next injection
            // (and before the drain suppresses fault classification).
            std::thread::sleep(Duration::from_millis(50));
        }
        server.stop().map_err(|e| format!("mid-frame stop: {e}"))?;
    }

    // Class 3: oversized length declaration.
    {
        let mut cfg = base_cfg();
        cfg.max_frame_bytes = 1 << 20;
        let server = spawn_server(cfg).map_err(|e| format!("spawn oversized: {e}"))?;
        for t in 0..trials {
            let mut s = connect(server.port()).map_err(|e| format!("oversized connect: {e}"))?;
            s.write_all(&((1u32 << 20) + 1).to_le_bytes())
                .map_err(|e| format!("oversized send: {e}"))?;
            s.flush().map_err(|e| format!("oversized flush: {e}"))?;
            let r = read_responses(&mut s, 1)?;
            if r[0].status != Status::ConnError || !r[0].detail.starts_with(fault::OVERSIZED_FRAME)
            {
                failures.push(format!("oversized trial {t}: got {:?}", r[0]));
            }
        }
        server.stop().map_err(|e| format!("oversized stop: {e}"))?;
    }

    // Class 4: read stall — half a header, then silence past the
    // per-frame read deadline.
    {
        let mut cfg = base_cfg();
        cfg.read_deadline = Some(Duration::from_millis(80));
        let server = spawn_server(cfg).map_err(|e| format!("spawn stall: {e}"))?;
        for t in 0..trials {
            let mut s = connect(server.port()).map_err(|e| format!("stall connect: {e}"))?;
            s.write_all(&32u32.to_le_bytes()[..2]).map_err(|e| format!("stall send: {e}"))?;
            s.flush().map_err(|e| format!("stall flush: {e}"))?;
            std::thread::sleep(Duration::from_millis(300));
            let r = read_responses(&mut s, 1)?;
            if r[0].status != Status::ConnError || !r[0].detail.starts_with(fault::READ_STALL) {
                failures.push(format!("stall trial {t}: got {:?}", r[0]));
            }
        }
        server.stop().map_err(|e| format!("stall stop: {e}"))?;
    }

    // Panic injection: each blob panics inside a worker; the panic is
    // answered, counted, and flight-recorded.
    {
        let token = 0xe14_dead;
        let mut cfg = base_cfg();
        cfg.panic_token = Some(token);
        let server = spawn_server(cfg).map_err(|e| format!("spawn panic: {e}"))?;
        for t in 0..trials {
            let mut s = connect(server.port()).map_err(|e| format!("panic connect: {e}"))?;
            write_frame(&mut s, &verify_frame(&panic_blob(token)))
                .map_err(|e| format!("panic send: {e}"))?;
            s.flush().map_err(|e| format!("panic flush: {e}"))?;
            let r = read_responses(&mut s, 1)?;
            if r[0].status != Status::Malformed || !r[0].detail.starts_with("panic:") {
                failures.push(format!("panic trial {t}: got {:?}", r[0]));
            }
        }
        server.stop().map_err(|e| format!("panic stop: {e}"))?;
    }

    // Busy storm: 12 requests into a held 4-slot queue per trial —
    // exactly 8 busy rejections, then 4 verdicts once the gate opens.
    let mut busy_verified = 0u64;
    for t in 0..trials {
        let gate = Gate::closed();
        let mut cfg = base_cfg();
        cfg.queue_cap = 4;
        cfg.hold = Some(gate.clone());
        let server = spawn_server(cfg).map_err(|e| format!("spawn busy: {e}"))?;
        let blob = honest_blob(sub_seed(base_seed, 0xb5 + t as u64));
        let mut s = connect(server.port()).map_err(|e| format!("busy connect: {e}"))?;
        for _ in 0..12 {
            write_frame(&mut s, &verify_frame(&blob)).map_err(|e| format!("busy send: {e}"))?;
        }
        s.flush().map_err(|e| format!("busy flush: {e}"))?;
        let early = read_responses(&mut s, 8)?;
        if !early.iter().all(|r| r.status == Status::Busy) {
            failures.push(format!("busy trial {t}: a pre-gate response was not busy"));
        }
        gate.open();
        let late = read_responses(&mut s, 4)?;
        busy_verified += late.iter().filter(|r| r.status == Status::Accept).count() as u64;
        server.stop().map_err(|e| format!("busy stop: {e}"))?;
    }

    // Attribution: every injection, and nothing else, in its counter.
    let snap = obs.snapshot();
    let t = trials as u64;
    let fault_counts: Vec<(&'static str, u64, u64)> = fault::ALL
        .iter()
        .map(|&class| {
            let expected = match class {
                fault::TRUNCATED_FRAME => 2 * t, // truncated + mid-frame
                fault::OVERSIZED_FRAME | fault::READ_STALL => t,
                _ => 0,
            };
            let got = snap.counter(&format!("conn_faults_total{{class=\"{class}\"}}")).unwrap_or(0);
            (class, expected, got)
        })
        .collect();
    for (class, expected, got) in &fault_counts {
        if got != expected {
            failures.push(format!("conn_faults_total{{{class}}}: {got} != expected {expected}"));
        }
    }
    let panics_observed = snap.counter("panics_total").unwrap_or(0);
    if panics_observed != t {
        failures.push(format!("panics_total: {panics_observed} != expected {t}"));
    }
    let busy_observed = snap.counter("requests_total{status=\"busy\"}").unwrap_or(0);
    if busy_observed != 8 * t {
        failures.push(format!("requests_total{{busy}}: {busy_observed} != expected {}", 8 * t));
    }
    if busy_verified != 4 * t {
        failures.push(format!("busy storm verified {busy_verified} != expected {}", 4 * t));
    }

    // Flight replay: the conn-fault event labels must reproduce the
    // injection order, and every panic must have left an event.
    let events = obs.flight().snapshot();
    let conn_fault_labels: Vec<&str> =
        events.iter().filter(|e| e.kind == "conn-fault").map(|e| e.label).collect();
    let mut expected_labels = Vec::new();
    for class in [fault::TRUNCATED_FRAME, fault::TRUNCATED_FRAME] {
        expected_labels.extend(std::iter::repeat_n(class, trials));
    }
    expected_labels.extend(std::iter::repeat_n(fault::OVERSIZED_FRAME, trials));
    expected_labels.extend(std::iter::repeat_n(fault::READ_STALL, trials));
    let flight_replay_ok = conn_fault_labels == expected_labels
        && events.iter().filter(|e| e.kind == "panic").count() == trials
        && events.iter().filter(|e| e.kind == "busy").count() == 8 * trials
        && obs.flight().dropped() == 0;
    if !flight_replay_ok {
        failures.push(format!(
            "flight replay: conn-fault labels {conn_fault_labels:?} != {expected_labels:?} \
             (panics={}, busy={}, dropped={})",
            events.iter().filter(|e| e.kind == "panic").count(),
            events.iter().filter(|e| e.kind == "busy").count(),
            obs.flight().dropped()
        ));
    }

    Ok(FaultMix {
        fault_counts,
        panics_observed,
        busy_observed,
        busy_verified,
        flight_events: obs.flight().total_recorded(),
        flight_replay_ok,
        failures,
    })
}

/// The complete audit outcome.
#[derive(Debug)]
pub struct ObsAuditReport {
    /// Base seed.
    pub seed: u64,
    /// Fault-injection trials per class.
    pub fault_trials: u64,
    /// Worker thread counts compared.
    pub threads: Vec<usize>,
    /// Requests of the metrics probe (the E12 mix).
    pub requests: u64,
    /// Client-observed accepts.
    pub accepted: u64,
    /// Client-observed rejects.
    pub rejected: u64,
    /// Client-observed malformed verdicts.
    pub malformed: u64,
    /// Total live proof-size bits accumulated across family counters.
    pub proof_bits: u64,
    /// FNV-1a-64 digest of the deterministic metrics projection.
    pub digest: u64,
    /// Whether all compared thread counts digested identically.
    pub deterministic: bool,
    /// Whether every mid-run snapshot was monotone under the final one.
    pub monotone: bool,
    /// Whether every conservation law held at every thread count.
    pub conserved: bool,
    /// Whether every live stats frame agreed with client-side counts.
    pub stats_frame_ok: bool,
    /// `(class, expected, observed)` per wire fault class.
    pub fault_counts: Vec<(&'static str, u64, u64)>,
    /// Worker panics expected from the injection schedule.
    pub panics_expected: u64,
    /// Worker panics counted by the live registry.
    pub panics_observed: u64,
    /// Busy rejections expected from the storm schedule.
    pub busy_expected: u64,
    /// Busy rejections counted by the live registry.
    pub busy_observed: u64,
    /// Requests verified after the storm gates opened.
    pub busy_verified: u64,
    /// Flight-recorder events recorded during the fault phase.
    pub flight_events: u64,
    /// Whether the flight ring replayed the injection order exactly.
    pub flight_replay_ok: bool,
    /// Requests/sec of the final metrics probe (timing data).
    pub rps: f64,
    /// Mean verify latency of the final probe (timing data).
    pub mean_verify_ns: u64,
    /// Audit verdict.
    pub passed: bool,
    /// Human-readable failures (empty when `passed`).
    pub failures: Vec<String>,
}

/// Runs the full E14 audit.
pub fn run_obs_audit(spec: &ObsAuditSpec, base_seed: u64) -> ObsAuditReport {
    let mut failures: Vec<String> = Vec::new();

    // Phase A: conservation + determinism, one probe per thread count.
    let mut probes = Vec::new();
    for &t in &spec.threads {
        match metrics_determinism_probe(base_seed, t) {
            Ok(p) => {
                failures.extend(p.failures.iter().cloned());
                probes.push((t, p));
            }
            Err(e) => failures.push(format!("metrics probe threads={t}: {e}")),
        }
    }
    let deterministic = probes.len() == spec.threads.len()
        && probes.windows(2).all(|w| w[0].1.digest == w[1].1.digest);
    if !deterministic {
        failures.push("deterministic metric projections differ across thread counts".into());
    }
    let monotone = !probes.is_empty() && probes.iter().all(|(_, p)| p.monotone);
    if !monotone {
        failures.push("a mid-run snapshot was not monotone under the final one".into());
    }
    let stats_frame_ok = !probes.is_empty() && probes.iter().all(|(_, p)| p.stats_frame_ok);
    if !stats_frame_ok {
        failures.push("a live stats frame disagreed with client-observed verdicts".into());
    }
    let conserved = !probes.is_empty() && probes.iter().all(|(_, p)| p.failures.is_empty());
    let (requests, accepted, rejected, malformed, proof_bits, digest) = probes
        .first()
        .map(|(_, p)| (p.requests, p.accepted, p.rejected, p.malformed, p.proof_bits, p.digest))
        .unwrap_or((0, 0, 0, 0, 0, 0));
    let (rps, mean_verify_ns) =
        probes.last().map(|(_, p)| (p.rps, p.mean_verify_ns)).unwrap_or((0.0, 0));
    if rps <= 0.0 {
        failures.push("metrics probe measured zero requests/sec".into());
    }

    // Phase B: fault attribution + flight replay.
    let mix = match fault_mix(spec.fault_trials, base_seed) {
        Ok(m) => {
            failures.extend(m.failures.iter().cloned());
            Some(m)
        }
        Err(e) => {
            failures.push(format!("fault mix: {e}"));
            None
        }
    };
    let t = spec.fault_trials as u64;
    let (fault_counts, panics_observed, busy_observed, busy_verified, flight_events, replay_ok) =
        match mix {
            Some(m) => (
                m.fault_counts,
                m.panics_observed,
                m.busy_observed,
                m.busy_verified,
                m.flight_events,
                m.flight_replay_ok,
            ),
            None => (Vec::new(), 0, 0, 0, 0, false),
        };

    ObsAuditReport {
        seed: base_seed,
        fault_trials: t,
        threads: spec.threads.clone(),
        requests,
        accepted,
        rejected,
        malformed,
        proof_bits,
        digest,
        deterministic,
        monotone,
        conserved,
        stats_frame_ok,
        fault_counts,
        panics_expected: t,
        panics_observed,
        busy_expected: 8 * t,
        busy_observed,
        busy_verified,
        flight_events,
        flight_replay_ok: replay_ok,
        rps,
        mean_verify_ns,
        passed: failures.is_empty(),
        failures,
    }
}

impl ObsAuditReport {
    /// The text artifact (`results/e14_obs.txt`). Timing figures
    /// (rps, mean verify latency) are printed to stdout by the CLI but
    /// not written here — the committed artifact stays timing-free.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("E14: observability audit — live metrics, conservation, flight replay\n");
        out.push_str(&format!(
            "seed={:#x} fault_trials_per_class={} threads={:?}\n\n",
            self.seed, self.fault_trials, self.threads
        ));
        out.push_str(&format!(
            "metrics probe: requests={} accept={} reject={} malformed={} proof_bits={}\n",
            self.requests, self.accepted, self.rejected, self.malformed, self.proof_bits
        ));
        out.push_str(&format!(
            "digest={:016x} deterministic={} monotone={} conserved={} stats_frame_ok={}\n\n",
            self.digest, self.deterministic, self.monotone, self.conserved, self.stats_frame_ok
        ));
        let rows: Vec<Vec<String>> = self
            .fault_counts
            .iter()
            .map(|(class, expected, got)| {
                vec![
                    class.to_string(),
                    expected.to_string(),
                    got.to_string(),
                    if got == expected { "ok" } else { "FAIL" }.to_string(),
                ]
            })
            .collect();
        out.push_str(&render_table(&["fault class", "expected", "observed", "verdict"], &rows));
        out.push_str(&format!(
            "\npanics: expected={} observed={}\n",
            self.panics_expected, self.panics_observed
        ));
        out.push_str(&format!(
            "busy storm: expected={} observed={} verified={}\n",
            self.busy_expected, self.busy_observed, self.busy_verified
        ));
        out.push_str(&format!(
            "flight: events={} replay_ok={}\n",
            self.flight_events, self.flight_replay_ok
        ));
        out.push_str(&format!("\nE14 audit: {}\n", if self.passed { "PASS" } else { "FAIL" }));
        for f in &self.failures {
            out.push_str(&format!("  failure: {f}\n"));
        }
        out
    }

    /// The JSON artifact (`results/e14_obs.json`). The deterministic
    /// payload carries the invariants; `rps` and `mean_verify_ns` are
    /// the only timing fields and are never byte-compared (the
    /// freshness test asserts they parse and are positive).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e14-obs-audit\",\n");
        out.push_str(&format!("  \"seed\": \"{:#x}\",\n", self.seed));
        out.push_str(&format!("  \"fault_trials\": {},\n", self.fault_trials));
        out.push_str(&format!(
            "  \"threads\": [{}],\n",
            self.threads.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!(
            "  \"verdicts\": {{\"requests\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"malformed\": {}, \"proof_bits\": {}}},\n",
            self.requests, self.accepted, self.rejected, self.malformed, self.proof_bits
        ));
        out.push_str(&format!(
            "  \"metrics\": {{\"digest\": \"{:016x}\", \"deterministic\": {}, \
             \"monotone\": {}, \"conserved\": {}, \"stats_frame_ok\": {}}},\n",
            self.digest, self.deterministic, self.monotone, self.conserved, self.stats_frame_ok
        ));
        out.push_str("  \"faults\": [\n");
        for (i, (class, expected, got)) in self.fault_counts.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{class}\", \"expected\": {expected}, \"observed\": {got}}}{}\n",
                if i + 1 < self.fault_counts.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"panics\": {{\"expected\": {}, \"observed\": {}}},\n",
            self.panics_expected, self.panics_observed
        ));
        out.push_str(&format!(
            "  \"busy\": {{\"expected\": {}, \"observed\": {}, \"verified\": {}}},\n",
            self.busy_expected, self.busy_observed, self.busy_verified
        ));
        out.push_str(&format!(
            "  \"flight\": {{\"events\": {}, \"replay_ok\": {}}},\n",
            self.flight_events, self.flight_replay_ok
        ));
        out.push_str(&format!(
            "  \"timing\": {{\"rps\": {:.1}, \"mean_verify_ns\": {}}},\n",
            self.rps, self.mean_verify_ns
        ));
        out.push_str(&format!("  \"passed\": {}\n", self.passed));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_probe_conserves_every_request() {
        let probe = metrics_determinism_probe(0x7e57, 2).expect("probe against a live server");
        assert!(probe.failures.is_empty(), "conservation violated: {:?}", probe.failures);
        assert!(probe.monotone);
        assert!(probe.stats_frame_ok);
        assert!(probe.requests >= 100);
        assert_eq!(probe.accepted + probe.rejected + probe.malformed, probe.requests);
        assert!(probe.proof_bits > 0);
    }
}
