//! Live observability for the serve path: the [`ServeObs`] bridge.
//!
//! [`ServeObs`] owns a [`MetricsRegistry`] (always-on counters, gauges,
//! and latency histograms) plus a [`FlightRecorder`] (a bounded ring of
//! recent structured events), and implements [`Recorder`] so the serve
//! front-ends can feed it from their existing instrumentation points —
//! typically through a [`pdip_obs::TeeRecorder`] next to whatever trace
//! recorder the caller supplied.
//!
//! # Metric naming scheme
//!
//! Names are Prometheus-flavoured, with label-carrying names spelled
//! out in full (the registry treats them as opaque keys):
//!
//! | metric | source |
//! |---|---|
//! | `requests_total{status="…"}` | one per [`Status`], from `serve/request` counter events |
//! | `conn_faults_total{class="…"}` | one per [`fault`] class, from `serve/conn` counter events |
//! | `proof_size_bits_total{family="…"}` | one per family, from `serve/proof-bits` counter events |
//! | `connections_total`, `io_errors_total`, `panics_total` | lifecycle counters |
//! | `queue_depth` (gauge) | the `serve/queue-depth` gauge stream |
//! | `latency_queue_wait_ns`, `latency_decode_ns`, `latency_verify_ns`, `latency_write_ns` | duration histograms |
//!
//! Every metric is pre-registered at construction, so a snapshot always
//! exposes the full stable name set (zeros included) and the hot path
//! never takes the registry lock.
//!
//! The per-family `proof_size_bits_total` counters make the paper's
//! headline quantity — O(log log n) proof size per round — observable
//! on a production server: each accepted or verifier-rejected replay
//! adds its transcript's maximum per-round label bits under its
//! family's label.

use super::Status;
use pdip_obs::{
    AtomicHistogram, Counter, Event, EventKind, FlightRecorder, Gauge, MetricsRegistry,
    MetricsSnapshot, Recorder,
};
use pdip_wire::frame::fault;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of the flight-recorder ring.
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// Default slow-request threshold: requests slower than this (from
/// dequeue to response write) land in the flight recorder.
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(250);

/// Live metrics + flight recorder for one serve instance.
///
/// Shared as an `Arc` between the server (which records) and whoever
/// wants snapshots (the stats frame, the E14 audit, the CLI).
#[derive(Debug)]
pub struct ServeObs {
    registry: MetricsRegistry,
    flight: FlightRecorder,
    slow_threshold: Duration,
    flight_dump: Option<PathBuf>,
    /// `Status::name()` → counter, one per status code.
    status_counters: Vec<(&'static str, Arc<Counter>)>,
    /// Fault class → counter, one per [`fault::ALL`] entry.
    fault_counters: Vec<(&'static str, Arc<Counter>)>,
    /// Family name → proof-size-bits counter, one per wire family.
    family_counters: Vec<(&'static str, Arc<Counter>)>,
    /// Span name → latency histogram.
    latency_hists: [(&'static str, Arc<AtomicHistogram>); 4],
    connections: Arc<Counter>,
    io_errors: Arc<Counter>,
    panics: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl Default for ServeObs {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeObs {
    /// A bridge with the default flight capacity and slow threshold and
    /// no dump file.
    pub fn new() -> ServeObs {
        Self::with_options(DEFAULT_FLIGHT_CAP, DEFAULT_SLOW_THRESHOLD, None)
    }

    /// A bridge with explicit flight-ring capacity, slow-request
    /// threshold, and optional JSONL dump path (written best-effort on
    /// panic and at drain).
    pub fn with_options(
        flight_cap: usize,
        slow_threshold: Duration,
        flight_dump: Option<PathBuf>,
    ) -> ServeObs {
        let registry = MetricsRegistry::new();
        let status_counters = Status::ALL
            .iter()
            .map(|s| {
                (s.name(), registry.counter(&format!("requests_total{{status=\"{}\"}}", s.name())))
            })
            .collect();
        let fault_counters = fault::ALL
            .iter()
            .map(|&class| {
                (class, registry.counter(&format!("conn_faults_total{{class=\"{class}\"}}")))
            })
            .collect();
        let family_counters = (1u8..=6)
            .filter_map(pdip_wire::family_name)
            .map(|fam| {
                (fam, registry.counter(&format!("proof_size_bits_total{{family=\"{fam}\"}}")))
            })
            .collect();
        let latency_hists = [
            ("serve/queue-wait", registry.histogram("latency_queue_wait_ns")),
            ("serve/decode", registry.histogram("latency_decode_ns")),
            ("serve/verify", registry.histogram("latency_verify_ns")),
            ("serve/write", registry.histogram("latency_write_ns")),
        ];
        ServeObs {
            connections: registry.counter("connections_total"),
            io_errors: registry.counter("io_errors_total"),
            panics: registry.counter("panics_total"),
            queue_depth: registry.gauge("queue_depth"),
            flight: FlightRecorder::new(flight_cap),
            slow_threshold,
            flight_dump,
            status_counters,
            fault_counters,
            family_counters,
            latency_hists,
            registry,
        }
    }

    /// The underlying registry (for ad-hoc instruments).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The flight-recorder ring.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The slow-request threshold in nanoseconds.
    pub fn slow_threshold_nanos(&self) -> u64 {
        u64::try_from(self.slow_threshold.as_nanos()).unwrap_or(u64::MAX)
    }

    /// A point-in-time reading of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders a stats-frame payload: mode 0 (default) is the
    /// Prometheus-style text exposition, mode 1 is the JSON snapshot,
    /// mode 2 is the flight-recorder JSONL dump.
    pub fn render(&self, mode: u8) -> String {
        match mode {
            1 => self.snapshot().render_json(),
            2 => self.flight.dump_jsonl(),
            _ => self.snapshot().render_prometheus(),
        }
    }

    /// Records one structured flight event.
    pub fn flight_event(
        &self,
        kind: &'static str,
        conn: u64,
        req: u64,
        label: &'static str,
        detail: String,
    ) {
        self.flight.record(kind, conn, req, label, detail);
    }

    /// Counts an accepted connection and records its lifecycle event.
    pub fn note_connection(&self, conn: u64) {
        self.connections.inc();
        self.flight.record("conn-open", conn, 0, "open", String::new());
    }

    /// Counts a worker panic, records it, and dumps the flight ring
    /// (best-effort) if a dump path is configured.
    pub fn note_panic(&self, conn: u64, req: u64, detail: String) {
        self.panics.inc();
        self.flight.record("panic", conn, req, "panic", detail);
        self.dump_flight("panic");
    }

    /// Records a slow request (caller has already compared against
    /// [`ServeObs::slow_threshold_nanos`]).
    pub fn note_slow(&self, conn: u64, req: u64, status: &'static str, elapsed_nanos: u64) {
        self.flight.record(
            "slow-request",
            conn,
            req,
            status,
            format!("elapsed_ns={elapsed_nanos}"),
        );
    }

    /// Writes the flight ring as JSONL to the configured dump path
    /// (best-effort, no-op without one). The `reason` is prepended as
    /// its own JSONL header line.
    pub fn dump_flight(&self, reason: &str) {
        if let Some(path) = &self.flight_dump {
            let body = format!(
                "{{\"flight\": \"dump\", \"reason\": \"{reason}\"}}\n{}",
                self.flight.dump_jsonl()
            );
            let _ = std::fs::write(path, body);
        }
    }
}

impl Recorder for ServeObs {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, ev: Event) {
        let EventKind::Counter { key, value } = ev.kind else { return };
        let table = match ev.span.name {
            "serve/request" => &self.status_counters,
            "serve/conn" => &self.fault_counters,
            "serve/proof-bits" => &self.family_counters,
            "serve/io-error" => {
                self.io_errors.add(value);
                return;
            }
            _ => return,
        };
        if let Some((_, c)) = table.iter().find(|(k, _)| *k == key) {
            c.add(value);
        }
    }

    fn duration(&self, name: &'static str, nanos: u64) {
        if let Some((_, h)) = self.latency_hists.iter().find(|(n, _)| *n == name) {
            h.record(nanos);
        }
    }

    fn gauge(&self, name: &'static str, value: u64) {
        if name == "serve/queue-depth" {
            self.queue_depth.set(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_obs::{counter, SpanId};

    #[test]
    fn bridge_routes_counter_events_by_span_name() {
        let obs = ServeObs::new();
        counter(&obs, 0, SpanId::new("serve/request"), "accept", 1);
        counter(&obs, 0, SpanId::new("serve/request"), "accept", 1);
        counter(&obs, 0, SpanId::new("serve/request"), "busy", 1);
        counter(&obs, 3, SpanId::new("serve/conn"), fault::TRUNCATED_FRAME, 1);
        counter(&obs, 0, SpanId::new("serve/proof-bits"), "planarity", 7);
        counter(&obs, 0, SpanId::new("serve/io-error"), "io-error", 1);
        counter(&obs, 0, SpanId::new("unrelated/span"), "accept", 99);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("requests_total{status=\"accept\"}"), Some(2));
        assert_eq!(snap.counter("requests_total{status=\"busy\"}"), Some(1));
        assert_eq!(snap.counter("requests_total{status=\"reject\"}"), Some(0));
        assert_eq!(snap.counter("conn_faults_total{class=\"truncated-frame\"}"), Some(1));
        assert_eq!(snap.counter("proof_size_bits_total{family=\"planarity\"}"), Some(7));
        assert_eq!(snap.counter("io_errors_total"), Some(1));
    }

    #[test]
    fn bridge_routes_durations_and_gauges() {
        let obs = ServeObs::new();
        obs.duration("serve/verify", 1000);
        obs.duration("serve/decode", 10);
        obs.duration("unknown/name", 5);
        obs.gauge("serve/queue-depth", 4);
        obs.gauge("serve/queue-depth", 2);
        let snap = obs.snapshot();
        assert_eq!(snap.histogram("latency_verify_ns").map(|h| h.count()), Some(1));
        assert_eq!(snap.histogram("latency_decode_ns").map(|h| h.count()), Some(1));
        assert_eq!(snap.histogram("latency_write_ns").map(|h| h.count()), Some(0));
        let gauge = snap.gauges.iter().find(|(n, _)| n == "queue_depth").map(|(_, g)| *g);
        assert_eq!(gauge.map(|g| (g.last, g.max)), Some((2, 4)));
    }

    #[test]
    fn full_name_set_is_pre_registered() {
        let snap = ServeObs::new().snapshot();
        assert_eq!(snap.counters.len(), 9 + 6 + 6 + 3, "statuses + faults + families + lifecycle");
        assert_eq!(snap.hists.len(), 4);
        assert!(snap.counters.iter().all(|(_, v)| *v == 0));
    }
}
