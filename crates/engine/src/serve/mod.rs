//! `pdip serve` — the proof-verification service.
//!
//! Clients submit serialized [`Transcript`] blobs (see `pdip-wire`) over
//! a length-prefixed frame stream and get back one response per request.
//! Two front-ends share this module's verification core:
//!
//! * **Batch** ([`serve_stream`], used by `--stdin` pipes and the E12
//!   smoke): one framed stream is read to EOF, every request is pushed
//!   through [`process_batch`], and all responses are written back
//!   sorted by sequence number — byte-identical at any worker count.
//! * **Concurrent** ([`live`], used by TCP): a long-lived accept loop
//!   feeds per-connection reader threads into one shared worker pool,
//!   responses stream back as each request completes (clients reorder
//!   by seq), and connection faults are isolated per connection. See
//!   the [`live`] module docs for the lifecycle and drain semantics.
//!
//! In both modes, requests feed a bounded worker queue with
//! backpressure: when the queue is full a request is rejected with
//! [`Status::Busy`] instead of stalling the stream. Each verification
//! runs behind `catch_unwind` (a panicking replay is reported, never
//! fatal) and may be classified [`Status::Deadline`] post-hoc, reusing
//! the sweep engine's watchdog semantics.
//!
//! # Frame protocol (all integers little-endian)
//!
//! Every frame is `len u32 | payload` with `len ≤`
//! [`ServeConfig::max_frame_bytes`] (framing lives in
//! [`pdip_wire::frame`]). Request payloads start with a tag byte:
//! [`REQ_VERIFY`] followed by a transcript blob, [`REQ_PING`], or
//! [`REQ_SHUTDOWN`] (graceful stop). Response payloads are
//! `seq u64 | status u8 | len u32 | detail` — see [`Status`] for the
//! code points, which the CLI maps onto distinct exit codes
//! (`malformed transcript` ≠ `verifier rejected`).

pub mod live;
pub mod obs;

use crate::pool::PanicSilencer;
use crate::report::render_table;
use pdip_obs::{counter, span, NoopRecorder, Recorder, ScopedRecorder, SpanId, TeeRecorder};
pub use pdip_wire::frame::{
    fault_class, read_frame, read_frame_deadline, read_frame_limited, write_frame,
};
use pdip_wire::{fnv1a64, Transcript, VerifyOutcome};
use std::io::{Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

pub use live::{serve_concurrent, serve_tcp, spawn_server, ServerHandle, ShutdownFlag};
pub use obs::{ServeObs, DEFAULT_FLIGHT_CAP, DEFAULT_SLOW_THRESHOLD};

/// Default hard cap on one frame's payload (the E12-era constant; now
/// configurable per service via [`ServeConfig::max_frame_bytes`]).
pub const MAX_FRAME: usize = pdip_wire::frame::DEFAULT_MAX_FRAME_BYTES;

/// Magic prefix of a chaos panic-injection blob (see
/// [`ServeConfig::panic_token`] and [`panic_blob`]).
pub const PANIC_MAGIC: &[u8; 8] = b"PANICME!";

/// Base seed of the committed E12 serve-smoke artifacts.
pub const E12_SEED: u64 = 0xe12;

/// Request tag: verify the transcript blob that follows.
pub const REQ_VERIFY: u8 = 0x01;
/// Request tag: liveness probe, answered with [`Status::Pong`].
pub const REQ_PING: u8 = 0x02;
/// Request tag: live metrics snapshot, answered with [`Status::Stats`]
/// carrying the rendering in the detail. An optional second payload
/// byte selects the format: 0 = Prometheus-style text (default),
/// 1 = JSON, 2 = flight-recorder JSONL.
pub const REQ_STATS: u8 = 0x03;
/// Request tag: graceful shutdown of the stream (and, over TCP, the
/// listener), answered with [`Status::ShutdownAck`].
pub const REQ_SHUTDOWN: u8 = 0x7f;

/// Per-request response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Well-formed, replay matched, verifier accepts.
    Accept = 0,
    /// Well-formed, but the verifier rejects (honest record of a
    /// rejecting run, or a replay mismatch — see the detail string).
    Reject = 1,
    /// The blob failed to decode: truncated, corrupted, bad magic,
    /// unsupported version, invalid field, or the request tag itself
    /// was unknown.
    Malformed = 2,
    /// The bounded queue was full; the request was never verified.
    Busy = 3,
    /// Verification completed but exceeded the per-request deadline.
    Deadline = 4,
    /// Acknowledges [`REQ_SHUTDOWN`].
    ShutdownAck = 5,
    /// Acknowledges [`REQ_PING`].
    Pong = 6,
    /// The connection itself faulted (truncated frame, oversized
    /// length, read stall, …). Sent best-effort with the fault class in
    /// the detail before the server closes that one connection; other
    /// connections are unaffected.
    ConnError = 7,
    /// Final aggregate-statistics frame of a graceful drain, sent with
    /// `seq = u64::MAX` to the connection that requested shutdown.
    Stats = 8,
}

impl Status {
    /// Every status, in wire-code order (the order the live-metrics
    /// `requests_total` counters are pre-registered in).
    pub const ALL: [Status; 9] = [
        Status::Accept,
        Status::Reject,
        Status::Malformed,
        Status::Busy,
        Status::Deadline,
        Status::ShutdownAck,
        Status::Pong,
        Status::ConnError,
        Status::Stats,
    ];

    /// The wire code of this status.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Status::code`].
    pub fn from_code(c: u8) -> Option<Status> {
        Some(match c {
            0 => Status::Accept,
            1 => Status::Reject,
            2 => Status::Malformed,
            3 => Status::Busy,
            4 => Status::Deadline,
            5 => Status::ShutdownAck,
            6 => Status::Pong,
            7 => Status::ConnError,
            8 => Status::Stats,
            _ => return None,
        })
    }

    /// Display name (stable; appears in E12 artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Status::Accept => "accept",
            Status::Reject => "reject",
            Status::Malformed => "malformed",
            Status::Busy => "busy",
            Status::Deadline => "deadline",
            Status::ShutdownAck => "shutdown-ack",
            Status::Pong => "pong",
            Status::ConnError => "conn-error",
            Status::Stats => "stats",
        }
    }
}

/// One response of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// Outcome class.
    pub status: Status,
    /// Human-readable detail (reject reason, decode error, …).
    pub detail: String,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Verification worker threads.
    pub threads: usize,
    /// Bound of the request queue; a submission finding it full is
    /// rejected with [`Status::Busy`].
    pub queue_cap: usize,
    /// Post-hoc per-request deadline (the sweep engine's
    /// `job_deadline` semantics): verification always completes, but a
    /// run exceeding the budget reports [`Status::Deadline`].
    pub deadline: Option<Duration>,
    /// Hard cap on one frame's payload; a header declaring more is
    /// rejected before any allocation. Defaults to [`MAX_FRAME`] (the
    /// E12-era constant), overridable via `--max-frame-bytes`.
    pub max_frame_bytes: usize,
    /// Per-frame read deadline of the concurrent front-end: the total
    /// wall time one frame may take to arrive (slow-loris bound). The
    /// batch front-end ([`serve_stream`]) ignores it — pipes have no
    /// hostile peers.
    pub read_deadline: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight requests before
    /// stamping the final stats frame `drained=timeout`. Queued work is
    /// still completed either way; the deadline only bounds the wait.
    pub drain_deadline: Duration,
    /// Chaos hook: when set, a [`REQ_VERIFY`] blob equal to
    /// [`panic_blob`]`(token)` panics inside the worker. Proves (E13)
    /// that worker panics poison only their own request.
    pub panic_token: Option<u64>,
    /// Chaos hook: when set, workers block on this gate before taking
    /// each job, making busy-storm rejection counts deterministic.
    pub hold: Option<Gate>,
    /// Live observability bridge shared with the caller: metrics
    /// registry + flight recorder (see [`ServeObs`]). The concurrent
    /// front-end creates a private one when `None`, so [`REQ_STATS`]
    /// always answers; pass a shared handle to read snapshots from
    /// outside (as `pdip obs-audit` does).
    pub obs: Option<Arc<ServeObs>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue_cap: 256,
            deadline: None,
            max_frame_bytes: MAX_FRAME,
            read_deadline: Some(Duration::from_secs(30)),
            drain_deadline: Duration::from_secs(5),
            panic_token: None,
            hold: None,
            obs: None,
        }
    }
}

/// A gate the E12 busy probe uses to hold all workers idle while the
/// submission side fills the bounded queue, making busy-rejection
/// deterministic instead of racing the workers.
#[derive(Debug, Clone, Default)]
pub struct Gate {
    inner: Arc<(Mutex<bool>, Condvar)>,
}

impl Gate {
    /// A closed gate: workers holding it block until [`Gate::open`].
    pub fn closed() -> Gate {
        Gate::default()
    }

    /// Opens the gate, releasing every waiting worker.
    pub fn open(&self) {
        let (lock, cv) = &*self.inner;
        if let Ok(mut open) = lock.lock() {
            *open = true;
        }
        cv.notify_all();
    }

    pub(crate) fn wait_open(&self) {
        let (lock, cv) = &*self.inner;
        if let Ok(guard) = lock.lock() {
            let _unused = cv.wait_while(guard, |open| !*open);
        }
    }
}

struct Job {
    seq: u64,
    blob: Vec<u8>,
    enqueued: Instant,
}

/// Counts of one batch, folded from its responses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered [`Status::Accept`].
    pub accepted: u64,
    /// Requests answered [`Status::Reject`].
    pub rejected: u64,
    /// Requests answered [`Status::Malformed`].
    pub malformed: u64,
    /// Requests answered [`Status::Busy`].
    pub busy: u64,
    /// Requests answered [`Status::Deadline`].
    pub deadline: u64,
    /// Verifications that panicked (counted, never fatal).
    pub panics: u64,
    /// Connections torn down by a frame-level fault (truncated frame,
    /// oversized length, stall, peer reset). Concurrent front-end only.
    pub conn_faults: u64,
    /// Response writes that failed because the peer was gone.
    /// Concurrent front-end only.
    pub io_errors: u64,
    /// Connections accepted. Concurrent front-end only.
    pub connections: u64,
}

impl ServeStats {
    /// Folds response statuses into counts (panics are counted by the
    /// worker, not derivable from statuses).
    pub fn fold(responses: &[Response]) -> ServeStats {
        let mut s = ServeStats::default();
        for r in responses {
            match r.status {
                Status::Accept => s.accepted += 1,
                Status::Reject => s.rejected += 1,
                Status::Malformed => s.malformed += 1,
                Status::Busy => s.busy += 1,
                Status::Deadline => s.deadline += 1,
                Status::ShutdownAck | Status::Pong | Status::ConnError | Status::Stats => {}
            }
        }
        s
    }
}

/// The chaos panic-injection blob for `token`: [`PANIC_MAGIC`]
/// followed by the token, little-endian. A server configured with
/// [`ServeConfig::panic_token`]` = Some(token)` panics inside the
/// worker when it sees exactly this blob (and treats every other blob
/// normally — the magic alone is not enough).
pub fn panic_blob(token: u64) -> Vec<u8> {
    let mut b = PANIC_MAGIC.to_vec();
    b.extend_from_slice(&token.to_le_bytes());
    b
}

/// Runs one verification the way a worker does: panic-token check,
/// `catch_unwind` isolation (panic → [`Status::Malformed`] with a
/// `panic:` detail, counted into `panics`), then post-hoc deadline
/// classification. Shared by [`process_batch`] and the concurrent
/// front-end so both report identical statuses for identical blobs.
pub(crate) fn verify_guarded(
    blob: &[u8],
    panic_token: Option<u64>,
    deadline: Option<Duration>,
    rec: &dyn Recorder,
    panics: &AtomicU64,
) -> (Status, String) {
    let started = Instant::now();
    let out = catch_unwind(AssertUnwindSafe(|| {
        if let Some(tok) = panic_token {
            if *blob == *panic_blob(tok) {
                panic!("chaos panic token {tok:#x}");
            }
        }
        verify_blob(blob, rec)
    }));
    let (status, detail) = out.unwrap_or_else(|payload| {
        panics.fetch_add(1, Ordering::Relaxed);
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        (Status::Malformed, format!("panic: {msg}"))
    });
    // Post-hoc deadline classification, same semantics as the sweep
    // engine's `job_deadline` watchdog: the run always completes, but a
    // budget overrun is reported as such.
    match deadline {
        Some(d) if started.elapsed() > d => {
            (Status::Deadline, format!("deadline exceeded; completed as {}", status.name()))
        }
        _ => (status, detail),
    }
}

/// Decodes and replay-verifies one blob (the worker body, also used by
/// `pdip verify`): malformed blobs map to [`Status::Malformed`],
/// replay mismatches and verifier rejections to [`Status::Reject`].
pub fn verify_blob(blob: &[u8], rec: &dyn Recorder) -> (Status, String) {
    // Each span's guard records the duration on drop — exactly one
    // observation per stage per request, which is what the E14
    // conservation invariants (histogram count == requests) pin.
    let decoded = {
        let _s = span(rec, 0, SpanId::new("serve/decode"));
        Transcript::decode(blob)
    };
    let t = match decoded {
        Err(e) => return (Status::Malformed, e.to_string()),
        Ok(t) => t,
    };
    let outcome = {
        let _s = span(rec, 0, SpanId::new("serve/verify"));
        t.verify()
    };
    // Live proof-size accounting: every completed replay contributes
    // its max per-round label bits to its family's counter, keyed by
    // the stable family name.
    let proof_bits = |res: &pdip_core::RunResult| {
        counter(
            rec,
            0,
            SpanId::new("serve/proof-bits"),
            t.instance.family_name(),
            res.stats.proof_size() as u64,
        );
    };
    match outcome {
        VerifyOutcome::Accepted(res) => {
            proof_bits(&res);
            (Status::Accept, String::new())
        }
        VerifyOutcome::VerifierRejected(res) => {
            proof_bits(&res);
            let reason = res
                .rejections
                .first()
                .map(|(v, r)| format!("node {v}: {r}"))
                .unwrap_or_else(|| "verifier rejected".into());
            (Status::Reject, reason)
        }
        VerifyOutcome::ReplayMismatch { detail } => {
            (Status::Reject, format!("replay mismatch: {detail}"))
        }
    }
}

/// Pushes a batch of verification requests through a bounded worker
/// pool and returns one [`Response`] per request, sorted by sequence
/// number (deterministic at any `threads`).
///
/// Submission happens on the calling thread with `try_send`: a full
/// queue yields an immediate [`Status::Busy`] response — backpressure,
/// not blocking. `gate`, when given, holds workers idle until opened
/// (after the submission loop), which the E12 smoke uses to exercise
/// the busy path deterministically. Panicking verifications are
/// answered [`Status::Malformed`] with a `panic:` detail and counted
/// in the returned stats.
pub fn process_batch(
    cfg: &ServeConfig,
    requests: Vec<(u64, Vec<u8>)>,
    gate: Option<&Gate>,
    rec: &dyn Recorder,
) -> (Vec<Response>, ServeStats) {
    let threads = cfg.threads.max(1);
    let deadline = cfg.deadline;
    let _silencer = PanicSilencer::engage();
    let panics = AtomicU64::new(0);
    let (jobs_tx, jobs_rx) = sync_channel::<Job>(cfg.queue_cap.max(1));
    let jobs_rx = Mutex::new(jobs_rx);
    let (res_tx, res_rx) = std::sync::mpsc::channel::<Response>();

    let mut responses = thread::scope(|s| {
        for _ in 0..threads {
            let res_tx = res_tx.clone();
            let jobs_rx = &jobs_rx;
            let panics = &panics;
            s.spawn(move || loop {
                if let Some(g) = gate {
                    g.wait_open();
                }
                let job = match jobs_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                let Ok(job) = job else { break };
                let job_rec = ScopedRecorder::new(rec, job.seq);
                if job_rec.enabled() {
                    let waited = job.enqueued.elapsed().as_nanos();
                    job_rec.duration("serve/queue-wait", u64::try_from(waited).unwrap_or(u64::MAX));
                }
                let (status, detail) =
                    verify_guarded(&job.blob, cfg.panic_token, deadline, &job_rec, panics);
                counter(&job_rec, job.seq, SpanId::new("serve/request"), status.name(), 1);
                if res_tx.send(Response { seq: job.seq, status, detail }).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);

        let mut busy = Vec::new();
        for (seq, blob) in requests {
            let mut job = Job { seq, blob, enqueued: Instant::now() };
            match jobs_tx.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(j)) => {
                    job = j;
                    counter(rec, job.seq, SpanId::new("serve/request"), "busy", 1);
                    busy.push(Response {
                        seq: job.seq,
                        status: Status::Busy,
                        detail: "queue full".into(),
                    });
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        drop(jobs_tx);
        if let Some(g) = gate {
            g.open();
        }
        let mut responses: Vec<Response> = res_rx.iter().collect();
        responses.append(&mut busy);
        responses
    });

    responses.sort_by_key(|r| r.seq);
    let mut stats = ServeStats::fold(&responses);
    stats.panics = panics.load(Ordering::Relaxed);
    (responses, stats)
}

/// Encodes a [`Response`] payload.
pub fn encode_response(r: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(13 + r.detail.len());
    out.extend_from_slice(&r.seq.to_le_bytes());
    out.push(r.status.code());
    out.extend_from_slice(&(r.detail.len() as u32).to_le_bytes());
    out.extend_from_slice(r.detail.as_bytes());
    out
}

/// Decodes a [`Response`] payload (used by clients and tests).
pub fn decode_response(payload: &[u8]) -> Option<Response> {
    if payload.len() < 13 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let status = Status::from_code(payload[8])?;
    let len = u32::from_le_bytes(payload[9..13].try_into().ok()?) as usize;
    if payload.len() != 13 + len {
        return None;
    }
    let detail = String::from_utf8(payload[13..].to_vec()).ok()?;
    Some(Response { seq, status, detail })
}

/// Drives one framed request stream end-to-end: reads frames until EOF
/// or [`REQ_SHUTDOWN`], pushes every verify request through
/// [`process_batch`], and writes all responses back sorted by sequence
/// number. Returns the batch stats and whether a shutdown frame was
/// seen (the TCP accept loop stops on it).
pub fn serve_stream(
    cfg: &ServeConfig,
    input: &mut dyn Read,
    output: &mut dyn Write,
    rec: &dyn Recorder,
) -> std::io::Result<(ServeStats, bool)> {
    let mut seq = 0u64;
    let mut verifies = Vec::new();
    let mut immediate = Vec::new();
    // Stats requests are answered after the batch so the snapshot
    // reflects it: `(seq, render mode)`.
    let mut stats_reqs: Vec<(u64, u8)> = Vec::new();
    let mut shutdown = false;
    while let Some(frame) = read_frame(input)? {
        let this_seq = seq;
        seq += 1;
        match frame.first().copied() {
            Some(REQ_VERIFY) => verifies.push((this_seq, frame[1..].to_vec())),
            Some(REQ_PING) => immediate.push(Response {
                seq: this_seq,
                status: Status::Pong,
                detail: String::new(),
            }),
            Some(REQ_STATS) => stats_reqs.push((this_seq, frame.get(1).copied().unwrap_or(0))),
            Some(REQ_SHUTDOWN) => {
                immediate.push(Response {
                    seq: this_seq,
                    status: Status::ShutdownAck,
                    detail: String::new(),
                });
                shutdown = true;
                break;
            }
            tag => immediate.push(Response {
                seq: this_seq,
                status: Status::Malformed,
                detail: format!("unknown request tag {tag:?}"),
            }),
        }
    }
    let (mut responses, stats) = match &cfg.obs {
        Some(o) => {
            let tee = TeeRecorder::new(rec, o.as_ref());
            process_batch(cfg, verifies, None, &tee)
        }
        None => process_batch(cfg, verifies, None, rec),
    };
    for (stat_seq, mode) in stats_reqs {
        let detail = match &cfg.obs {
            Some(o) => o.render(mode),
            None => String::new(),
        };
        responses.push(Response { seq: stat_seq, status: Status::Stats, detail });
    }
    responses.append(&mut immediate);
    responses.sort_by_key(|r| r.seq);
    for r in &responses {
        write_frame(output, &encode_response(r))?;
    }
    output.flush()?;
    Ok((stats, shutdown))
}

// ---------------------------------------------------------------------
// E12: serve throughput smoke audit
// ---------------------------------------------------------------------

/// The deterministic outcome of the E12 serve smoke (timing-free).
#[derive(Debug)]
pub struct ServeSmokeReport {
    /// One line per request of the mixed batch, in sequence order.
    pub lines: Vec<String>,
    /// Stats of the mixed batch (at every compared thread count).
    pub stats: ServeStats,
    /// Requests submitted to the gated busy probe.
    pub probe_submitted: u64,
    /// Busy rejections of the gated probe (must equal
    /// `probe_submitted - queue_cap`).
    pub probe_busy: u64,
    /// Queue bound used by the probe.
    pub probe_queue_cap: u64,
    /// Thread counts whose response streams were compared.
    pub threads_compared: Vec<usize>,
    /// Whether all compared thread counts produced byte-identical
    /// response records.
    pub deterministic: bool,
    /// FNV-1a-64 digest of the joined record lines.
    pub digest: u64,
    /// Audit verdict.
    pub passed: bool,
    /// Human-readable audit failures (empty when `passed`).
    pub failures: Vec<String>,
}

/// Builds the deterministic E12 request mix: honest transcripts of all
/// six families (accepts), cheat transcripts (rejects), and
/// chaos-corrupted blobs (malformed). ≥ 100 requests total.
pub fn smoke_requests(base_seed: u64) -> Vec<(u64, Vec<u8>)> {
    use crate::chaos::Mutator;
    use crate::family::{no_instance, YesInstance, FAMILIES};
    use pdip_protocols::{PopParams, Transport};
    use pdip_wire::WireInstance;

    let to_wire = |inst: YesInstance| match inst {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        YesInstance::Op(i) => WireInstance::Op(i),
        YesInstance::Emb(i) => WireInstance::Emb(i),
        YesInstance::Pl(i) => WireInstance::Pl(i),
        YesInstance::Spa(i) => WireInstance::Spa(i),
        YesInstance::Tw2(i) => WireInstance::Tw2(i),
    };
    let mut blobs: Vec<Vec<u8>> = Vec::new();
    // Honest accepts: 6 families × 2 sizes × 2 trials = 24.
    for (fi, fam) in FAMILIES.iter().enumerate() {
        for (ni, n) in [16usize, 48].iter().enumerate() {
            for trial in 0..2u64 {
                let gen_seed = base_seed + (fi as u64) * 100 + (ni as u64) * 10 + trial;
                let run_seed = gen_seed ^ 0x5eed;
                let inst = to_wire(YesInstance::generate(*fam, *n, gen_seed));
                let t = pdip_wire::Transcript::record(
                    inst,
                    PopParams::default(),
                    Transport::Simulated,
                    0,
                    gen_seed,
                    run_seed,
                );
                blobs.push(t.encode());
            }
        }
    }
    // Cheat provers on no-instances: 6 families × every strategy ≈ 22.
    for (fi, fam) in FAMILIES.iter().enumerate() {
        let gen_seed = base_seed + 7000 + fi as u64;
        let inst = to_wire(no_instance(*fam, 32, gen_seed));
        for strategy in 0..inst.cheat_count() {
            let t = pdip_wire::Transcript::record(
                inst.clone(),
                PopParams::default(),
                Transport::Simulated,
                (strategy + 1) as u8,
                gen_seed,
                gen_seed ^ 0xbad,
            );
            blobs.push(t.encode());
        }
    }
    // Malformed: corrupt honest blobs with the chaos mutator — bit
    // flips, truncations, and oversized length fields. 60 requests.
    let honest_count = blobs.len().min(24);
    let mut mal = Vec::new();
    for k in 0..60u64 {
        let mut m = Mutator::new(base_seed ^ (0xc0ffee + k));
        let src = &blobs[(k as usize) % honest_count];
        let mut bad = src.clone();
        match k % 3 {
            0 => {
                // Bit flip somewhere in the body.
                let i = m.index(bad.len());
                bad[i] ^= m.bit(8) as u8;
            }
            1 => {
                // Truncate at a random cut.
                bad.truncate(m.index(bad.len()));
            }
            _ => {
                // Oversized length field: stamp 0xffff_ffff over four
                // bytes (hits a section or vector length often enough).
                let i = m.index(bad.len().saturating_sub(4).max(1));
                for b in bad.iter_mut().skip(i).take(4) {
                    *b = 0xff;
                }
            }
        }
        mal.push(bad);
    }
    blobs.extend(mal);
    blobs.into_iter().enumerate().map(|(i, b)| (i as u64, b)).collect()
}

/// Runs the E12 serve smoke: a deterministic gated busy probe plus a
/// ≥100-request mixed batch executed at every thread count in
/// `threads`, whose response records must be byte-identical.
pub fn run_serve_smoke(threads: &[usize], base_seed: u64) -> ServeSmokeReport {
    let mut failures = Vec::new();

    // --- Gated busy probe: queue bound 4, 8 requests, workers held ---
    let probe_cap = 4usize;
    let probe_n = 8u64;
    let probe_reqs =
        smoke_requests(base_seed ^ 0x9999).into_iter().take(probe_n as usize).collect::<Vec<_>>();
    let gate = Gate::closed();
    let probe_cfg =
        ServeConfig { threads: 2, queue_cap: probe_cap, deadline: None, ..ServeConfig::default() };
    let (probe_responses, probe_stats) =
        process_batch(&probe_cfg, probe_reqs, Some(&gate), &NoopRecorder);
    let expect_busy = probe_n - probe_cap as u64;
    if probe_stats.busy != expect_busy {
        failures.push(format!(
            "busy probe: expected exactly {expect_busy} busy rejections, got {}",
            probe_stats.busy
        ));
    }
    if probe_responses.len() as u64 != probe_n {
        failures.push(format!(
            "busy probe: expected {probe_n} responses, got {}",
            probe_responses.len()
        ));
    }

    // --- Mixed batch at every thread count ---
    let requests = smoke_requests(base_seed);
    let total = requests.len();
    if total < 100 {
        failures.push(format!("request mix too small: {total} < 100"));
    }
    let mut streams: Vec<(usize, Vec<String>, ServeStats)> = Vec::new();
    for &t in threads {
        let cfg = ServeConfig {
            threads: t,
            queue_cap: total.max(1),
            deadline: None,
            ..ServeConfig::default()
        };
        let (responses, stats) = process_batch(&cfg, requests.clone(), None, &NoopRecorder);
        let lines: Vec<String> = responses
            .iter()
            .map(|r| {
                let detail = if r.detail.is_empty() { "-" } else { r.detail.as_str() };
                format!("seq={:03} status={} detail={}", r.seq, r.status.name(), detail)
            })
            .collect();
        if stats.panics > 0 {
            failures.push(format!("{} verification panics at threads={t}", stats.panics));
        }
        if stats.busy > 0 {
            failures
                .push(format!("unexpected busy rejection in unbounded mixed batch at threads={t}"));
        }
        streams.push((t, lines, stats));
    }
    let (first_lines, first_stats) = match streams.first() {
        Some((_, l, s)) => (l.clone(), *s),
        None => (Vec::new(), ServeStats::default()),
    };
    let deterministic = streams.iter().all(|(_, l, _)| *l == first_lines);
    if !deterministic {
        failures.push("response records differ across thread counts".into());
    }
    if first_stats.accepted == 0 || first_stats.rejected == 0 || first_stats.malformed == 0 {
        failures.push(format!(
            "mix must exercise accept/reject/malformed, got {}/{}/{}",
            first_stats.accepted, first_stats.rejected, first_stats.malformed
        ));
    }
    let digest = fnv1a64(first_lines.join("\n").as_bytes());

    ServeSmokeReport {
        lines: first_lines,
        stats: first_stats,
        probe_submitted: probe_n,
        probe_busy: probe_stats.busy,
        probe_queue_cap: probe_cap as u64,
        threads_compared: threads.to_vec(),
        deterministic,
        digest,
        passed: failures.is_empty(),
        failures,
    }
}

impl ServeSmokeReport {
    /// The timing-free text artifact (`results/e12_serve.txt`).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("E12: serve throughput smoke — batch verification service\n");
        out.push_str(&format!(
            "requests={} accept={} reject={} malformed={} panics={}\n",
            self.lines.len(),
            self.stats.accepted,
            self.stats.rejected,
            self.stats.malformed,
            self.stats.panics,
        ));
        out.push_str(&format!(
            "busy probe: submitted={} queue_cap={} busy={}\n",
            self.probe_submitted, self.probe_queue_cap, self.probe_busy
        ));
        out.push_str(&format!(
            "threads compared: {:?} deterministic={} digest={:016x}\n\n",
            self.threads_compared, self.deterministic, self.digest
        ));
        let rows: Vec<Vec<String>> =
            self.lines.iter().map(|l| l.splitn(3, ' ').map(String::from).collect()).collect();
        out.push_str(&render_table(&["seq", "status", "detail"], &rows));
        out.push_str(&format!("\nE12 audit: {}\n", if self.passed { "PASS" } else { "FAIL" }));
        for f in &self.failures {
            out.push_str(&format!("  failure: {f}\n"));
        }
        out
    }

    /// The timing-free JSON artifact (`results/e12_serve.json`).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e12-serve-smoke\",\n");
        out.push_str(&format!("  \"requests\": {},\n", self.lines.len()));
        out.push_str(&format!("  \"accepted\": {},\n", self.stats.accepted));
        out.push_str(&format!("  \"rejected\": {},\n", self.stats.rejected));
        out.push_str(&format!("  \"malformed\": {},\n", self.stats.malformed));
        out.push_str(&format!("  \"panics\": {},\n", self.stats.panics));
        out.push_str(&format!(
            "  \"busy_probe\": {{\"submitted\": {}, \"queue_cap\": {}, \"busy\": {}}},\n",
            self.probe_submitted, self.probe_queue_cap, self.probe_busy
        ));
        out.push_str(&format!(
            "  \"threads_compared\": [{}],\n",
            self.threads_compared.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        out.push_str(&format!("  \"digest\": \"{:016x}\",\n", self.digest));
        out.push_str(&format!("  \"passed\": {}\n", self.passed));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{Family, YesInstance};
    use pdip_protocols::{PopParams, Transport};
    use pdip_wire::WireInstance;

    fn honest_blob(seed: u64) -> Vec<u8> {
        let inst = match YesInstance::generate(Family::PathOuterplanar, 20, seed) {
            YesInstance::Pop(i) => WireInstance::Pop(i),
            _ => unreachable!(),
        };
        pdip_wire::Transcript::record(
            inst,
            PopParams::default(),
            Transport::Simulated,
            0,
            seed,
            seed ^ 1,
        )
        .encode()
    }

    #[test]
    fn batch_accepts_honest_and_flags_malformed() {
        let good = honest_blob(5);
        let mut bad = good.clone();
        bad.truncate(bad.len() / 2);
        let cfg = ServeConfig { threads: 2, queue_cap: 8, deadline: None, ..Default::default() };
        let (responses, stats) =
            process_batch(&cfg, vec![(0, good), (1, bad)], None, &NoopRecorder);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].status, Status::Accept);
        assert_eq!(responses[1].status, Status::Malformed);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.panics, 0);
    }

    #[test]
    fn gated_queue_rejects_overflow_busy() {
        let blob = honest_blob(6);
        let reqs: Vec<_> = (0..6u64).map(|i| (i, blob.clone())).collect();
        let gate = Gate::closed();
        let cfg = ServeConfig { threads: 2, queue_cap: 2, deadline: None, ..Default::default() };
        let (responses, stats) = process_batch(&cfg, reqs, Some(&gate), &NoopRecorder);
        assert_eq!(responses.len(), 6);
        assert_eq!(stats.busy, 4, "queue bound 2 must busy-reject 4 of 6");
        assert_eq!(stats.accepted, 2);
    }

    #[test]
    fn stream_roundtrip_with_ping_and_shutdown() {
        let good = honest_blob(7);
        let mut input = Vec::new();
        let mut verify_frame = vec![REQ_VERIFY];
        verify_frame.extend_from_slice(&good);
        write_frame(&mut input, &[REQ_PING]).unwrap();
        write_frame(&mut input, &verify_frame).unwrap();
        write_frame(&mut input, &[REQ_SHUTDOWN]).unwrap();
        let mut output = Vec::new();
        let cfg = ServeConfig { threads: 1, queue_cap: 4, deadline: None, ..Default::default() };
        let (stats, shutdown) =
            serve_stream(&cfg, &mut std::io::Cursor::new(input), &mut output, &NoopRecorder)
                .unwrap();
        assert!(shutdown);
        assert_eq!(stats.accepted, 1);
        let mut cur = std::io::Cursor::new(output);
        let mut responses = Vec::new();
        while let Some(f) = read_frame(&mut cur).unwrap() {
            responses.push(decode_response(&f).expect("response decodes"));
        }
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].status, Status::Pong);
        assert_eq!(responses[1].status, Status::Accept);
        assert_eq!(responses[2].status, Status::ShutdownAck);
        assert_eq!(responses.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn oversized_frame_is_io_error() {
        let mut input = Vec::new();
        input.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(input)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn zero_deadline_classifies_every_request() {
        let cfg = ServeConfig {
            threads: 2,
            queue_cap: 8,
            deadline: Some(Duration::from_nanos(0)),
            ..Default::default()
        };
        let (responses, stats) =
            process_batch(&cfg, vec![(0, honest_blob(9))], None, &NoopRecorder);
        assert_eq!(responses[0].status, Status::Deadline);
        assert!(responses[0].detail.contains("completed as accept"));
        assert_eq!(stats.deadline, 1);
    }

    #[test]
    fn responses_are_thread_count_invariant() {
        let reqs: Vec<_> = (0..6u64).map(|i| (i, honest_blob(20 + i % 2))).collect();
        let run = |threads| {
            let cfg = ServeConfig { threads, queue_cap: 16, deadline: None, ..Default::default() };
            process_batch(&cfg, reqs.clone(), None, &NoopRecorder).0
        };
        assert_eq!(run(1), run(4));
    }
}
