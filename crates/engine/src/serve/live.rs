//! The long-lived concurrent TCP front-end of `pdip serve`.
//!
//! # Connection lifecycle
//!
//! ```text
//! accept ──▶ reader thread ──▶ bounded queue ──▶ shared worker pool
//!               │  per-frame read deadline          │  verify deadline
//!               │  (idle-timeout / read-stall)      │  catch_unwind
//!               ▼                                   ▼
//!         ConnError + close              streamed response (per-conn
//!         (that connection only)         writer mutex keeps frames
//!                                        atomic; clients sort by seq)
//! ```
//!
//! One accept loop feeds per-connection reader threads into a **single
//! shared worker pool** — concurrency is bounded by
//! [`ServeConfig::threads`] workers and [`ServeConfig::queue_cap`]
//! queued requests no matter how many connections are open. Readers
//! submit with `try_send`: a full queue answers [`Status::Busy`]
//! immediately (backpressure, never blocking the socket).
//!
//! # Failure semantics
//!
//! * A **frame-level fault** (truncated frame, oversized length
//!   declaration, idle timeout, mid-frame stall, peer reset) tears down
//!   *only its own connection*: the reader answers a best-effort
//!   [`Status::ConnError`] frame carrying the stable
//!   [`fault_class`] string, counts the fault, and exits. No other
//!   connection observes anything.
//! * A **worker panic** poisons only its request: the worker answers
//!   [`Status::Malformed`] with a `panic:` detail and keeps serving.
//! * A **failed response write** (peer vanished mid-response) marks the
//!   connection dead and is counted in `io_errors`; the verdict of
//!   every other request is unaffected.
//!
//! # Graceful drain
//!
//! A [`REQ_SHUTDOWN`] frame (or [`ShutdownFlag::request`], which the
//! CLI wires to SIGTERM/SIGINT) stops the accept loop, read-shuts every
//! open socket (unblocking readers without dropping data already
//! queued), waits up to [`ServeConfig::drain_deadline`] for in-flight
//! requests to finish, and sends a final [`Status::Stats`] frame
//! (`seq = u64::MAX`) to the shutdown-requesting connection. Every
//! request accepted into the queue is completed and answered even if
//! the drain deadline expires — the deadline bounds only the wait for
//! the stats frame, which then reports `drained=timeout`.

use super::{
    encode_response, fault_class, read_frame_deadline, verify_guarded, write_frame, Response,
    ServeConfig, ServeObs, ServeStats, Status, REQ_PING, REQ_SHUTDOWN, REQ_STATS, REQ_VERIFY,
};
use crate::pool::PanicSilencer;
use crate::report::Reporter;
use pdip_obs::{counter, NoopRecorder, Recorder, ScopedRecorder, SpanId, TeeRecorder};
use std::io::Write;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex, Weak};
use std::thread;
use std::time::{Duration, Instant};

/// A cloneable shutdown request line: the CLI's signal handler, a
/// [`REQ_SHUTDOWN`] frame, and [`ServerHandle::stop`] all pull the same
/// flag, and the accept loop polls it.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, unrequested flag.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Requests shutdown (idempotent).
    pub fn request(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn requested(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Shared per-connection counters (folded into [`ServeStats`] at the
/// end of [`serve_concurrent`]).
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    malformed: AtomicU64,
    busy: AtomicU64,
    deadline: AtomicU64,
    panics: AtomicU64,
    conn_faults: AtomicU64,
    io_errors: AtomicU64,
    connections: AtomicU64,
    /// Requests accepted into the queue whose response has not been
    /// written yet — the drain loop waits for this to hit zero.
    inflight: AtomicU64,
    /// Current queue occupancy (gauge source, not part of the stats).
    queue_depth: AtomicU64,
}

impl Counters {
    fn bump(&self, status: Status) {
        match status {
            Status::Accept => &self.accepted,
            Status::Reject => &self.rejected,
            Status::Malformed => &self.malformed,
            Status::Busy => &self.busy,
            Status::Deadline => &self.deadline,
            Status::ShutdownAck | Status::Pong | Status::ConnError | Status::Stats => return,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn stats(&self) -> ServeStats {
        ServeStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
            busy: self.busy.load(Ordering::SeqCst),
            deadline: self.deadline.load(Ordering::SeqCst),
            panics: self.panics.load(Ordering::SeqCst),
            conn_faults: self.conn_faults.load(Ordering::SeqCst),
            io_errors: self.io_errors.load(Ordering::SeqCst),
            connections: self.connections.load(Ordering::SeqCst),
        }
    }
}

/// One accepted connection: an id for observability and the shared
/// write half. The mutex keeps response frames atomic when a worker and
/// the reader answer the same peer concurrently; `None` marks the
/// connection dead (a failed write never cascades).
struct Conn {
    id: u64,
    writer: Mutex<Option<TcpStream>>,
}

impl Conn {
    /// Writes one response frame (best-effort), timing it into the
    /// `serve/write` latency histogram. A failed write marks the
    /// connection dead and counts one `io_error`; it never affects any
    /// other connection or request.
    fn send(&self, r: &Response, counters: &Counters, rec: &dyn Recorder) {
        let Ok(mut guard) = self.writer.lock() else { return };
        let Some(stream) = guard.as_mut() else { return };
        let started = rec.enabled().then(Instant::now);
        let ok = write_frame(stream, &encode_response(r)).and_then(|()| stream.flush());
        if let Some(t0) = started {
            rec.duration("serve/write", u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if ok.is_err() {
            counters.io_errors.fetch_add(1, Ordering::Relaxed);
            counter(rec, self.id, SpanId::new("serve/io-error"), "io-error", 1);
            *guard = None;
        }
    }

    /// Shuts down the read half of the socket, waking a blocked reader
    /// thread with a clean EOF. Data already queued is unaffected.
    fn shutdown_read(&self) {
        if let Ok(guard) = self.writer.lock() {
            if let Some(stream) = guard.as_ref() {
                let _unused = stream.shutdown(Shutdown::Read);
            }
        }
    }
}

/// One queued verification request, tagged with its connection so the
/// worker can stream the response back directly.
struct ConnJob {
    conn: Arc<Conn>,
    seq: u64,
    blob: Vec<u8>,
    enqueued: Instant,
}

/// Runs the concurrent front-end on an already-bound listener until
/// `shutdown` is requested (by a [`REQ_SHUTDOWN`] frame, a signal
/// handler, or [`ServerHandle::stop`]), then drains gracefully.
/// Returns the aggregate stats over the server's whole lifetime.
pub fn serve_concurrent(
    cfg: &ServeConfig,
    listener: TcpListener,
    shutdown: &ShutdownFlag,
    rec: &dyn Recorder,
) -> std::io::Result<ServeStats> {
    let threads = cfg.threads.max(1);
    let _silencer = PanicSilencer::engage();
    // Live metrics are always on: use the caller's shared bridge or a
    // private one, and tee it next to the caller's trace recorder so
    // both observe the same instrumentation stream.
    let obs_arc = cfg.obs.clone().unwrap_or_default();
    let obs: &ServeObs = obs_arc.as_ref();
    let tee = TeeRecorder::new(rec, obs);
    let rec: &dyn Recorder = &tee;
    let counters = Counters::default();
    let (jobs_tx, jobs_rx) = sync_channel::<ConnJob>(cfg.queue_cap.max(1));
    let jobs_rx = Mutex::new(jobs_rx);
    // The connection that sent REQ_SHUTDOWN receives the final stats
    // frame after the drain.
    let stats_conn: Mutex<Option<Arc<Conn>>> = Mutex::new(None);
    let mut drained_ok = true;

    listener.set_nonblocking(true)?;

    thread::scope(|s| -> std::io::Result<()> {
        for _ in 0..threads {
            let jobs_rx = &jobs_rx;
            let counters = &counters;
            let cfg = &*cfg;
            s.spawn(move || loop {
                if let Some(g) = &cfg.hold {
                    g.wait_open();
                }
                let job = match jobs_rx.lock() {
                    Ok(rx) => rx.recv(),
                    Err(_) => break,
                };
                let Ok(job) = job else { break };
                counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                let job_rec = ScopedRecorder::new(rec, job.seq);
                if job_rec.enabled() {
                    let waited = job.enqueued.elapsed().as_nanos();
                    job_rec.duration("serve/queue-wait", u64::try_from(waited).unwrap_or(u64::MAX));
                }
                let (status, detail) = verify_guarded(
                    &job.blob,
                    cfg.panic_token,
                    cfg.deadline,
                    &job_rec,
                    &counters.panics,
                );
                counter(&job_rec, job.seq, SpanId::new("serve/request"), status.name(), 1);
                counters.bump(status);
                if status == Status::Malformed && detail.starts_with("panic: ") {
                    obs.note_panic(job.conn.id, job.seq, detail.clone());
                }
                job.conn.send(&Response { seq: job.seq, status, detail }, counters, &job_rec);
                let elapsed = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if elapsed > obs.slow_threshold_nanos() {
                    obs.note_slow(job.conn.id, job.seq, status.name(), elapsed);
                }
                // Decrement only after the response hit (or provably
                // missed) the socket, so the drain loop never races a
                // half-written response.
                counters.inflight.fetch_sub(1, Ordering::SeqCst);
            });
        }

        // Accept loop: non-blocking so the shutdown flag is polled even
        // while idle. Each connection gets its own reader thread; all
        // readers share `jobs_tx` clones. A fatal accept error falls
        // through to the drain (never an early return — workers blocked
        // on `recv` must see the queue disconnect before the scope
        // joins them).
        let mut conns: Vec<Weak<Conn>> = Vec::new();
        let mut accept_err = None;
        while !shutdown.requested() {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let id = counters.connections.fetch_add(1, Ordering::SeqCst);
                    let writer = match stream.try_clone() {
                        Ok(w) => w,
                        Err(_) => {
                            counters.io_errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                    };
                    let conn = Arc::new(Conn { id, writer: Mutex::new(Some(writer)) });
                    conns.push(Arc::downgrade(&conn));
                    obs.note_connection(id);
                    let jobs_tx = jobs_tx.clone();
                    let counters = &counters;
                    let stats_conn = &stats_conn;
                    let cfg = &*cfg;
                    s.spawn(move || {
                        read_connection(
                            cfg, stream, conn, jobs_tx, counters, stats_conn, shutdown, rec, obs,
                        )
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    accept_err = Some(e);
                    break;
                }
            }
        }

        // Drain: stop reading everywhere (clean EOF for blocked
        // readers), then wait for every accepted request's response.
        for weak in &conns {
            if let Some(conn) = weak.upgrade() {
                conn.shutdown_read();
            }
        }
        let drain_started = Instant::now();
        while counters.inflight.load(Ordering::SeqCst) > 0 {
            if drain_started.elapsed() > cfg.drain_deadline {
                drained_ok = false;
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        let snap = counters.stats();
        let detail = format!(
            "accept={} reject={} malformed={} busy={} deadline={} panics={} \
             conn_faults={} connections={} drained={}",
            snap.accepted,
            snap.rejected,
            snap.malformed,
            snap.busy,
            snap.deadline,
            snap.panics,
            snap.conn_faults,
            snap.connections,
            if drained_ok { "ok" } else { "timeout" }
        );
        obs.flight_event("drain", 0, 0, if drained_ok { "ok" } else { "timeout" }, detail.clone());
        let receiver = stats_conn.lock().ok().and_then(|mut g| g.take());
        if let Some(conn) = receiver {
            conn.send(&Response { seq: u64::MAX, status: Status::Stats, detail }, &counters, rec);
        }
        // Post-mortem capture: the drain is the SIGTERM/shutdown path,
        // so dump the flight ring (best-effort, no-op without a path).
        obs.dump_flight("drain");
        // Disconnect the queue: workers finish every still-queued job
        // (answering on whatever connections remain writable) and exit.
        // `thread::scope` joins them before we return, so a drain
        // timeout delays the stats frame but never loses a request.
        drop(jobs_tx);
        match accept_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })?;

    Ok(counters.stats())
}

/// The per-connection reader loop (one thread per accepted socket).
#[allow(clippy::too_many_arguments)]
fn read_connection(
    cfg: &ServeConfig,
    mut stream: TcpStream,
    conn: Arc<Conn>,
    jobs_tx: std::sync::mpsc::SyncSender<ConnJob>,
    counters: &Counters,
    stats_conn: &Mutex<Option<Arc<Conn>>>,
    shutdown: &ShutdownFlag,
    rec: &dyn Recorder,
    obs: &ServeObs,
) {
    // The socket timeout wakes blocked reads; the frame reader's own
    // total-elapsed check turns slow drips into `read-stall` faults.
    let _unused = stream.set_read_timeout(cfg.read_deadline);
    let mut seq = 0u64;
    loop {
        match read_frame_deadline(&mut stream, cfg.max_frame_bytes, cfg.read_deadline) {
            Ok(None) => {
                // Clean EOF (peer closed or drain read-shutdown).
                obs.flight_event("conn-close", conn.id, seq, "close", String::new());
                break;
            }
            Ok(Some(frame)) => {
                let this_seq = seq;
                seq += 1;
                match frame.first().copied() {
                    Some(REQ_VERIFY) => {
                        counters.inflight.fetch_add(1, Ordering::SeqCst);
                        let depth = counters.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
                        rec.gauge("serve/queue-depth", depth);
                        let job = ConnJob {
                            conn: Arc::clone(&conn),
                            seq: this_seq,
                            blob: frame[1..].to_vec(),
                            enqueued: Instant::now(),
                        };
                        match jobs_tx.try_send(job) {
                            Ok(()) => {}
                            Err(TrySendError::Full(job)) => {
                                counters.inflight.fetch_sub(1, Ordering::SeqCst);
                                counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                counters.busy.fetch_add(1, Ordering::Relaxed);
                                counter(rec, this_seq, SpanId::new("serve/request"), "busy", 1);
                                obs.flight_event(
                                    "busy",
                                    conn.id,
                                    this_seq,
                                    "busy",
                                    "queue full".into(),
                                );
                                job.conn.send(
                                    &Response {
                                        seq: this_seq,
                                        status: Status::Busy,
                                        detail: "queue full".into(),
                                    },
                                    counters,
                                    rec,
                                );
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                counters.inflight.fetch_sub(1, Ordering::SeqCst);
                                counters.queue_depth.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    Some(REQ_PING) => conn.send(
                        &Response { seq: this_seq, status: Status::Pong, detail: String::new() },
                        counters,
                        rec,
                    ),
                    Some(REQ_STATS) => {
                        let mode = frame.get(1).copied().unwrap_or(0);
                        conn.send(
                            &Response {
                                seq: this_seq,
                                status: Status::Stats,
                                detail: obs.render(mode),
                            },
                            counters,
                            rec,
                        );
                    }
                    Some(REQ_SHUTDOWN) => {
                        conn.send(
                            &Response {
                                seq: this_seq,
                                status: Status::ShutdownAck,
                                detail: String::new(),
                            },
                            counters,
                            rec,
                        );
                        if let Ok(mut slot) = stats_conn.lock() {
                            *slot = Some(Arc::clone(&conn));
                        }
                        obs.flight_event("shutdown", conn.id, this_seq, "shutdown", String::new());
                        shutdown.request();
                        break;
                    }
                    tag => {
                        counters.malformed.fetch_add(1, Ordering::Relaxed);
                        counter(rec, this_seq, SpanId::new("serve/request"), "malformed", 1);
                        conn.send(
                            &Response {
                                seq: this_seq,
                                status: Status::Malformed,
                                detail: format!("unknown request tag {tag:?}"),
                            },
                            counters,
                            rec,
                        );
                    }
                }
            }
            Err(e) => {
                if shutdown.requested() {
                    // The drain's read-shutdown can surface as an error
                    // mid-frame; that is not a peer fault.
                    break;
                }
                let class = fault_class(e.kind());
                counters.conn_faults.fetch_add(1, Ordering::Relaxed);
                counter(rec, conn.id, SpanId::new("serve/conn"), class, 1);
                obs.flight_event("conn-fault", conn.id, seq, class, e.to_string());
                // The fault response carries the seq the faulted frame
                // would have had.
                conn.send(
                    &Response { seq, status: Status::ConnError, detail: format!("{class}: {e}") },
                    counters,
                    rec,
                );
                break;
            }
        }
    }
}

/// Binds `127.0.0.1:port` (0 picks a free port), prints the bound
/// address through `reporter`, and runs [`serve_concurrent`] until
/// shutdown. This is the `pdip serve --port` entry point.
pub fn serve_tcp(
    cfg: &ServeConfig,
    port: u16,
    shutdown: &ShutdownFlag,
    reporter: &mut Reporter,
    rec: &dyn Recorder,
) -> std::io::Result<ServeStats> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    reporter.line(&format!("pdip serve: listening on {}", listener.local_addr()?));
    let stats = serve_concurrent(cfg, listener, shutdown, rec)?;
    reporter.line(&format!(
        "pdip serve: drained — accept={} reject={} malformed={} busy={} deadline={} \
         panics={} conn_faults={} io_errors={} connections={}",
        stats.accepted,
        stats.rejected,
        stats.malformed,
        stats.busy,
        stats.deadline,
        stats.panics,
        stats.conn_faults,
        stats.io_errors,
        stats.connections,
    ));
    Ok(stats)
}

/// A server running on its own OS thread, for tests and the chaos
/// harness. Bind is synchronous, so the port is usable immediately.
pub struct ServerHandle {
    port: u16,
    shutdown: ShutdownFlag,
    join: thread::JoinHandle<std::io::Result<ServeStats>>,
}

impl ServerHandle {
    /// The bound localhost port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A clone of the server's shutdown flag.
    pub fn shutdown_flag(&self) -> ShutdownFlag {
        self.shutdown.clone()
    }

    /// Requests shutdown and joins the server thread. An `Err` from the
    /// join means a panic escaped the server — the E13 audit treats
    /// that as an immediate failure.
    pub fn stop(self) -> std::io::Result<ServeStats> {
        self.shutdown.request();
        match self.join.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("server thread panicked")),
        }
    }
}

/// Spawns [`serve_concurrent`] on `127.0.0.1:0` in a background thread
/// and returns a handle holding the bound port and shutdown flag.
pub fn spawn_server(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let port = listener.local_addr()?.port();
    let shutdown = ShutdownFlag::new();
    let flag = shutdown.clone();
    let join = thread::spawn(move || serve_concurrent(&cfg, listener, &flag, &NoopRecorder));
    Ok(ServerHandle { port, shutdown, join })
}
