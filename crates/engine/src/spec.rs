//! Declarative sweep specifications and their expansion into jobs.

use crate::family::Family;
use crate::seed::{job_seed, labels, sub_seed};
use pdip_protocols::{PopParams, Transport};
use std::time::Duration;

/// A prover behaviour *requested* in a spec (may expand to several
/// concrete [`Prover`]s per family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProverSpec {
    /// The honest prover on yes-instances.
    Honest,
    /// One cheating strategy (index into the family's cheat list) on
    /// no-instances.
    Cheat(usize),
    /// Every cheating strategy the family implements.
    AllCheats,
    /// A fault-injection prover that panics inside the job — exists to
    /// exercise the pool's panic isolation; always quarantined.
    PanicInjection,
}

/// A concrete prover behaviour bound to one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Prover {
    /// Honest prover, yes-instance.
    Honest,
    /// Cheating strategy `usize`, no-instance.
    Cheat(usize),
    /// Deliberate panic (fault injection).
    PanicInjection,
}

impl Prover {
    /// Short machine-readable name ("honest", "cheat-3", "panic").
    pub fn tag(&self) -> String {
        match self {
            Prover::Honest => "honest".into(),
            Prover::Cheat(s) => format!("cheat-{s}"),
            Prover::PanicInjection => "panic".into(),
        }
    }
}

/// How job seeds are derived from the grid.
#[derive(Clone, Copy)]
pub enum SeedMode {
    /// SplitMix64 stream over `(base_seed, job_index)` — the default;
    /// collision-free across the whole grid.
    Stream,
    /// Explicit per-coordinate seeds, for reproducing the historical
    /// serial experiments (E1–E3) byte-for-byte: the function maps job
    /// coordinates to `(gen_seed, run_seed)`.
    Explicit(fn(&JobCoords) -> (u64, u64)),
}

impl std::fmt::Debug for SeedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedMode::Stream => f.write_str("Stream"),
            SeedMode::Explicit(_) => f.write_str("Explicit(..)"),
        }
    }
}

/// The grid coordinates of one job (without derived seeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCoords {
    /// Position in the expanded grid (row-major over
    /// families × sizes × provers × trials).
    pub index: u64,
    /// Graph family.
    pub family: Family,
    /// Requested instance size.
    pub n: usize,
    /// Concrete prover behaviour.
    pub prover: Prover,
    /// Trial number within the cell.
    pub trial: u64,
}

/// One fully-resolved unit of work.
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// Grid coordinates.
    pub coords: JobCoords,
    /// Seed for instance generation.
    pub gen_seed: u64,
    /// Seed for the protocol run.
    pub run_seed: u64,
}

/// A declarative sweep: families × sizes × provers × trials, plus the
/// protocol parameters shared by every job.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Families to sweep (in order).
    pub families: Vec<Family>,
    /// Instance sizes to sweep (in order).
    pub sizes: Vec<usize>,
    /// Requested prover behaviours (in order; `AllCheats` expands
    /// per family).
    pub provers: Vec<ProverSpec>,
    /// Trials per (family, size, prover) cell.
    pub trials: u64,
    /// Base seed of the job-seed stream.
    pub base_seed: u64,
    /// Seed-derivation mode.
    pub seeds: SeedMode,
    /// Protocol parameters.
    pub params: PopParams,
    /// Edge-label transport.
    pub transport: Transport,
    /// Panic retries per job before it is quarantined as a failure.
    pub max_retries: u32,
    /// Per-job watchdog: a completed job whose wall time exceeds this
    /// deadline is quarantined as [`crate::record::FailureKind::TimedOut`]
    /// instead of entering the record stream. Timeouts are never retried.
    /// `None` (the default) disables the watchdog.
    pub job_deadline: Option<Duration>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            families: crate::family::FAMILIES.to_vec(),
            sizes: vec![64, 256],
            provers: vec![ProverSpec::Honest],
            trials: 1,
            base_seed: 0,
            seeds: SeedMode::Stream,
            params: PopParams::default(),
            transport: Transport::Native,
            max_retries: 1,
            job_deadline: None,
        }
    }
}

impl SweepSpec {
    /// Expands the grid into concrete jobs, resolving `AllCheats` per
    /// family and deriving per-job seeds. Expansion order (and hence the
    /// index → coordinates map) is deterministic: row-major over
    /// families, sizes, provers, trials.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        let mut index = 0u64;
        for &family in &self.families {
            // Resolve the requested behaviours for this family.
            let mut provers: Vec<Prover> = Vec::new();
            for &p in &self.provers {
                match p {
                    ProverSpec::Honest => provers.push(Prover::Honest),
                    ProverSpec::Cheat(s) => provers.push(Prover::Cheat(s)),
                    ProverSpec::AllCheats => {
                        provers.extend((0..family.cheat_count()).map(Prover::Cheat))
                    }
                    ProverSpec::PanicInjection => provers.push(Prover::PanicInjection),
                }
            }
            for &n in &self.sizes {
                for &prover in &provers {
                    for trial in 0..self.trials {
                        let coords = JobCoords { index, family, n, prover, trial };
                        let (gen_seed, run_seed) = match self.seeds {
                            SeedMode::Stream => {
                                let s = job_seed(self.base_seed, index);
                                (sub_seed(s, labels::GEN), sub_seed(s, labels::RUN))
                            }
                            SeedMode::Explicit(f) => f(&coords),
                        };
                        jobs.push(JobSpec { coords, gen_seed, run_seed });
                        index += 1;
                    }
                }
            }
        }
        jobs
    }

    /// Number of jobs the spec expands to, without materializing them.
    pub fn job_count(&self) -> u64 {
        self.families
            .iter()
            .map(|f| {
                let per_family: u64 = self
                    .provers
                    .iter()
                    .map(|p| match p {
                        ProverSpec::AllCheats => f.cheat_count() as u64,
                        _ => 1,
                    })
                    .sum();
                per_family * self.sizes.len() as u64 * self.trials
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_row_major_and_indexed() {
        let spec = SweepSpec {
            families: vec![Family::PathOuterplanar, Family::SeriesParallel],
            sizes: vec![32, 64],
            provers: vec![ProverSpec::Honest],
            trials: 3,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        assert_eq!(jobs.len() as u64, spec.job_count());
        assert_eq!(jobs.len(), 2 * 2 * 3);
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.coords.index, i as u64);
        }
        assert_eq!(jobs[0].coords.family, Family::PathOuterplanar);
        assert_eq!(jobs[0].coords.n, 32);
        assert_eq!(jobs[11].coords.family, Family::SeriesParallel);
        assert_eq!(jobs[11].coords.n, 64);
        assert_eq!(jobs[11].coords.trial, 2);
    }

    #[test]
    fn all_cheats_expands_per_family() {
        let spec = SweepSpec {
            families: vec![Family::PathOuterplanar],
            sizes: vec![60],
            provers: vec![ProverSpec::AllCheats],
            trials: 2,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        let cheats = Family::PathOuterplanar.cheat_count();
        assert_eq!(jobs.len(), cheats * 2);
        assert!(jobs.iter().all(|j| matches!(j.coords.prover, Prover::Cheat(_))));
    }

    #[test]
    fn explicit_seed_mode_controls_seeds() {
        fn seeds(c: &JobCoords) -> (u64, u64) {
            (c.trial * 31 + c.n as u64, c.trial)
        }
        let spec = SweepSpec {
            families: vec![Family::PathOuterplanar],
            sizes: vec![60],
            provers: vec![ProverSpec::Honest],
            trials: 2,
            seeds: SeedMode::Explicit(seeds),
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        assert_eq!(jobs[1].gen_seed, 31 + 60);
        assert_eq!(jobs[1].run_seed, 1);
    }

    #[test]
    fn stream_seeds_are_unique_across_grid() {
        let spec = SweepSpec {
            provers: vec![ProverSpec::Honest, ProverSpec::AllCheats],
            trials: 4,
            ..SweepSpec::default()
        };
        let jobs = spec.expand();
        let mut seen = std::collections::HashSet::new();
        for j in &jobs {
            assert!(seen.insert(j.gen_seed), "gen seed collision");
            assert!(seen.insert(j.run_seed), "run seed collision");
        }
    }
}
