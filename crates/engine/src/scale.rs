//! E11 — multi-million-node scaling with bounded memory.
//!
//! For each grid size `n` the driver streams a block-structured planar
//! instance ([`StreamSkeleton`]) one biconnected block at a time and
//! verifies it shard-by-shard: every block is an independent
//! [`Planarity`] run, folded through the [`ShardCombiner`] in block
//! order. The full graph is *never* materialized on the scaling path —
//! live memory peaks at O(max shard + #blocks), which is what the
//! bounded-memory gate asserts.
//!
//! Per row the driver measures and audits:
//!
//! * **Proof size vs envelope.** The combined per-round maxima must sit
//!   inside the planarity `C·log2 n` ceiling of the E10 audit
//!   ([`envelope_bits`]); the O(log log n) slope is what the committed
//!   table exhibits.
//! * **Thread invariance.** The row is verified twice — one worker vs
//!   the spec's worker count — and the two outcomes must agree on a
//!   byte-level digest (verdict, rejections, kinds, stats).
//! * **Overlap audits** (small `n` only): the streamed shards must be
//!   byte-identical to [`StreamSkeleton::extract_shard`] of the
//!   materialized instance, the monolithic verifier must agree with the
//!   sharded verdict, and a [`ShardPlan`] over the materialized graph
//!   must be invariant to shard-group counts {1, 2, 4}.
//! * **Soundness probe** (medium `n`): the non-planar gadget stream must
//!   be rejected within a small seed budget.
//! * **Memory.** The resettable allocator peak ([`pdip_obs::reset_peak`])
//!   is read per row around the streaming verification only; the gate
//!   requires its growth to stay well below linear in `n`. The process
//!   `VmHWM` is reported for context (it is not resettable).
//!
//! Determinism: digests, verdicts and bit accounting depend only on the
//! spec — never on threads or timing. Wall times and memory readings are
//! machine data; they ride along in the report clearly separated and
//! take no part in digests.

use crate::family::Family;
use crate::record::SweepMetrics;
use crate::seed::{job_seed, sub_seed};
use crate::trace::{envelope_bits, envelope_slope};
use pdip_core::par::map_chunks_with;
use pdip_core::RunResult;
use pdip_graph::{Shard, StreamMode, StreamSkeleton, StreamSpec};
use pdip_protocols::lr_sorting::Transport;
use pdip_protocols::path_outerplanar::PopParams;
use pdip_protocols::planarity::{PlInstance, Planarity};
use pdip_protocols::sharded::{ShardCombiner, ShardPlan};
use std::time::Instant;

/// The committed-artifact seed (results/e11_scale.*).
pub const E11_SEED: u64 = 0xE11;

/// The E11 grid.
#[derive(Debug, Clone)]
pub struct ScaleSpec {
    /// Instance sizes (total nodes per row).
    pub sizes: Vec<usize>,
    /// Target nodes per shard (the memory bound's unit).
    pub shard_n: usize,
    /// Keep probability inside each planar block.
    pub keep: f64,
    /// Base seed; rows and shards derive labelled sub-streams.
    pub base_seed: u64,
    /// Worker threads for the parallel pass (results are identical for
    /// any value — asserted per row).
    pub threads: usize,
    /// Rows with `n` up to this run the materialize/monolithic overlap
    /// audits (quadratic-ish in memory, so small `n` only).
    pub overlap_max_n: usize,
    /// Rows with `n` up to this also run the non-planar soundness probe.
    pub nonplanar_max_n: usize,
}

impl ScaleSpec {
    /// The full grid behind the committed `results/e11_scale.*`:
    /// 10^4..10^7 nodes, 32k-node shards.
    pub fn full() -> Self {
        ScaleSpec {
            sizes: vec![10_000, 100_000, 1_000_000, 10_000_000],
            shard_n: 32_768,
            keep: 0.5,
            base_seed: E11_SEED,
            threads: 4,
            overlap_max_n: 100_000,
            nonplanar_max_n: 1_000_000,
        }
    }

    /// The CI smoke grid (`pdip scale --smoke`): small sizes, every
    /// audit still exercised.
    pub fn smoke() -> Self {
        ScaleSpec {
            sizes: vec![2_000, 8_000, 32_000],
            shard_n: 1_024,
            keep: 0.5,
            base_seed: E11_SEED,
            threads: 4,
            overlap_max_n: 8_000,
            nonplanar_max_n: 32_000,
        }
    }

    /// The stream spec of one row.
    pub fn stream_spec(&self, n: usize, mode: StreamMode) -> StreamSpec {
        StreamSpec {
            n,
            shard_n: self.shard_n,
            keep: self.keep,
            seed: sub_seed(self.base_seed, n as u64),
            mode,
        }
    }
}

/// Results of the small-`n` overlap audits.
#[derive(Debug, Clone, Copy)]
pub struct OverlapAudit {
    /// Streamed shards are byte-identical to extraction from the
    /// materialized instance.
    pub extract_identical: bool,
    /// The monolithic verifier agrees with the sharded verdict.
    pub monolithic_agrees: bool,
    /// `ShardPlan::run_grouped` is byte-identical at groups {1, 2, 4}.
    pub groups_invariant: bool,
}

impl OverlapAudit {
    /// All three audits passed.
    pub fn pass(&self) -> bool {
        self.extract_identical && self.monolithic_agrees && self.groups_invariant
    }
}

/// One row of the E11 table.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Requested total nodes.
    pub n: usize,
    /// Actual total nodes after stream clamps.
    pub actual_n: usize,
    /// Shards (biconnected blocks) streamed.
    pub shards: usize,
    /// Largest shard's node count (the memory bound's unit).
    pub max_shard_n: usize,
    /// Whether the honest sharded verification accepted.
    pub accepted: bool,
    /// Combined proof size (max label bits over nodes, rounds, blocks).
    pub proof_size_bits: usize,
    /// Combined verifier coin bits (sum over blocks).
    pub coin_bits: usize,
    /// The planarity `C·log2 n` ceiling for this `n`.
    pub envelope_bits: usize,
    /// FNV-1a digest of the deterministic outcome (verdict, rejections,
    /// kinds, stats) — the thread-invariance witness.
    pub digest: u64,
    /// The 1-worker and K-worker passes produced the same digest.
    pub thread_invariant: bool,
    /// Overlap audits (rows with `n <= overlap_max_n`).
    pub overlap: Option<OverlapAudit>,
    /// Non-planar probe verdict (rows with `n <= nonplanar_max_n`):
    /// `Some(true)` = rejected within the seed budget.
    pub nonplanar_rejected: Option<bool>,
    /// Wall time of the K-worker streaming pass, in ms. Machine data.
    pub wall_ms: u64,
    /// Allocator high-water of the K-worker streaming pass (resettable
    /// peak), or `None` without a tracking allocator. Machine data.
    pub alloc_peak_bytes: Option<u64>,
}

impl ScaleRow {
    /// The row's deterministic gates (memory is gated report-wide).
    pub fn pass(&self) -> bool {
        self.accepted
            && self.proof_size_bits <= self.envelope_bits
            && self.thread_invariant
            && self.overlap.is_none_or(|o| o.pass())
            && self.nonplanar_rejected != Some(false)
    }
}

/// The E11 report.
#[derive(Debug)]
pub struct ScaleReport {
    /// Audited sizes.
    pub sizes: Vec<usize>,
    /// Target shard size.
    pub shard_n: usize,
    /// Keep probability.
    pub keep: f64,
    /// Base seed.
    pub base_seed: u64,
    /// Worker threads of the parallel pass.
    pub threads: usize,
    /// Rows in size order.
    pub rows: Vec<ScaleRow>,
    /// Whether a tracking allocator was installed (the `pdip` binary
    /// installs one; plain test harnesses don't).
    pub rss_tracked: bool,
    /// The bounded-memory gate: allocator-peak growth across the grid
    /// stays at most 1/4 of the `n` growth (vacuous when untracked).
    pub rss_sublinear: bool,
    /// Process `VmHWM` at the end of the run. Machine data.
    pub peak_rss_bytes: Option<u64>,
    /// Every row gate and the memory gate passed.
    pub all_pass: bool,
}

/// FNV-1a over the deterministic outcome of a run: verdict, rejections
/// (global node ids + reason bytes), kinds, and the full size stats.
pub fn digest_result(res: &RunResult) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(res.accepted() as u64);
    eat(res.rejections.len() as u64);
    for ((v, reason), kind) in res.rejections.iter().zip(&res.kinds) {
        eat(*v as u64);
        eat(reason.len() as u64);
        for b in reason.as_bytes() {
            eat(*b as u64);
        }
        eat(*kind as u64);
    }
    eat(res.stats.rounds as u64);
    eat(res.stats.coin_bits as u64);
    for &b in &res.stats.per_round_max_bits {
        eat(b as u64);
    }
    for &b in &res.stats.per_round_total_bits {
        eat(b as u64);
    }
    h
}

/// Streams the skeleton's shards through the planarity verifier on
/// `workers` threads and combines in block order. The digest of the
/// result is worker-count-invariant: per-shard seeds are keyed by shard
/// index, chunks sit on the deterministic grid, and partial combiners
/// fold in chunk order.
pub fn verify_stream(skel: &StreamSkeleton, workers: usize, run_base: u64) -> RunResult {
    let k = skel.shard_count();
    let partials = map_chunks_with(workers, k, 1, |range| {
        let mut part = ShardCombiner::new();
        for i in range {
            let shard = skel.shard(i);
            let inst =
                PlInstance { graph: shard.graph, witness_rho: shard.rho, is_yes: shard.planar };
            let res = Planarity::new(&inst, PopParams::default(), Transport::Native)
                .run(None, job_seed(run_base, i as u64));
            part.absorb_block(|v| skel.to_global(i, v), res);
        }
        part
    });
    let mut combined = ShardCombiner::new();
    for p in partials {
        combined.absorb_partial(p);
    }
    combined.finish()
}

/// Byte-level shard equality (graph + witness presence and content).
fn shards_equal(a: &Shard, b: &Shard) -> bool {
    if a.index != b.index
        || a.planar != b.planar
        || a.graph.n() != b.graph.n()
        || a.graph.edges() != b.graph.edges()
    {
        return false;
    }
    match (&a.rho, &b.rho) {
        (None, None) => true,
        (Some(ra), Some(rb)) => (0..a.graph.n()).all(|v| ra.order_at(v) == rb.order_at(v)),
        _ => false,
    }
}

/// Runs the E11 grid.
pub fn run_scale(spec: &ScaleSpec) -> ScaleReport {
    let workers = spec.threads.max(1);
    let mut rows = Vec::with_capacity(spec.sizes.len());
    for &n in &spec.sizes {
        let skel = StreamSkeleton::new(spec.stream_spec(n, StreamMode::Planar));
        let row_seed = skel.spec.seed;
        let run_base = sub_seed(row_seed, crate::seed::labels::RUN);

        // The measured pass: K workers, allocator peak attributed to the
        // streaming verification only.
        pdip_obs::reset_peak();
        let start = Instant::now();
        let res = verify_stream(&skel, workers, run_base);
        let wall_ms = start.elapsed().as_millis() as u64;
        let alloc_peak_bytes =
            pdip_obs::alloc_installed().then(|| pdip_obs::alloc_peak_bytes() as u64);

        // Thread invariance: the serial pass must digest identically.
        let digest = digest_result(&res);
        let thread_invariant = digest == digest_result(&verify_stream(&skel, 1, run_base));

        let overlap = (skel.total_n <= spec.overlap_max_n).then(|| {
            let inst = skel.materialize();
            let extract_identical = (0..skel.shard_count())
                .all(|i| shards_equal(&skel.extract_shard(&inst, i), &skel.shard(i)));
            let mono_inst =
                PlInstance { graph: inst.graph, witness_rho: inst.rho, is_yes: inst.planar };
            let mono = Planarity::new(&mono_inst, PopParams::default(), Transport::Native)
                .run(None, sub_seed(row_seed, 0x40));
            let monolithic_agrees = mono.accepted() == res.accepted();
            let plan = ShardPlan::decompose(&mono_inst);
            let base =
                plan.run_grouped(1, 1, PopParams::default(), Transport::Native, None, row_seed);
            let base_digest = digest_result(&base);
            let groups_invariant = [2usize, 4].iter().all(|&groups| {
                let r = plan.run_grouped(
                    groups,
                    workers,
                    PopParams::default(),
                    Transport::Native,
                    None,
                    row_seed,
                );
                digest_result(&r) == base_digest
            });
            OverlapAudit { extract_identical, monolithic_agrees, groups_invariant }
        });

        // Soundness probe: the gadget stream must be rejected within a
        // small seed budget (per-seed detection is probabilistic).
        let nonplanar_rejected = (skel.total_n <= spec.nonplanar_max_n).then(|| {
            let bad = StreamSkeleton::new(
                spec.stream_spec(n, StreamMode::NonplanarGadget { use_k5: n % 2 == 0 }),
            );
            (0..3u64).any(|attempt| {
                let base = sub_seed(sub_seed(row_seed, 0x4E), attempt);
                !verify_stream(&bad, workers, base).accepted()
            })
        });

        let max_shard_n = skel.blocks.iter().map(|b| b.size).max().unwrap_or(0);
        rows.push(ScaleRow {
            n,
            actual_n: skel.total_n,
            shards: skel.shard_count(),
            max_shard_n,
            accepted: res.accepted(),
            proof_size_bits: res.stats.proof_size(),
            coin_bits: res.stats.coin_bits,
            envelope_bits: envelope_bits(Family::Planarity, skel.total_n),
            digest,
            thread_invariant,
            overlap,
            nonplanar_rejected,
            wall_ms,
            alloc_peak_bytes,
        });
    }

    let rss_tracked = pdip_obs::alloc_installed();
    // Bounded memory: between the smallest and largest row, allocator
    // peak may grow at most 1/4 as fast as n. (With a fixed shard size
    // the live set is O(shard + #blocks); the #blocks skeleton term and
    // per-shard result buffers grow slowly, hence "well below linear"
    // rather than "constant".)
    let rss_sublinear = match (rows.first(), rows.last()) {
        (Some(a), Some(b)) if rss_tracked && b.n > a.n => {
            match (a.alloc_peak_bytes, b.alloc_peak_bytes) {
                (Some(pa), Some(pb)) if pa > 0 => {
                    (pb as f64 / pa as f64) <= (b.n as f64 / a.n as f64) / 4.0
                }
                _ => false,
            }
        }
        _ => true,
    };
    let all_pass = rss_sublinear && rows.iter().all(ScaleRow::pass);
    ScaleReport {
        sizes: spec.sizes.clone(),
        shard_n: spec.shard_n,
        keep: spec.keep,
        base_seed: spec.base_seed,
        threads: workers,
        rows,
        rss_tracked,
        rss_sublinear,
        peak_rss_bytes: pdip_obs::peak_rss_bytes(),
        all_pass,
    }
}

/// A [`SweepMetrics`]-shaped summary of the scale run for the standard
/// `[engine]` line (jobs = shards verified on the measured pass).
pub fn scale_metrics(report: &ScaleReport, wall: std::time::Duration) -> SweepMetrics {
    let mut m = SweepMetrics {
        jobs: report.rows.iter().map(|r| r.shards as u64).sum(),
        failures: 0,
        quarantined: 0,
        timed_out: 0,
        retries: 0,
        threads: report.threads,
        wall,
        peak_rss_bytes: None,
        alloc_peak_bytes: None,
    };
    m.capture_memory();
    m
}

impl ScaleReport {
    /// The human-readable E11 table (results/e11_scale.txt). The wall
    /// and memory columns are machine data — everything else is
    /// deterministic in the spec.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# E11: streaming shard-by-block-cut-tree scaling\n");
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!(
            "# sizes=[{}] shard-n={} keep={} base-seed={:#x} threads={}\n",
            sizes.join(","),
            self.shard_n,
            self.keep,
            self.base_seed,
            self.threads
        ));
        out.push_str(&format!(
            "# all-pass={} rss-tracked={} rss-sublinear={} peak-rss-mib={}\n",
            self.all_pass,
            self.rss_tracked,
            self.rss_sublinear,
            match self.peak_rss_bytes {
                Some(b) => format!("{:.1}", b as f64 / (1024.0 * 1024.0)),
                None => "-".into(),
            }
        ));
        out.push_str(
            "# wall-ms and alloc-peak are machine data; digests and bits are deterministic\n\n",
        );
        out.push_str(&format!(
            "{:>9} {:>9} {:>7} {:>8}  {:>6} {:>9} {:>9}  {:>17} {:>7} {:>8} {:>9}  {:>8} {:>12}  {}\n",
            "n",
            "actual-n",
            "shards",
            "max-shard",
            "proof",
            "coins",
            "envelope",
            "digest",
            "1-vs-K",
            "overlap",
            "nonplanar",
            "wall-ms",
            "alloc-peak",
            "pass"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>9} {:>9} {:>7} {:>8}  {:>6} {:>9} {:>9}  {:>17} {:>7} {:>8} {:>9}  {:>8} {:>12}  {}\n",
                r.n,
                r.actual_n,
                r.shards,
                r.max_shard_n,
                r.proof_size_bits,
                r.coin_bits,
                r.envelope_bits,
                format!("{:016x}", r.digest),
                if r.thread_invariant { "ok" } else { "FAIL" },
                match r.overlap {
                    Some(o) if o.pass() => "ok",
                    Some(_) => "FAIL",
                    None => "-",
                },
                match r.nonplanar_rejected {
                    Some(true) => "reject",
                    Some(false) => "ACCEPT",
                    None => "-",
                },
                r.wall_ms,
                match r.alloc_peak_bytes {
                    Some(b) => format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0)),
                    None => "-".into(),
                },
                if r.pass() { "ok" } else { "FAIL" }
            ));
        }
        out
    }

    /// The machine-readable E11 report (results/e11_scale.json), hand
    /// rendered with stable key order. Machine data (wall, memory) is
    /// under explicitly named keys so deterministic consumers can skip
    /// it.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e11-scale\",\n");
        let sizes: Vec<String> = self.sizes.iter().map(|n| n.to_string()).collect();
        out.push_str(&format!("  \"sizes\": [{}],\n", sizes.join(", ")));
        out.push_str(&format!("  \"shard_n\": {},\n", self.shard_n));
        out.push_str(&format!("  \"keep\": {},\n", self.keep));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"envelope_slope\": {},\n", envelope_slope(Family::Planarity)));
        out.push_str(&format!("  \"all_pass\": {},\n", self.all_pass));
        out.push_str(&format!("  \"rss_tracked\": {},\n", self.rss_tracked));
        out.push_str(&format!("  \"rss_sublinear\": {},\n", self.rss_sublinear));
        out.push_str(&format!(
            "  \"peak_rss_bytes\": {},\n",
            self.peak_rss_bytes.map_or("null".into(), |b| b.to_string())
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let overlap = match r.overlap {
                Some(o) => format!(
                    "{{\"extract_identical\": {}, \"monolithic_agrees\": {}, \"groups_invariant\": {}}}",
                    o.extract_identical, o.monolithic_agrees, o.groups_invariant
                ),
                None => "null".into(),
            };
            out.push_str(&format!(
                "    {{\"n\": {}, \"actual_n\": {}, \"shards\": {}, \"max_shard_n\": {}, \
                 \"accepted\": {}, \"proof_size_bits\": {}, \"coin_bits\": {}, \
                 \"envelope_bits\": {}, \"digest\": \"{:016x}\", \"thread_invariant\": {}, \
                 \"overlap\": {}, \"nonplanar_rejected\": {}, \
                 \"wall_ms\": {}, \"alloc_peak_bytes\": {}, \"pass\": {}}}{}\n",
                r.n,
                r.actual_n,
                r.shards,
                r.max_shard_n,
                r.accepted,
                r.proof_size_bits,
                r.coin_bits,
                r.envelope_bits,
                r.digest,
                r.thread_invariant,
                overlap,
                r.nonplanar_rejected.map_or("null".into(), |b| b.to_string()),
                r.wall_ms,
                r.alloc_peak_bytes.map_or("null".into(), |b| b.to_string()),
                r.pass(),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScaleSpec {
        ScaleSpec {
            sizes: vec![200, 800],
            shard_n: 64,
            keep: 0.5,
            base_seed: E11_SEED,
            threads: 2,
            overlap_max_n: 800,
            nonplanar_max_n: 800,
        }
    }

    #[test]
    fn tiny_grid_passes_every_gate() {
        let report = run_scale(&tiny_spec());
        assert!(report.all_pass, "{}", report.render_text());
        assert_eq!(report.rows.len(), 2);
        for r in &report.rows {
            assert!(r.accepted);
            assert!(r.thread_invariant);
            assert!(r.overlap.expect("overlap audits run at tiny n").pass());
            assert_eq!(r.nonplanar_rejected, Some(true));
            assert!(r.shards > 1, "tiny grid must still shard (got {})", r.shards);
            assert!(r.proof_size_bits <= r.envelope_bits);
        }
        // Unit tests install no tracking allocator: memory is untracked
        // and the gate is vacuous.
        assert!(!report.rss_tracked);
        assert!(report.rss_sublinear);
    }

    #[test]
    fn digests_are_spec_deterministic() {
        let a = run_scale(&tiny_spec());
        let b = run_scale(&ScaleSpec { threads: 1, ..tiny_spec() });
        let da: Vec<u64> = a.rows.iter().map(|r| r.digest).collect();
        let db: Vec<u64> = b.rows.iter().map(|r| r.digest).collect();
        assert_eq!(da, db, "digest must not depend on the thread count");
    }

    #[test]
    fn renderers_cover_every_row() {
        let report = run_scale(&ScaleSpec {
            sizes: vec![150],
            overlap_max_n: 0,
            nonplanar_max_n: 0,
            ..tiny_spec()
        });
        let text = report.render_text();
        let json = report.render_json();
        assert!(text.contains("150"));
        assert!(json.contains("\"experiment\": \"e11-scale\""));
        assert!(json.contains("\"overlap\": null"));
        assert!(json.contains("\"nonplanar_rejected\": null"));
        assert!(json.contains(&format!("{:016x}", report.rows[0].digest)));
    }
}
