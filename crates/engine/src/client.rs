//! `pdip client` — a minimal framed-protocol client for the serve
//! front-end.
//!
//! The client connects once, streams one [`REQ_VERIFY`] frame per
//! transcript blob, and matches the streamed responses back by
//! sequence number (the concurrent server answers in completion
//! order). [`Status::Busy`] rejections are retried with bounded
//! exponential backoff whose jitter is **deterministic** — derived
//! from `(seed, attempt)` through the chaos [`Mutator`] stream, never
//! from wall clock or PID — so a scripted run is reproducible.
//!
//! Outcomes map onto distinct process exit codes (see
//! [`ClientOutcome::exit_code`]): an I/O failure is never conflated
//! with a verifier rejection, and exhausted busy-retries are their own
//! code so callers can distinguish "server overloaded" from "proof
//! rejected".

use crate::chaos::Mutator;
use crate::report::Reporter;
use crate::seed::sub_seed;
use crate::serve::{
    decode_response, read_frame, write_frame, Response, Status, REQ_SHUTDOWN, REQ_STATS, REQ_VERIFY,
};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// Server host.
    pub host: String,
    /// Server port.
    pub port: u16,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
    /// Extra rounds after the first submission for requests answered
    /// [`Status::Busy`].
    pub retries: u32,
    /// Base backoff delay (doubles each attempt).
    pub backoff_base_ms: u64,
    /// Ceiling of the exponential component.
    pub backoff_cap_ms: u64,
    /// Send [`REQ_SHUTDOWN`] after the last response and wait for the
    /// server's final stats frame.
    pub send_shutdown: bool,
}

impl Default for ClientOpts {
    fn default() -> Self {
        ClientOpts {
            host: "127.0.0.1".into(),
            port: 7117,
            seed: 0,
            retries: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            send_shutdown: false,
        }
    }
}

/// The deterministic backoff delay before retry round `attempt`
/// (1-based): `min(base · 2^(attempt-1), cap)` plus a jitter in
/// `[0, base)` drawn from the `(seed, attempt)` mutator stream.
pub fn backoff_delay_ms(seed: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let shift = u64::from(attempt.saturating_sub(1)).min(20);
    let exp = base_ms.saturating_mul(1u64 << shift).min(cap_ms);
    let jitter = Mutator::new(sub_seed(seed, u64::from(attempt))).next_u64() % base_ms.max(1);
    exp + jitter
}

/// What one [`run_client`] invocation observed.
#[derive(Debug, Default)]
pub struct ClientOutcome {
    /// Final response per submitted item, in submission order (busy
    /// responses that were later retried successfully are replaced by
    /// the retry's outcome).
    pub responses: Vec<(String, Response)>,
    /// Items still answered [`Status::Busy`] after every retry round.
    pub busy_exhausted: Vec<String>,
    /// A transport failure, if one aborted the run.
    pub io_error: Option<String>,
    /// Detail string of the server's final stats frame, when
    /// [`ClientOpts::send_shutdown`] was set and the frame arrived.
    pub shutdown_stats: Option<String>,
}

impl ClientOutcome {
    /// The process exit code: `6` transport failure, `5` busy-retries
    /// exhausted, `3` at least one reject/malformed verdict, `0` all
    /// accepted. Higher codes win when several apply.
    pub fn exit_code(&self) -> i32 {
        if self.io_error.is_some() {
            6
        } else if !self.busy_exhausted.is_empty() {
            5
        } else if self
            .responses
            .iter()
            .any(|(_, r)| matches!(r.status, Status::Reject | Status::Malformed))
        {
            3
        } else {
            0
        }
    }
}

/// Sends every `(name, blob)` item to the server as a [`REQ_VERIFY`]
/// frame, retrying busy rejections with deterministic backoff, and
/// reports one line per final verdict through `reporter`.
pub fn run_client(
    opts: &ClientOpts,
    items: &[(String, Vec<u8>)],
    reporter: &mut Reporter,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let mut stream = match TcpStream::connect((opts.host.as_str(), opts.port)) {
        Ok(s) => s,
        Err(e) => {
            outcome.io_error = Some(format!("connect {}:{}: {e}", opts.host, opts.port));
            return outcome;
        }
    };
    // A response should never take longer than a minute; a stuck read
    // is a transport failure, not a hang.
    let _unused = stream.set_read_timeout(Some(Duration::from_secs(60)));

    let mut finals: Vec<Option<Response>> = vec![None; items.len()];
    let mut pending: Vec<usize> = (0..items.len()).collect();
    let mut next_seq = 0u64;

    for attempt in 0..=opts.retries {
        if pending.is_empty() {
            break;
        }
        if attempt > 0 {
            let delay =
                backoff_delay_ms(opts.seed, attempt, opts.backoff_base_ms, opts.backoff_cap_ms);
            reporter.line(&format!(
                "pdip client: {} busy, retry {attempt}/{} after {delay}ms",
                pending.len(),
                opts.retries
            ));
            std::thread::sleep(Duration::from_millis(delay));
        }
        let mut seq_map: HashMap<u64, usize> = HashMap::new();
        for &idx in &pending {
            let mut frame = Vec::with_capacity(1 + items[idx].1.len());
            frame.push(REQ_VERIFY);
            frame.extend_from_slice(&items[idx].1);
            if let Err(e) = write_frame(&mut stream, &frame) {
                outcome.io_error = Some(format!("send: {e}"));
                return outcome;
            }
            seq_map.insert(next_seq, idx);
            next_seq += 1;
        }
        if let Err(e) = stream.flush() {
            outcome.io_error = Some(format!("send: {e}"));
            return outcome;
        }
        let mut still_busy = Vec::new();
        for _ in 0..pending.len() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(p)) => p,
                Ok(None) => {
                    outcome.io_error = Some("server closed the connection mid-batch".into());
                    return outcome;
                }
                Err(e) => {
                    outcome.io_error = Some(format!("recv: {e}"));
                    return outcome;
                }
            };
            let Some(resp) = decode_response(&payload) else {
                outcome.io_error = Some("undecodable response frame".into());
                return outcome;
            };
            let Some(&idx) = seq_map.get(&resp.seq) else {
                outcome.io_error = Some(format!("response for unknown seq {}", resp.seq));
                return outcome;
            };
            if resp.status == Status::Busy {
                still_busy.push(idx);
            }
            finals[idx] = Some(resp);
        }
        still_busy.sort_unstable();
        pending = still_busy;
    }

    for (idx, (name, _)) in items.iter().enumerate() {
        let resp = finals[idx].take().unwrap_or(Response {
            seq: idx as u64,
            status: Status::Busy,
            detail: "never submitted".into(),
        });
        let detail = if resp.detail.is_empty() { "-" } else { resp.detail.as_str() };
        reporter.line(&format!("{name}: {} {detail}", resp.status.name()));
        if resp.status == Status::Busy {
            outcome.busy_exhausted.push(name.clone());
        }
        outcome.responses.push((name.clone(), resp));
    }

    if opts.send_shutdown {
        if let Err(e) = write_frame(&mut stream, &[REQ_SHUTDOWN]).and_then(|()| stream.flush()) {
            outcome.io_error = Some(format!("shutdown: {e}"));
            return outcome;
        }
        // ShutdownAck arrives first; the final stats frame follows once
        // the server has drained.
        loop {
            match read_frame(&mut stream) {
                Ok(Some(p)) => match decode_response(&p) {
                    Some(r) if r.status == Status::Stats => {
                        reporter.line(&format!("pdip client: server stats: {}", r.detail));
                        outcome.shutdown_stats = Some(r.detail);
                        break;
                    }
                    Some(_) => {}
                    None => {
                        outcome.io_error = Some("undecodable response frame".into());
                        break;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    outcome.io_error = Some(format!("recv stats: {e}"));
                    break;
                }
            }
        }
    }
    outcome
}

/// Re-encodes the server's `k=v`-pair stats detail (the final frame
/// after a drain) as a single JSON object. Purely numeric values stay
/// unquoted; everything else is emitted as a JSON string.
pub fn stats_detail_to_json(detail: &str) -> String {
    let mut out = String::from("{");
    for (i, pair) in detail.split_whitespace().enumerate() {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if i > 0 {
            out.push_str(", ");
        }
        out.push('"');
        out.push_str(&escape_json(key));
        out.push_str("\": ");
        if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) {
            out.push_str(value);
        } else {
            out.push('"');
            out.push_str(&escape_json(value));
            out.push('"');
        }
    }
    out.push('}');
    out
}

fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Connects to a running server, sends one [`REQ_STATS`] frame with
/// the given render mode (0 = Prometheus text, 1 = JSON snapshot,
/// 2 = flight-recorder JSONL), and returns the stats payload.
pub fn fetch_stats(host: &str, port: u16, mode: u8) -> Result<String, String> {
    let mut stream =
        TcpStream::connect((host, port)).map_err(|e| format!("connect {host}:{port}: {e}"))?;
    let _unused = stream.set_read_timeout(Some(Duration::from_secs(30)));
    write_frame(&mut stream, &[REQ_STATS, mode])
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send: {e}"))?;
    let payload = match read_frame(&mut stream) {
        Ok(Some(p)) => p,
        Ok(None) => return Err("server closed the connection before answering".into()),
        Err(e) => return Err(format!("recv: {e}")),
    };
    let resp = decode_response(&payload).ok_or_else(|| "undecodable response frame".to_string())?;
    if resp.status != Status::Stats {
        return Err(format!("unexpected response status {}", resp.status.name()));
    }
    Ok(resp.detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        for attempt in 1..=8u32 {
            let a = backoff_delay_ms(42, attempt, 10, 200);
            let b = backoff_delay_ms(42, attempt, 10, 200);
            assert_eq!(a, b, "same (seed, attempt) must give the same delay");
            assert!(a < 200 + 10, "delay {a} exceeds cap+jitter at attempt {attempt}");
        }
        // Different attempts draw different jitter streams.
        let delays: Vec<u64> = (1..=6).map(|k| backoff_delay_ms(7, k, 10, 100_000)).collect();
        assert!(delays.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn backoff_grows_exponentially_until_cap() {
        // Jitter < base, so the exponential component dominates.
        let base = 100;
        let d1 = backoff_delay_ms(1, 1, base, 100_000);
        let d4 = backoff_delay_ms(1, 4, base, 100_000);
        assert!(d4 > d1 * 4, "attempt 4 ({d4}ms) should dwarf attempt 1 ({d1}ms)");
        let capped = backoff_delay_ms(1, 30, base, 500);
        assert!(capped < 500 + base, "cap must bound the exponential component");
    }

    #[test]
    fn stats_detail_round_trips_to_json() {
        let detail = "accept=5 reject=2 malformed=0 drained=ok";
        assert_eq!(
            stats_detail_to_json(detail),
            "{\"accept\": 5, \"reject\": 2, \"malformed\": 0, \"drained\": \"ok\"}"
        );
        assert_eq!(stats_detail_to_json(""), "{}");
        // Quotes in a value must not break the JSON framing.
        assert_eq!(stats_detail_to_json("note=a\"b"), "{\"note\": \"a\\\"b\"}");
    }

    #[test]
    fn exit_code_precedence() {
        let accept = Response { seq: 0, status: Status::Accept, detail: String::new() };
        let reject = Response { seq: 1, status: Status::Reject, detail: "no".into() };
        let mut o = ClientOutcome::default();
        o.responses.push(("a".into(), accept));
        assert_eq!(o.exit_code(), 0);
        o.responses.push(("b".into(), reject));
        assert_eq!(o.exit_code(), 3);
        o.busy_exhausted.push("c".into());
        assert_eq!(o.exit_code(), 5);
        o.io_error = Some("boom".into());
        assert_eq!(o.exit_code(), 6);
    }
}
