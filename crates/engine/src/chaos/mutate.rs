//! The seed-driven mutation source.
//!
//! Every corruption a chaos target applies is derived from a [`Mutator`]:
//! a counter-mode SplitMix64 stream over the job's mutation seed. Targets
//! draw victims, bit positions and replacement values from it, so the
//! *same* `(target, kind, seed)` triple always produces the same corrupted
//! state — the whole chaos grid is replayable from its base seed.

use crate::seed::sub_seed;

/// A deterministic stream of mutation choices.
#[derive(Debug, Clone)]
pub struct Mutator {
    seed: u64,
    counter: u64,
}

impl Mutator {
    /// A mutator over the SplitMix64 stream keyed by `seed`.
    pub fn new(seed: u64) -> Mutator {
        Mutator { seed, counter: 0 }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.counter += 1;
        sub_seed(self.seed, self.counter)
    }

    /// A uniform-ish index into `0..len` (`len > 0`; modulo bias is
    /// irrelevant for victim selection).
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "Mutator::index on empty range");
        (self.next_u64() % len.max(1) as u64) as usize
    }

    /// A fair-ish coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Two *distinct* indices into `0..len` (`len >= 2`).
    pub fn pair(&mut self, len: usize) -> (usize, usize) {
        debug_assert!(len >= 2, "Mutator::pair needs two elements");
        let i = self.index(len);
        let j = (i + 1 + self.index(len - 1)) % len;
        (i, j)
    }

    /// A single-bit mask below `width` bits (`width >= 1`).
    pub fn bit(&mut self, width: usize) -> u64 {
        1u64 << (self.next_u64() % width.clamp(1, 63) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_moves() {
        let mut a = Mutator::new(7);
        let mut b = Mutator::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.iter().collect::<std::collections::HashSet<_>>().len(), 8);
    }

    #[test]
    fn pair_is_distinct() {
        let mut m = Mutator::new(3);
        for len in [2usize, 3, 7, 100] {
            for _ in 0..50 {
                let (i, j) = m.pair(len);
                assert_ne!(i, j);
                assert!(i < len && j < len);
            }
        }
    }

    #[test]
    fn bit_stays_in_width() {
        let mut m = Mutator::new(11);
        for _ in 0..100 {
            assert!(m.bit(5) < 32);
            assert_eq!(m.bit(1), 1);
        }
    }
}
