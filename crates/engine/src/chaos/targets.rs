//! The corruptible protocol surfaces of the chaos harness.
//!
//! One [`Tamperable`] implementation per protocol layer: the Lemma 2.3
//! forest code, the Lemma 2.5 spanning-tree verification, the Lemma 2.6
//! multiset equality, the §3–5 LR-sorting core, and the six Theorem
//! 1.2–1.7 derived protocols. Each target owns a deterministic
//! seed-generated instance and knows how to apply every supported
//! [`MutatorKind`] to *its* transcript or committed witness:
//!
//! * **primitives** (forest code, spanning tree, multiset equality,
//!   LR-sorting) tamper with the message vectors of one honest run and
//!   re-run the node checks;
//! * **witness protocols** (path-outerplanarity, planarity) tamper with
//!   the committed witness (Hamiltonian path / rotation system) and run
//!   the full honest protocol against it;
//! * **family protocols** (outerplanarity, embedded planarity,
//!   series-parallel, treewidth ≤ 2) tamper with the *instance itself* —
//!   a chord or a rewired edge pushes the graph out of the hereditary
//!   family — and run the strongest generic cheat, auditing the
//!   soundness bound end to end.
//!
//! Every target must resolve each run into detected / miss / unchanged
//! without panicking; the harness treats a panic as a failed audit.

use super::{Determinism, Mutator, MutatorKind, TamperOutcome, Tamperable};
use crate::family::{Family, YesInstance};
use crate::seed::sub_seed;
use pdip_core::{bits_for_domain, DipProtocol, Rejections};
use pdip_field::{smallest_prime_above, Fp};
use pdip_graph::gen;
use pdip_graph::gen::lr::LrInstance;
use pdip_graph::{
    is_hamiltonian_path, is_outerplanar, is_series_parallel, is_treewidth_at_most_2, Graph,
    RootedForest, RotationSystem,
};
use pdip_protocols::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The ten corruptible surfaces, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TargetId {
    /// Lemma 2.3 forest code (decode-level corruption).
    ForestCode,
    /// Lemma 2.5 spanning-tree verification.
    SpanningTree,
    /// Lemma 2.6 multiset equality.
    MultisetEq,
    /// The 5-round LR-sorting core (§3–5).
    LrSorting,
    /// Theorem 1.2 (committed Hamiltonian path corruption).
    PathOuterplanar,
    /// Theorem 1.3 (instance pushed out of the family).
    Outerplanar,
    /// Theorem 1.4 (rotation-system corruption).
    EmbeddedPlanarity,
    /// Theorem 1.5 (witness rotation-system corruption).
    Planarity,
    /// Theorem 1.6 (instance pushed out of the family).
    SeriesParallel,
    /// Theorem 1.7 (instance pushed out of the family).
    Treewidth2,
}

/// All targets in report order.
pub const TARGETS: [TargetId; 10] = [
    TargetId::ForestCode,
    TargetId::SpanningTree,
    TargetId::MultisetEq,
    TargetId::LrSorting,
    TargetId::PathOuterplanar,
    TargetId::Outerplanar,
    TargetId::EmbeddedPlanarity,
    TargetId::Planarity,
    TargetId::SeriesParallel,
    TargetId::Treewidth2,
];

impl TargetId {
    /// Machine-readable name (stable: part of the E9 schema).
    pub fn name(&self) -> &'static str {
        match self {
            TargetId::ForestCode => "forest-code",
            TargetId::SpanningTree => "spanning-tree",
            TargetId::MultisetEq => "multiset-eq",
            TargetId::LrSorting => "lr-sorting",
            TargetId::PathOuterplanar => "path-outerplanarity",
            TargetId::Outerplanar => "outerplanarity",
            TargetId::EmbeddedPlanarity => "embedded-planarity",
            TargetId::Planarity => "planarity",
            TargetId::SeriesParallel => "series-parallel",
            TargetId::Treewidth2 => "treewidth-2",
        }
    }

    /// Inverse of [`TargetId::name`].
    pub fn from_name(s: &str) -> Option<TargetId> {
        TARGETS.iter().copied().find(|t| t.name() == s)
    }

    /// Whether `kind` is meaningful for this target's label structure.
    ///
    /// Static so the harness can lay out the grid without building
    /// instances. Unsupported combinations are structural, not lazy:
    /// e.g. hereditary families (outerplanar, series-parallel, tw ≤ 2)
    /// cannot be corrupted by truncation — deleting edges keeps the
    /// graph in the family — and a rotation system has no coins.
    pub fn supports(&self, kind: MutatorKind) -> bool {
        use MutatorKind::*;
        match self {
            // The forest code has no verifier coins to go stale.
            TargetId::ForestCode => !matches!(kind, StaleCoins),
            TargetId::SpanningTree => true,
            // The Lemma 2.6 aggregation tree has no root flags to flip.
            TargetId::MultisetEq | TargetId::LrSorting => !matches!(kind, ReRoot),
            // The committed path is prover-side data; its coins live in
            // the sub-protocols exercised by the primitive targets.
            TargetId::PathOuterplanar => !matches!(kind, StaleCoins),
            // Instance/embedding corruption only: a chord ("bit flip" on
            // the adjacency matrix) or a swap (rewired edge / transposed
            // rotation positions).
            TargetId::Outerplanar
            | TargetId::EmbeddedPlanarity
            | TargetId::Planarity
            | TargetId::SeriesParallel
            | TargetId::Treewidth2 => matches!(kind, BitFlip | LabelSwap),
        }
    }

    /// The calibrated detection class of `kind` on this target.
    ///
    /// `Deterministic` means a structural or value check catches the
    /// corruption on *every* coin sequence (audit threshold 1.0);
    /// `Probabilistic` means detection holds up to the protocol's
    /// soundness error ε (audit threshold 1 − ε).
    pub fn determinism(&self, kind: MutatorKind) -> Determinism {
        use Determinism::*;
        match (self, kind) {
            // Stale coins survive iff the stale prime window draw
            // collides with the fresh one (≈ 1/|primes| per repetition).
            (TargetId::SpanningTree, MutatorKind::StaleCoins) => Probabilistic,
            // Algebraic corruptions of the LR transcript are caught by
            // field-equation checks — up to coincidences mod p.
            (
                TargetId::LrSorting,
                MutatorKind::BitFlip
                | MutatorKind::LabelSwap
                | MutatorKind::StaleCoins
                | MutatorKind::DepthOffByOne,
            ) => Probabilistic,
            // A truncated committed path leaves extra flagged roots;
            // Lemma 2.5 catches them unless every extra root samples the
            // prover's prime.
            (TargetId::PathOuterplanar, MutatorKind::Truncate) => Probabilistic,
            // Full-protocol soundness on a corrupted instance/embedding
            // is exactly the theorems' 1 − ε guarantee.
            (
                TargetId::Outerplanar
                | TargetId::EmbeddedPlanarity
                | TargetId::Planarity
                | TargetId::SeriesParallel
                | TargetId::Treewidth2,
                _,
            ) => Probabilistic,
            _ => Deterministic,
        }
    }
}

/// Builds the target's seed-deterministic instance. `n` is the nominal
/// instance size; `gen_seed` drives all generator randomness.
pub fn build_target(id: TargetId, n: usize, gen_seed: u64) -> Box<dyn Tamperable> {
    match id {
        TargetId::ForestCode => Box::new(ForestCodeTarget::new(n, gen_seed)),
        TargetId::SpanningTree => Box::new(SpanningTreeTarget::new(n, gen_seed)),
        TargetId::MultisetEq => Box::new(MultisetEqTarget::new(n, gen_seed)),
        TargetId::LrSorting => Box::new(LrSortingTarget::new(n, gen_seed)),
        TargetId::PathOuterplanar
        | TargetId::Outerplanar
        | TargetId::EmbeddedPlanarity
        | TargetId::Planarity
        | TargetId::SeriesParallel
        | TargetId::Treewidth2 => Box::new(DerivedTarget::new(id, n, gen_seed)),
    }
}

/// Splits a job seed into the (mutation, verifier-run, auxiliary)
/// sub-streams every target uses.
fn streams(seed: u64) -> (Mutator, u64, u64) {
    (Mutator::new(sub_seed(seed, 1)), sub_seed(seed, 2), sub_seed(seed, 3))
}

/// Classifies a full protocol run of a corrupted instance/witness.
fn classify(res: pdip_core::RunResult) -> TamperOutcome {
    if res.accepted() {
        TamperOutcome::Miss
    } else {
        TamperOutcome::Detected { malformed: res.caught_malformed() }
    }
}

// ---------------------------------------------------------------------
// Lemma 2.3: forest code
// ---------------------------------------------------------------------

/// Corrupts the per-node forest-code labels and re-decodes.
struct ForestCodeTarget {
    graph: Graph,
    forest: RootedForest,
    code: ForestCode,
}

impl ForestCodeTarget {
    fn new(n: usize, gen_seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let inst = gen::planar::random_planar(n.max(4), 0.6, &mut rng);
        let forest = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let code = ForestCode::encode(&inst.graph, &forest);
        ForestCodeTarget { graph: inst.graph, forest, code }
    }

    /// A node whose decode (parent pointer or root flag) no longer
    /// matches the committed forest — the protocol-level detection
    /// criterion (path-outerplanarity checks exactly these decodes).
    fn decode_differs(&self, labels: &[ForestCodeLabel]) -> bool {
        (0..self.graph.n()).any(|v| {
            decode_parent(&self.graph, labels, v) != self.forest.parent(v)
                || labels[v].root != self.forest.parent(v).is_none()
        })
    }
}

impl Tamperable for ForestCodeTarget {
    fn target_name(&self) -> &'static str {
        TargetId::ForestCode.name()
    }

    fn supports(&self, kind: MutatorKind) -> bool {
        TargetId::ForestCode.supports(kind)
    }

    fn determinism(&self, kind: MutatorKind) -> Determinism {
        TargetId::ForestCode.determinism(kind)
    }

    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome {
        let (mut m, _, _) = streams(seed);
        let n = self.graph.n();
        let mut labels = self.code.labels.clone();
        match kind {
            MutatorKind::BitFlip => {
                let v = m.index(n);
                let bit = m.bit(bits_for_domain(self.code.colors).max(1)) as u32;
                if m.coin() {
                    labels[v].c1 ^= bit;
                } else {
                    labels[v].c2 ^= bit;
                }
            }
            MutatorKind::LabelSwap => {
                let (i, j) = m.pair(n);
                labels.swap(i, j);
            }
            MutatorKind::Truncate => {
                labels.truncate(m.index(n));
            }
            MutatorKind::ReRoot => {
                let v = m.index(n);
                labels[v].root = !labels[v].root;
            }
            MutatorKind::OutOfRange => {
                let v = m.index(n);
                labels[v].c1 = self.code.colors as u32 + 1 + (m.next_u64() % 5) as u32;
            }
            MutatorKind::DepthOffByOne => {
                let v = m.index(n);
                labels[v].odd = !labels[v].odd;
            }
            MutatorKind::StaleCoins => return TamperOutcome::Unchanged,
        }
        if labels == self.code.labels {
            return TamperOutcome::Unchanged;
        }
        if labels.len() != n {
            // The arity check every consumer performs before decoding.
            return TamperOutcome::Detected { malformed: true };
        }
        if self.decode_differs(&labels) {
            TamperOutcome::Detected { malformed: true }
        } else {
            // The encoding is not injective: a label change that decodes
            // to the identical forest is a semantic no-op, not a miss.
            TamperOutcome::Unchanged
        }
    }
}

// ---------------------------------------------------------------------
// Lemma 2.5: spanning-tree verification
// ---------------------------------------------------------------------

/// Corrupts one honest spanning-tree transcript and re-checks all nodes.
struct SpanningTreeTarget {
    graph: Graph,
    forest: RootedForest,
    st: SpanningTreeVerification,
}

impl SpanningTreeTarget {
    fn new(n: usize, gen_seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let inst = gen::planar::random_planar(n.max(4), 0.6, &mut rng);
        let forest = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let st = SpanningTreeVerification::new(StParams::for_n(inst.graph.n(), 3, 1));
        SpanningTreeTarget { graph: inst.graph, forest, st }
    }
}

impl Tamperable for SpanningTreeTarget {
    fn target_name(&self) -> &'static str {
        TargetId::SpanningTree.name()
    }

    fn supports(&self, kind: MutatorKind) -> bool {
        TargetId::SpanningTree.supports(kind)
    }

    fn determinism(&self, kind: MutatorKind) -> Determinism {
        TargetId::SpanningTree.determinism(kind)
    }

    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome {
        let (mut m, run_seed, aux_seed) = streams(seed);
        let n = self.graph.n();
        let mut rng = SmallRng::seed_from_u64(run_seed);
        let coins = self.st.draw_coins(n, &mut rng);
        let mut msgs = self.st.honest_response(&self.forest, &coins);
        let mut roots: Vec<bool> = (0..n).map(|v| self.forest.parent(v).is_none()).collect();
        match kind {
            MutatorKind::BitFlip => {
                let v = m.index(n);
                let width =
                    bits_for_domain(2 * self.st.primes().last().copied().unwrap_or(2) as usize);
                msgs[v].depth_mod_p[0] ^= m.bit(width.max(1));
            }
            MutatorKind::LabelSwap => {
                let (i, j) = m.pair(n);
                if msgs[i] == msgs[j] {
                    return TamperOutcome::Unchanged;
                }
                msgs.swap(i, j);
            }
            MutatorKind::Truncate => {
                let k = m.index(n);
                msgs.truncate(k);
            }
            MutatorKind::StaleCoins => {
                let mut stale_rng = SmallRng::seed_from_u64(aux_seed);
                let stale = self.st.draw_coins(n, &mut stale_rng);
                if stale == coins {
                    return TamperOutcome::Unchanged;
                }
                msgs = self.st.honest_response(&self.forest, &stale);
            }
            MutatorKind::ReRoot => {
                let v = m.index(n);
                roots[v] = !roots[v];
            }
            MutatorKind::OutOfRange => {
                let v = m.index(n);
                msgs[v].prime_indices[0] = self.st.primes().len() + 1 + m.index(7);
            }
            MutatorKind::DepthOffByOne => {
                let v = m.index(n);
                let p = self.st.primes()[msgs[v].prime_indices[0]];
                msgs[v].depth_mod_p[0] = (msgs[v].depth_mod_p[0] + 1) % p;
            }
        }
        let mut rej = Rejections::new();
        for (v, &is_root) in roots.iter().enumerate() {
            let claimed_parent = if is_root { None } else { self.forest.parent(v) };
            self.st.check(&self.graph, v, claimed_parent, is_root, &coins, &msgs, &mut rej);
        }
        if rej.any() {
            TamperOutcome::Detected { malformed: rej.any_malformed() }
        } else {
            TamperOutcome::Miss
        }
    }
}

// ---------------------------------------------------------------------
// Lemma 2.6: multiset equality
// ---------------------------------------------------------------------

/// Corrupts one honest multiset-equality transcript on a path-shaped
/// aggregation tree with two equal global multisets.
struct MultisetEqTarget {
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    s1: Vec<Vec<u64>>,
    s2: Vec<Vec<u64>>,
    ms: MultisetEq,
}

impl MultisetEqTarget {
    fn new(n: usize, gen_seed: u64) -> Self {
        let k = n.max(4);
        let field = Fp::new(smallest_prime_above(1 << 16));
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        let mut children = vec![Vec::new(); k];
        for i in 1..k {
            children[i - 1].push(i);
        }
        // Equal global multisets, differently distributed: S2 is S1
        // rotated by one element across the nodes.
        let pool: Vec<u64> = (0..2 * k).map(|_| rng.gen_range(0..field.modulus())).collect();
        let s1: Vec<Vec<u64>> = pool.chunks(2).map(|c| c.to_vec()).collect();
        let mut rot = pool.clone();
        rot.rotate_left(1);
        let s2: Vec<Vec<u64>> = rot.chunks(2).map(|c| c.to_vec()).collect();
        MultisetEqTarget { parent, children, s1, s2, ms: MultisetEq::new(field) }
    }
}

impl Tamperable for MultisetEqTarget {
    fn target_name(&self) -> &'static str {
        TargetId::MultisetEq.name()
    }

    fn supports(&self, kind: MutatorKind) -> bool {
        TargetId::MultisetEq.supports(kind)
    }

    fn determinism(&self, kind: MutatorKind) -> Determinism {
        TargetId::MultisetEq.determinism(kind)
    }

    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome {
        let (mut m, run_seed, _) = streams(seed);
        let k = self.parent.len();
        let f = self.ms.field();
        let mut rng = SmallRng::seed_from_u64(run_seed);
        let z = rng.gen_range(0..f.modulus());
        let mut msgs = self.ms.honest_response(&self.parent, |i| &self.s1[i], |i| &self.s2[i], z);
        match kind {
            MutatorKind::BitFlip => {
                let v = m.index(k);
                let bit = m.bit(f.element_bits().max(1));
                if m.coin() {
                    msgs[v].a1 ^= bit;
                } else {
                    msgs[v].a2 ^= bit;
                }
            }
            MutatorKind::LabelSwap => {
                let (i, j) = m.pair(k);
                if msgs[i] == msgs[j] {
                    return TamperOutcome::Unchanged;
                }
                msgs.swap(i, j);
            }
            MutatorKind::Truncate => {
                msgs.truncate(m.index(k));
            }
            MutatorKind::StaleCoins => {
                let z2 = rng.gen_range(0..f.modulus());
                if z2 == z {
                    return TamperOutcome::Unchanged;
                }
                // Prover answered an earlier challenge; verifier checks
                // against the fresh one.
                msgs = self.ms.honest_response(&self.parent, |i| &self.s1[i], |i| &self.s2[i], z2);
            }
            MutatorKind::OutOfRange => {
                let v = m.index(k);
                msgs[v].a1 += f.modulus();
            }
            MutatorKind::DepthOffByOne => {
                let v = m.index(k);
                if m.coin() {
                    msgs[v].a1 = (msgs[v].a1 + 1) % f.modulus();
                } else {
                    msgs[v].a2 = (msgs[v].a2 + 1) % f.modulus();
                }
            }
            MutatorKind::ReRoot => return TamperOutcome::Unchanged,
        }
        let mut rej = Rejections::new();
        for i in 0..k {
            let root_coin = if i == 0 { Some(z) } else { None };
            self.ms.check(
                i,
                i,
                self.parent[i],
                &self.children[i],
                &self.s1[i],
                &self.s2[i],
                &msgs,
                root_coin,
                &mut rej,
            );
        }
        if rej.any() {
            TamperOutcome::Detected { malformed: rej.any_malformed() }
        } else {
            TamperOutcome::Miss
        }
    }
}

// ---------------------------------------------------------------------
// §3–5: LR-sorting
// ---------------------------------------------------------------------

/// Corrupts one honest 5-round LR transcript via
/// [`LrSorting::run_tampered`].
struct LrSortingTarget {
    inst: LrInstance,
    params: LrParams,
}

impl LrSortingTarget {
    fn new(n: usize, gen_seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(gen_seed);
        let inst = gen::lr::random_lr_yes(n.max(8), (n / 4).max(2), true, &mut rng);
        LrSortingTarget { inst, params: LrParams { c: 3, block_len: None } }
    }
}

impl Tamperable for LrSortingTarget {
    fn target_name(&self) -> &'static str {
        TargetId::LrSorting.name()
    }

    fn supports(&self, kind: MutatorKind) -> bool {
        TargetId::LrSorting.supports(kind)
    }

    fn determinism(&self, kind: MutatorKind) -> Determinism {
        TargetId::LrSorting.determinism(kind)
    }

    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome {
        let (mut m, run_seed, aux_seed) = streams(seed);
        let lr = LrSorting::new(&self.inst, self.params, Transport::Native);
        let p_bits = lr.field_p.element_bits().max(1);
        let p_mod = lr.field_p.modulus();
        let pp_mod = lr.field_pp.modulus();
        let block_len = lr.block_len;
        let changed = std::cell::Cell::new(true);
        let res = lr.run_tampered(run_seed, |t, coins| {
            let n = t.r1_node.len();
            match kind {
                MutatorKind::BitFlip => {
                    let v = m.index(n);
                    let bit = m.bit(p_bits);
                    if m.coin() {
                        t.r2_node[v].a2 ^= bit;
                    } else {
                        t.r2_node[v].b1 ^= bit;
                    }
                }
                MutatorKind::LabelSwap => {
                    let (i, j) = m.pair(n);
                    if t.r1_node[i] == t.r1_node[j]
                        && t.r2_node[i] == t.r2_node[j]
                        && t.r3_node[i] == t.r3_node[j]
                    {
                        changed.set(false);
                        return;
                    }
                    t.r1_node.swap(i, j);
                    t.r2_node.swap(i, j);
                    t.r3_node.swap(i, j);
                }
                MutatorKind::Truncate => {
                    t.r1_node.truncate(m.index(n));
                }
                MutatorKind::StaleCoins => {
                    // Replace every verifier coin after the prover
                    // answered: the transcript is now stale everywhere.
                    let mut stale = SmallRng::seed_from_u64(aux_seed);
                    for c in coins.iter_mut() {
                        c.r = stale.gen_range(0..p_mod);
                        c.rp = stale.gen_range(0..p_mod);
                        c.rb = stale.gen_range(0..p_mod);
                        c.z1 = stale.gen_range(0..pp_mod);
                        c.z0 = stale.gen_range(0..pp_mod);
                    }
                }
                MutatorKind::OutOfRange => {
                    let v = m.index(n);
                    t.r1_node[v].idx = 2 * block_len.max(1) + 2 + m.index(5);
                }
                MutatorKind::DepthOffByOne => {
                    let v = m.index(n);
                    t.r1_node[v].idx += 1;
                }
                MutatorKind::ReRoot => changed.set(false),
            }
        });
        if !changed.get() {
            return TamperOutcome::Unchanged;
        }
        classify(res)
    }
}

// ---------------------------------------------------------------------
// Theorems 1.2–1.7: the derived protocols
// ---------------------------------------------------------------------

/// Corrupts the witness or instance of one derived protocol and runs it
/// end to end.
struct DerivedTarget {
    id: TargetId,
    inst: YesInstance,
    params: PopParams,
}

impl DerivedTarget {
    fn new(id: TargetId, n: usize, gen_seed: u64) -> Self {
        let family = match id {
            TargetId::PathOuterplanar => Family::PathOuterplanar,
            TargetId::Outerplanar => Family::Outerplanar,
            TargetId::EmbeddedPlanarity => Family::EmbeddedPlanarity,
            TargetId::Planarity => Family::Planarity,
            TargetId::SeriesParallel => Family::SeriesParallel,
            TargetId::Treewidth2 => Family::Treewidth2,
            _ => unreachable!("DerivedTarget::new on a primitive target"),
        };
        let inst = YesInstance::generate(family, n, gen_seed);
        DerivedTarget { id, inst, params: PopParams::default() }
    }
}

/// Genuine-witness check that tolerates arbitrary (even out-of-range)
/// path entries without panicking.
fn still_hamiltonian(g: &Graph, path: &[usize]) -> bool {
    path.iter().all(|&v| v < g.n()) && is_hamiltonian_path(g, path)
}

/// Adds one chord between a non-adjacent pair ("bit flip" on the
/// adjacency matrix). `None` when no candidate pair is found.
fn add_chord(g: &Graph, m: &mut Mutator) -> Option<Graph> {
    let n = g.n();
    if n < 4 {
        return None;
    }
    for _ in 0..16 {
        let (u, v) = m.pair(n);
        if !g.has_edge(u, v) {
            let mut edges: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            edges.push((u, v));
            return Some(Graph::from_edges(n, edges));
        }
    }
    None
}

/// Rewires one endpoint of one edge ("label swap" on the edge list),
/// keeping the graph simple and connected. `None` when no candidate
/// rewiring is found.
fn rewire_edge(g: &Graph, m: &mut Mutator) -> Option<Graph> {
    let n = g.n();
    if n < 4 || g.m() == 0 {
        return None;
    }
    for _ in 0..16 {
        let e = m.index(g.m());
        let (u, v) = (g.edges()[e].u, g.edges()[e].v);
        let w = m.index(n);
        if w == u || w == v || g.has_edge(u, w) {
            continue;
        }
        let mut edges: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != e)
            .map(|(_, ed)| (ed.u, ed.v))
            .collect();
        edges.push((u, w));
        let g2 = Graph::from_edges(n, edges);
        if g2.is_connected() {
            return Some(g2);
        }
    }
    None
}

/// Transposes two incident-edge positions in the rotation at a node of
/// degree ≥ 3 (`adjacent` picks neighbors in the cyclic order).
fn mutate_rotation(
    g: &Graph,
    rho: &RotationSystem,
    adjacent: bool,
    m: &mut Mutator,
) -> Option<RotationSystem> {
    let cands: Vec<usize> = (0..g.n()).filter(|&v| g.degree(v) >= 3).collect();
    if cands.is_empty() {
        return None;
    }
    let v = cands[m.index(cands.len())];
    let d = g.degree(v);
    let mut r = rho.clone();
    if adjacent {
        let i = m.index(d);
        r.swap_positions(v, i, (i + 1) % d);
    } else {
        let (i, j) = m.pair(d);
        r.swap_positions(v, i, j);
    }
    Some(r)
}

impl Tamperable for DerivedTarget {
    fn target_name(&self) -> &'static str {
        self.id.name()
    }

    fn supports(&self, kind: MutatorKind) -> bool {
        self.id.supports(kind)
    }

    fn determinism(&self, kind: MutatorKind) -> Determinism {
        self.id.determinism(kind)
    }

    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome {
        let (mut m, run_seed, _) = streams(seed);
        match &self.inst {
            // Theorem 1.2: corrupt the committed Hamiltonian path.
            YesInstance::Pop(inst) => {
                let Some(path) = inst.witness.as_ref() else {
                    return TamperOutcome::Unchanged;
                };
                let n = inst.graph.n();
                let mut p = path.clone();
                match kind {
                    MutatorKind::BitFlip => {
                        let i = m.index(p.len());
                        p[i] ^= m.bit(bits_for_domain(n).max(1)) as usize;
                    }
                    MutatorKind::LabelSwap => {
                        let (i, j) = m.pair(p.len());
                        p.swap(i, j);
                    }
                    MutatorKind::Truncate => {
                        let drop = 1 + m.index((n / 4).max(1));
                        p.truncate(n.saturating_sub(drop).max(1));
                    }
                    MutatorKind::ReRoot => {
                        let k = 1 + m.index(n.saturating_sub(1).max(1));
                        p.rotate_left(k);
                    }
                    MutatorKind::OutOfRange => {
                        let i = m.index(p.len());
                        p[i] = n + 1 + m.index(7);
                    }
                    MutatorKind::DepthOffByOne => {
                        let i = m.index(p.len().saturating_sub(1).max(1));
                        let j = (i + 1).min(p.len() - 1);
                        p.swap(i, j);
                    }
                    MutatorKind::StaleCoins => return TamperOutcome::Unchanged,
                }
                if p == *path || still_hamiltonian(&inst.graph, &p) {
                    // Still a genuine witness (e.g. a rotation whose
                    // wrap-around is an edge): a semantic no-op.
                    return TamperOutcome::Unchanged;
                }
                let mutated = PopInstance {
                    graph: inst.graph.clone(),
                    witness: Some(p),
                    is_yes: inst.is_yes,
                };
                classify(
                    PathOuterplanarity::new(&mutated, self.params, Transport::Native)
                        .run_honest(run_seed),
                )
            }
            // Theorem 1.3: push the instance out of the family.
            YesInstance::Op(inst) => {
                let g2 = match kind {
                    MutatorKind::BitFlip => add_chord(&inst.graph, &mut m),
                    MutatorKind::LabelSwap => rewire_edge(&inst.graph, &mut m),
                    _ => None,
                };
                let Some(g2) = g2 else { return TamperOutcome::Unchanged };
                if is_outerplanar(&g2) {
                    return TamperOutcome::Unchanged;
                }
                let mutated = OpInstance { graph: g2, is_yes: false };
                // BlockHonestSweep: honest labels inside the now-bad
                // block — the pure soundness question.
                classify(
                    Outerplanarity::new(&mutated, self.params, Transport::Native)
                        .run_cheat(1, run_seed),
                )
            }
            // Theorem 1.4: corrupt the input rotation system.
            YesInstance::Emb(inst) => {
                let adjacent = matches!(kind, MutatorKind::BitFlip);
                let Some(rho) = mutate_rotation(&inst.graph, &inst.rho, adjacent, &mut m) else {
                    return TamperOutcome::Unchanged;
                };
                if rho.is_planar_embedding(&inst.graph) {
                    return TamperOutcome::Unchanged;
                }
                let mutated = EmbInstance { graph: inst.graph.clone(), rho, is_yes: false };
                // HonestSweep: honest labels on the crossing embedding.
                classify(
                    EmbeddedPlanarity::new(&mutated, self.params, Transport::Native)
                        .run_cheat(0, run_seed),
                )
            }
            // Theorem 1.5: corrupt the prover's witness embedding.
            YesInstance::Pl(inst) => {
                let Some(w) = inst.witness_rho.as_ref() else {
                    return TamperOutcome::Unchanged;
                };
                let adjacent = matches!(kind, MutatorKind::BitFlip);
                let Some(rho) = mutate_rotation(&inst.graph, w, adjacent, &mut m) else {
                    return TamperOutcome::Unchanged;
                };
                if rho.is_planar_embedding(&inst.graph) {
                    return TamperOutcome::Unchanged;
                }
                let mutated = PlInstance {
                    graph: inst.graph.clone(),
                    witness_rho: Some(rho),
                    is_yes: inst.is_yes,
                };
                // Honest run: the prover distributes the corrupted
                // witness and plays everything else straight.
                classify(
                    Planarity::new(&mutated, self.params, Transport::Native).run_honest(run_seed),
                )
            }
            // Theorem 1.6: push the instance out of the family.
            YesInstance::Spa(inst) => {
                let g2 = match kind {
                    MutatorKind::BitFlip => add_chord(&inst.graph, &mut m),
                    MutatorKind::LabelSwap => rewire_edge(&inst.graph, &mut m),
                    _ => None,
                };
                let Some(g2) = g2 else { return TamperOutcome::Unchanged };
                if is_series_parallel(&g2) {
                    return TamperOutcome::Unchanged;
                }
                let mutated = SpaInstance { graph: g2, is_yes: false };
                // HideExtraEdges: remove-until-SP + disguised ears.
                classify(
                    SeriesParallel::new(&mutated, self.params, Transport::Native)
                        .run_cheat(0, run_seed),
                )
            }
            // Theorem 1.7: push the instance out of the family.
            YesInstance::Tw2(inst) => {
                let g2 = match kind {
                    MutatorKind::BitFlip => add_chord(&inst.graph, &mut m),
                    MutatorKind::LabelSwap => rewire_edge(&inst.graph, &mut m),
                    _ => None,
                };
                let Some(g2) = g2 else { return TamperOutcome::Unchanged };
                if is_treewidth_at_most_2(&g2) {
                    return TamperOutcome::Unchanged;
                }
                let mutated = Tw2Instance { graph: g2, is_yes: false };
                classify(
                    Treewidth2::new(&mutated, self.params, Transport::Native)
                        .run_cheat(0, run_seed),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_names_roundtrip() {
        for id in TARGETS {
            assert_eq!(TargetId::from_name(id.name()), Some(id));
        }
        assert_eq!(TargetId::from_name("nonsense"), None);
    }

    #[test]
    fn every_target_supports_something() {
        use super::super::MUTATORS;
        for id in TARGETS {
            assert!(MUTATORS.iter().any(|&k| id.supports(k)), "{}", id.name());
        }
    }

    #[test]
    fn primitive_deterministic_kinds_never_miss() {
        use super::super::MUTATORS;
        for id in [TargetId::ForestCode, TargetId::SpanningTree, TargetId::MultisetEq] {
            let t = build_target(id, 20, 7);
            for kind in MUTATORS {
                if !t.supports(kind) || t.determinism(kind) != Determinism::Deterministic {
                    continue;
                }
                for s in 0..4u64 {
                    let out = t.run_mutated(kind, s);
                    assert_ne!(
                        out,
                        TamperOutcome::Miss,
                        "{} / {} / seed {s}",
                        id.name(),
                        kind.name()
                    );
                }
            }
        }
    }

    #[test]
    fn derived_targets_resolve_without_panicking() {
        use super::super::MUTATORS;
        for id in [
            TargetId::LrSorting,
            TargetId::PathOuterplanar,
            TargetId::Outerplanar,
            TargetId::EmbeddedPlanarity,
            TargetId::Planarity,
            TargetId::SeriesParallel,
            TargetId::Treewidth2,
        ] {
            let t = build_target(id, 20, 11);
            for kind in MUTATORS {
                if !t.supports(kind) {
                    continue;
                }
                // Any of the three outcomes is legal; the point is that
                // the run resolves.
                let _ = t.run_mutated(kind, 5);
            }
        }
    }
}
