//! The E9 chaos sweep: a deterministic parallel grid runner.
//!
//! Expands the target × mutator × trial grid into jobs, runs each job —
//! instance generation, corruption and re-verification — under
//! `catch_unwind` on a fixed-seed worker pool, and aggregates per-cell
//! detection statistics. The report depends only on
//! `(n, trials, base_seed)`: scheduling, thread count and wall-clock
//! never reach the output, so the rendered artifacts are byte-identical
//! across `--threads` settings (guarded by `tests/e9_freshness.rs`).

use super::{build_target, Determinism, MutatorKind, TamperOutcome, TargetId, MUTATORS, TARGETS};
use crate::pool::PanicSilencer;
use crate::seed::sub_seed;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// Parameters of one chaos sweep.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Nominal instance size per target.
    pub n: usize,
    /// Trials per (target, mutator) cell.
    pub trials: usize,
    /// Base seed of the whole grid.
    pub base_seed: u64,
    /// Worker threads (execution detail; never part of the report).
    pub threads: usize,
    /// Required detection rate for probabilistic corruption classes
    /// (1 − ε for the audited soundness bound ε). Deterministic classes
    /// always require rate 1.0.
    pub prob_threshold: f64,
}

impl ChaosSpec {
    /// The committed full grid (results/e9_chaos.*).
    pub fn full() -> ChaosSpec {
        ChaosSpec { n: 64, trials: 40, base_seed: 0xE9, threads: 1, prob_threshold: 0.75 }
    }

    /// The CI smoke grid: same seeds, smaller instances and fewer trials.
    pub fn smoke() -> ChaosSpec {
        ChaosSpec { n: 32, trials: 6, base_seed: 0xE9, threads: 1, prob_threshold: 0.75 }
    }
}

/// The outcome of one chaos job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Some node rejected; `malformed` records a structural catch.
    Detected {
        /// Whether a deterministic structural check fired.
        malformed: bool,
    },
    /// Every node accepted corrupted state (soundness coin-flip miss).
    Miss,
    /// The mutation was a semantic no-op.
    Unchanged,
    /// The verifier panicked — always a failed audit.
    Panicked(String),
}

/// One grid job, resolved.
#[derive(Debug, Clone)]
pub struct ChaosRecord {
    /// The corrupted surface.
    pub target: TargetId,
    /// The corruption class.
    pub kind: MutatorKind,
    /// Trial index within the cell.
    pub trial: usize,
    /// Job seed (replay key: `build_target(target, n, sub_seed(seed, GEN))`
    /// + `run_mutated(kind, sub_seed(seed, RUN))`).
    pub seed: u64,
    /// What happened.
    pub outcome: ChaosOutcome,
}

/// Aggregated statistics of one (target, mutator) cell.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// The corrupted surface.
    pub target: TargetId,
    /// The corruption class.
    pub kind: MutatorKind,
    /// Calibrated detection class.
    pub class: Determinism,
    /// Trials run.
    pub attempts: usize,
    /// Runs where some node rejected.
    pub detected: usize,
    /// Detected runs where a structural check fired.
    pub malformed: usize,
    /// Runs where corrupted state was accepted.
    pub missed: usize,
    /// Semantic no-ops (excluded from the rate).
    pub unchanged: usize,
    /// Panicking runs (always a failure).
    pub panicked: usize,
    /// `detected / (detected + missed)`; 1.0 when the cell is vacuous.
    pub rate: f64,
    /// Required rate for this cell's class.
    pub threshold: f64,
    /// Whether the cell meets its threshold with zero panics.
    pub pass: bool,
}

/// The full E9 report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Instance size the grid ran at.
    pub n: usize,
    /// Trials per cell.
    pub trials: usize,
    /// Base seed of the grid.
    pub base_seed: u64,
    /// Probabilistic-class threshold.
    pub prob_threshold: f64,
    /// Every resolved job, in grid order.
    pub records: Vec<ChaosRecord>,
    /// Per-cell aggregates, in grid order.
    pub cells: Vec<ChaosCell>,
    /// Whether no job panicked.
    pub zero_panics: bool,
    /// Whether every cell passed.
    pub all_pass: bool,
}

/// Seed-derivation labels of the chaos grid (documented for replay).
mod labels {
    /// Per-target stream offset.
    pub const TARGET: u64 = 0x7A;
    /// Instance-generation sub-seed.
    pub const GEN: u64 = 10;
    /// Mutation + verification sub-seed.
    pub const RUN: u64 = 20;
}

/// The seed of one grid job; pure in `(base_seed, target, kind, trial)`.
fn grid_seed(base_seed: u64, ti: usize, ki: usize, trial: usize) -> u64 {
    sub_seed(sub_seed(sub_seed(base_seed, labels::TARGET + ti as u64), ki as u64), trial as u64)
}

/// Runs the whole grid and aggregates the report.
pub fn run_chaos(spec: &ChaosSpec) -> ChaosReport {
    struct Job {
        target: TargetId,
        kind: MutatorKind,
        trial: usize,
        seed: u64,
    }
    let mut jobs: Vec<Job> = Vec::new();
    for (ti, &target) in TARGETS.iter().enumerate() {
        for (ki, &kind) in MUTATORS.iter().enumerate() {
            if !target.supports(kind) {
                continue;
            }
            for trial in 0..spec.trials {
                jobs.push(Job {
                    target,
                    kind,
                    trial,
                    seed: grid_seed(spec.base_seed, ti, ki, trial),
                });
            }
        }
    }

    let _silencer = PanicSilencer::engage();
    let cursor = AtomicUsize::new(0);
    let threads = spec.threads.max(1);
    let n = spec.n;
    let (tx, rx) = mpsc::channel::<(usize, ChaosOutcome)>();
    thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let jobs = &jobs;
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    let target = build_target(job.target, n, sub_seed(job.seed, labels::GEN));
                    target.run_mutated(job.kind, sub_seed(job.seed, labels::RUN))
                }));
                let outcome = match outcome {
                    Ok(TamperOutcome::Detected { malformed }) => {
                        ChaosOutcome::Detected { malformed }
                    }
                    Ok(TamperOutcome::Miss) => ChaosOutcome::Miss,
                    Ok(TamperOutcome::Unchanged) => ChaosOutcome::Unchanged,
                    Err(payload) => ChaosOutcome::Panicked(panic_message(&payload)),
                };
                // The grid outlives every worker; a send can only fail
                // if the collector was dropped early, which cannot
                // happen inside this scope.
                let _ = tx.send((i, outcome));
            });
        }
    });
    drop(tx);
    let mut resolved: Vec<(usize, ChaosOutcome)> = rx.into_iter().collect();
    resolved.sort_by_key(|&(i, _)| i);
    let records: Vec<ChaosRecord> = resolved
        .into_iter()
        .map(|(i, outcome)| {
            let job = &jobs[i];
            ChaosRecord {
                target: job.target,
                kind: job.kind,
                trial: job.trial,
                seed: job.seed,
                outcome,
            }
        })
        .collect();

    let mut cells: Vec<ChaosCell> = Vec::new();
    for &target in TARGETS.iter() {
        for &kind in MUTATORS.iter() {
            if !target.supports(kind) {
                continue;
            }
            let class = target.determinism(kind);
            let mut cell = ChaosCell {
                target,
                kind,
                class,
                attempts: 0,
                detected: 0,
                malformed: 0,
                missed: 0,
                unchanged: 0,
                panicked: 0,
                rate: 1.0,
                threshold: match class {
                    Determinism::Deterministic => 1.0,
                    Determinism::Probabilistic => spec.prob_threshold,
                },
                pass: true,
            };
            for r in records.iter().filter(|r| r.target == target && r.kind == kind) {
                cell.attempts += 1;
                match &r.outcome {
                    ChaosOutcome::Detected { malformed } => {
                        cell.detected += 1;
                        if *malformed {
                            cell.malformed += 1;
                        }
                    }
                    ChaosOutcome::Miss => cell.missed += 1,
                    ChaosOutcome::Unchanged => cell.unchanged += 1,
                    ChaosOutcome::Panicked(_) => cell.panicked += 1,
                }
            }
            let effective = cell.detected + cell.missed;
            cell.rate = if effective == 0 { 1.0 } else { cell.detected as f64 / effective as f64 };
            cell.pass = cell.panicked == 0
                && match class {
                    Determinism::Deterministic => cell.missed == 0,
                    Determinism::Probabilistic => cell.rate >= cell.threshold,
                };
            cells.push(cell);
        }
    }

    let zero_panics = !records.iter().any(|r| matches!(r.outcome, ChaosOutcome::Panicked(_)));
    let all_pass = zero_panics && cells.iter().all(|c| c.pass);
    ChaosReport {
        n: spec.n,
        trials: spec.trials,
        base_seed: spec.base_seed,
        prob_threshold: spec.prob_threshold,
        records,
        cells,
        zero_panics,
        all_pass,
    }
}

/// Best-effort panic payload extraction.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl ChaosReport {
    /// The human-readable E9 table (results/e9_chaos.txt). Contains no
    /// timing or scheduling information.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# E9: chaos sweep — seed-driven adversarial fault injection\n");
        out.push_str(&format!(
            "# n={} trials-per-cell={} base-seed={:#x} prob-threshold={:.2}\n",
            self.n, self.trials, self.base_seed, self.prob_threshold
        ));
        out.push_str(&format!("# zero-panics={} all-pass={}\n\n", self.zero_panics, self.all_pass));
        out.push_str(&format!(
            "{:<20} {:<17} {:<14} {:>4} {:>4} {:>4} {:>5} {:>5} {:>4} {:>7} {:>5}  {}\n",
            "target",
            "mutator",
            "class",
            "att",
            "det",
            "mal",
            "miss",
            "unch",
            "pan",
            "rate",
            "thr",
            "pass"
        ));
        for c in &self.cells {
            out.push_str(&format!(
                "{:<20} {:<17} {:<14} {:>4} {:>4} {:>4} {:>5} {:>5} {:>4} {:>7.4} {:>5.2}  {}\n",
                c.target.name(),
                c.kind.name(),
                c.class.name(),
                c.attempts,
                c.detected,
                c.malformed,
                c.missed,
                c.unchanged,
                c.panicked,
                c.rate,
                c.threshold,
                if c.pass { "ok" } else { "FAIL" }
            ));
        }
        out
    }

    /// The machine-readable E9 report (results/e9_chaos.json), hand
    /// rendered with stable key order and no timing fields.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"e9-chaos\",\n");
        out.push_str(&format!("  \"n\": {},\n", self.n));
        out.push_str(&format!("  \"trials_per_cell\": {},\n", self.trials));
        out.push_str(&format!("  \"base_seed\": {},\n", self.base_seed));
        out.push_str(&format!("  \"prob_threshold\": {:.4},\n", self.prob_threshold));
        out.push_str(&format!("  \"zero_panics\": {},\n", self.zero_panics));
        out.push_str(&format!("  \"all_pass\": {},\n", self.all_pass));
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"target\": \"{}\", \"mutator\": \"{}\", \"class\": \"{}\", \
                 \"attempts\": {}, \"detected\": {}, \"malformed\": {}, \"missed\": {}, \
                 \"unchanged\": {}, \"panicked\": {}, \"rate\": {:.4}, \
                 \"threshold\": {:.4}, \"pass\": {}}}{}\n",
                c.target.name(),
                c.kind.name(),
                c.class.name(),
                c.attempts,
                c.detected,
                c.malformed,
                c.missed,
                c.unchanged,
                c.panicked,
                c.rate,
                c.threshold,
                c.pass,
                if i + 1 == self.cells.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ChaosSpec {
        ChaosSpec { n: 16, trials: 2, base_seed: 0xE9, threads: 2, prob_threshold: 0.0 }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let a = run_chaos(&ChaosSpec { threads: 1, ..tiny_spec() });
        let b = run_chaos(&ChaosSpec { threads: 4, ..tiny_spec() });
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.render_json(), b.render_json());
    }

    #[test]
    fn grid_covers_every_supported_cell() {
        let r = run_chaos(&tiny_spec());
        for &target in TARGETS.iter() {
            for &kind in MUTATORS.iter() {
                let present = r.cells.iter().any(|c| c.target == target && c.kind == kind);
                assert_eq!(present, target.supports(kind), "{}/{}", target.name(), kind.name());
            }
        }
        for c in &r.cells {
            assert_eq!(c.attempts, 2);
        }
    }

    #[test]
    fn no_panics_on_the_tiny_grid() {
        let r = run_chaos(&tiny_spec());
        assert!(r.zero_panics, "{}", r.render_text());
    }
}
