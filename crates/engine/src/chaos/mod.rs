//! `pdip-chaos` — seed-driven adversarial fault injection (experiment E9).
//!
//! The paper's soundness theorems promise that *any* deviation from an
//! honest transcript is rejected by some node except with probability
//! ε = 1/polylog n. This module audits that promise mechanically: a small
//! taxonomy of composable, SplitMix64-seeded corruptions ([`MutatorKind`])
//! is applied — through one uniform [`Tamperable`] interface — to the
//! transcripts and committed witnesses of every sub-protocol and derived
//! protocol in the repository, and each corrupted run is classified as
//!
//! * **detected** — some node rejected (structurally
//!   [`pdip_core::RejectReason::Malformed`] or via a value check),
//! * **miss** — every node accepted corrupted state: a soundness
//!   coin-flip miss, which must stay within the ε budget, or
//! * **unchanged** — the mutation was a semantic no-op (e.g. swapping two
//!   equal labels, or a witness rotation that is still a valid witness);
//!   such runs are excluded from detection rates.
//!
//! Corruption classes are calibrated as deterministic (the verifier's
//! structural checks catch them on every coin sequence; required
//! detection rate 1.0) or probabilistic (caught up to the protocol's
//! soundness error; required rate ≥ 1 − ε). The [`harness`] sweeps the
//! target × mutator × seed grid on a deterministic parallel runner —
//! byte-identical output for any thread count — and renders the E9
//! report. Zero panics is part of the contract: every run is wrapped in
//! `catch_unwind`, and a panicking verifier is a failed audit, not noise.

pub mod harness;
pub mod mutate;
pub mod targets;

pub use harness::{run_chaos, ChaosOutcome, ChaosRecord, ChaosReport, ChaosSpec};
pub use mutate::Mutator;
pub use targets::{build_target, TargetId, TARGETS};

/// The corruption taxonomy. Each kind is a *family* of corruptions; the
/// concrete victim, bit position or replacement value is drawn from the
/// job's [`Mutator`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MutatorKind {
    /// Flip one bit of one committed field element / color / residue.
    BitFlip,
    /// Swap the complete labels of two nodes.
    LabelSwap,
    /// Truncate a committed structure (drop trailing labels / path nodes).
    Truncate,
    /// Replay prover responses computed against stale verifier coins.
    StaleCoins,
    /// Re-root: flip a root flag or rotate a committed witness path.
    ReRoot,
    /// Write an out-of-range port / tag / index value.
    OutOfRange,
    /// Off-by-one a depth residue, block index or aggregate value.
    DepthOffByOne,
}

/// All mutator kinds, in report order.
pub const MUTATORS: [MutatorKind; 7] = [
    MutatorKind::BitFlip,
    MutatorKind::LabelSwap,
    MutatorKind::Truncate,
    MutatorKind::StaleCoins,
    MutatorKind::ReRoot,
    MutatorKind::OutOfRange,
    MutatorKind::DepthOffByOne,
];

impl MutatorKind {
    /// Machine-readable name (stable: part of the E9 schema).
    pub fn name(&self) -> &'static str {
        match self {
            MutatorKind::BitFlip => "bit-flip",
            MutatorKind::LabelSwap => "label-swap",
            MutatorKind::Truncate => "truncate",
            MutatorKind::StaleCoins => "stale-coins",
            MutatorKind::ReRoot => "re-root",
            MutatorKind::OutOfRange => "out-of-range",
            MutatorKind::DepthOffByOne => "depth-off-by-one",
        }
    }

    /// Inverse of [`MutatorKind::name`].
    pub fn from_name(s: &str) -> Option<MutatorKind> {
        MUTATORS.iter().copied().find(|k| k.name() == s)
    }
}

/// Whether a corruption class is caught by structural checks on every
/// coin sequence, or only up to the protocol's soundness error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Detection is coin-independent; the audit requires rate 1.0.
    Deterministic,
    /// Detection holds up to ε; the audit requires rate ≥ 1 − ε.
    Probabilistic,
}

impl Determinism {
    /// Report label.
    pub fn name(&self) -> &'static str {
        match self {
            Determinism::Deterministic => "deterministic",
            Determinism::Probabilistic => "probabilistic",
        }
    }
}

/// The outcome of one corrupted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperOutcome {
    /// At least one node rejected. `malformed` records whether any
    /// rejection was structural ([`pdip_core::RejectReason::Malformed`]).
    Detected {
        /// Whether a structural (coin-independent) check fired.
        malformed: bool,
    },
    /// Every node accepted the corrupted state: a soundness miss.
    Miss,
    /// The mutation was a semantic no-op; excluded from detection rates.
    Unchanged,
}

/// One corruptible protocol surface: an instance plus the machinery to
/// corrupt one run of it. Implementations cover the Lemma 2.3/2.5/2.6
/// primitives, the §3–5 LR-sorting core, and the six Theorem 1.2–1.7
/// protocols (see [`targets`]).
pub trait Tamperable {
    /// Stable machine-readable name (part of the E9 schema).
    fn target_name(&self) -> &'static str;

    /// Whether `kind` is meaningful for this target's label structure.
    fn supports(&self, kind: MutatorKind) -> bool;

    /// The calibrated detection class of `kind` on this target.
    fn determinism(&self, kind: MutatorKind) -> Determinism;

    /// Runs one honest execution, corrupts it according to `kind` with
    /// choices drawn from the `seed`-keyed [`Mutator`] stream, and
    /// re-runs the verifier on the corrupted state.
    fn run_mutated(&self, kind: MutatorKind, seed: u64) -> TamperOutcome;
}
