//! Structured run records, quarantined failures, aggregates and metrics.

use crate::family::Family;
use crate::spec::{JobSpec, Prover};
use pdip_core::RunResult;
use std::collections::BTreeMap;
use std::time::Duration;

/// The structured outcome of one protocol run (one job).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Grid index of the job (total order of the sweep).
    pub index: u64,
    /// Graph family.
    pub family: Family,
    /// Requested instance size.
    pub n: usize,
    /// Actual node count of the generated instance.
    pub actual_n: usize,
    /// Prover behaviour.
    pub prover: Prover,
    /// Trial number within the cell.
    pub trial: u64,
    /// Instance-generation seed.
    pub gen_seed: u64,
    /// Protocol-run seed.
    pub run_seed: u64,
    /// Whether every node accepted.
    pub accepted: bool,
    /// Interaction rounds.
    pub rounds: usize,
    /// The paper's proof size: max label bits over nodes and prover rounds.
    pub proof_size_bits: usize,
    /// Per prover-round maximum label bits.
    pub per_round_max_bits: Vec<usize>,
    /// Total verifier coin bits.
    pub coin_bits: usize,
    /// Rejection reports (node, reason), capped upstream.
    pub rejections: Vec<(usize, String)>,
    /// Wall time of the run (excluded from deterministic aggregates).
    pub wall: Duration,
    /// Attempts the job took to complete (1 = no retries).
    pub attempts: u32,
}

impl RunRecord {
    /// Builds a record from a protocol [`RunResult`].
    pub fn from_result(
        job: &JobSpec,
        actual_n: usize,
        rounds: usize,
        res: &RunResult,
        wall: Duration,
    ) -> Self {
        RunRecord {
            index: job.coords.index,
            family: job.coords.family,
            n: job.coords.n,
            actual_n,
            prover: job.coords.prover,
            trial: job.coords.trial,
            gen_seed: job.gen_seed,
            run_seed: job.run_seed,
            accepted: res.accepted(),
            rounds,
            proof_size_bits: res.stats.proof_size(),
            per_round_max_bits: res.stats.per_round_max_bits.clone(),
            coin_bits: res.stats.coin_bits,
            rejections: res.rejections.clone(),
            wall,
            attempts: 1,
        }
    }
}

/// Why a job was quarantined as a [`JobFailure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The job panicked through all of its retries.
    Panicked,
    /// The job completed but its wall time exceeded the sweep's
    /// [`crate::spec::SweepSpec::job_deadline`] watchdog (not retried:
    /// a slow job would only get slower under contention).
    TimedOut,
}

impl FailureKind {
    /// Machine-readable name ("panicked" / "timed-out").
    pub fn name(&self) -> &'static str {
        match self {
            FailureKind::Panicked => "panicked",
            FailureKind::TimedOut => "timed-out",
        }
    }
}

/// A job that was quarantined: it panicked through all its retries, or
/// blew through the sweep's per-job watchdog deadline.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Grid index of the job.
    pub index: u64,
    /// Graph family.
    pub family: Family,
    /// Requested instance size.
    pub n: usize,
    /// Prover behaviour.
    pub prover: Prover,
    /// Trial number.
    pub trial: u64,
    /// Attempts made (1 + retries).
    pub attempts: u32,
    /// What went wrong (panic vs. watchdog timeout).
    pub kind: FailureKind,
    /// The panic payload or timeout description, stringified.
    pub payload: String,
}

/// Timing and throughput of one sweep execution.
#[derive(Debug, Clone)]
pub struct SweepMetrics {
    /// Jobs executed (completed + failed).
    pub jobs: u64,
    /// Jobs quarantined as failures (panicked + timed out).
    pub failures: u64,
    /// Failures quarantined after panicking through their retries.
    pub quarantined: u64,
    /// Failures whose wall time exceeded the per-job deadline.
    pub timed_out: u64,
    /// Extra attempts beyond the first, summed over all jobs.
    pub retries: u64,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Process peak RSS (`VmHWM`) observed at the end of the sweep, or
    /// `None` where the kernel doesn't expose it.
    pub peak_rss_bytes: Option<u64>,
    /// Allocator high-water (tracked heap bytes) over the sweep, or
    /// `None` when no tracking allocator is installed (library callers,
    /// unit tests). The `pdip` binary installs [`pdip_obs::PeakAlloc`].
    pub alloc_peak_bytes: Option<u64>,
}

impl SweepMetrics {
    /// Captures the memory high-water marks from `pdip-obs`: the kernel's
    /// `VmHWM`, and the allocator peak when a tracking allocator is
    /// installed in this process.
    pub fn capture_memory(&mut self) {
        self.peak_rss_bytes = pdip_obs::peak_rss_bytes();
        self.alloc_peak_bytes =
            pdip_obs::alloc_installed().then(|| pdip_obs::alloc_peak_bytes() as u64);
    }

    /// Jobs per second of wall time. A zero wall time (possible for
    /// empty sweeps on coarse clocks) reports 0.0, not infinity, so the
    /// summary line always prints a finite number.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.jobs as f64 / secs
        } else {
            0.0
        }
    }

    /// Formats an optional byte count for the summary line.
    fn fmt_mem(bytes: Option<u64>) -> String {
        match bytes {
            Some(b) => format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
            None => "untracked".into(),
        }
    }

    /// The one-line summary the experiment binaries print. The failure
    /// count is broken down into panic quarantines and watchdog
    /// timeouts; retry churn and the memory high-water marks are
    /// surfaced alongside.
    pub fn summary_line(&self) -> String {
        format!(
            "[engine] {} jobs, {} failures ({} quarantined, {} timed out), \
             {} retries, {} threads, {:.2}s wall, {:.1} jobs/sec, \
             peak rss {}, alloc peak {}",
            self.jobs,
            self.failures,
            self.quarantined,
            self.timed_out,
            self.retries,
            self.threads,
            self.wall.as_secs_f64(),
            self.jobs_per_sec(),
            Self::fmt_mem(self.peak_rss_bytes),
            Self::fmt_mem(self.alloc_peak_bytes),
        )
    }
}

/// Everything a sweep produces: records and failures in grid order, plus
/// execution metrics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Completed runs, sorted by grid index.
    pub records: Vec<RunRecord>,
    /// Quarantined jobs, sorted by grid index.
    pub failures: Vec<JobFailure>,
    /// Execution metrics (scheduling-dependent; not part of the
    /// deterministic surface).
    pub metrics: SweepMetrics,
}

/// One cell of the deterministic aggregate table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellAgg {
    /// Completed runs in the cell.
    pub runs: u64,
    /// Accepting runs.
    pub accepted: u64,
    /// Quarantined failures attributed to the cell.
    pub failures: u64,
    /// Maximum proof size over the cell's runs.
    pub max_proof_bits: usize,
    /// Minimum proof size over the cell's runs.
    pub min_proof_bits: usize,
    /// Sum of proof sizes (for means).
    pub sum_proof_bits: u64,
    /// Rounds (constant within a protocol; max is reported).
    pub rounds: usize,
}

impl CellAgg {
    /// Acceptance rate over completed runs (0 when the cell is empty).
    pub fn acceptance_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.accepted as f64 / self.runs as f64
        }
    }

    /// Mean proof size over completed runs.
    pub fn mean_proof_bits(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.sum_proof_bits as f64 / self.runs as f64
        }
    }
}

/// Aggregate key: one (family, prover, n) cell.
pub type CellKey = (Family, Prover, usize);

impl SweepOutcome {
    /// Folds records and failures into the deterministic aggregate table.
    ///
    /// The fold visits records in grid order and keys cells in a
    /// `BTreeMap`, so for a fixed spec the table — including its
    /// serialized form — is byte-identical regardless of worker count.
    pub fn aggregate(&self) -> BTreeMap<CellKey, CellAgg> {
        let mut table: BTreeMap<CellKey, CellAgg> = BTreeMap::new();
        for r in &self.records {
            let cell = table.entry((r.family, r.prover, r.n)).or_default();
            if cell.runs == 0 {
                cell.min_proof_bits = usize::MAX;
            }
            cell.runs += 1;
            cell.accepted += r.accepted as u64;
            cell.max_proof_bits = cell.max_proof_bits.max(r.proof_size_bits);
            cell.min_proof_bits = cell.min_proof_bits.min(r.proof_size_bits);
            cell.sum_proof_bits += r.proof_size_bits as u64;
            cell.rounds = cell.rounds.max(r.rounds);
        }
        for f in &self.failures {
            let cell = table.entry((f.family, f.prover, f.n)).or_default();
            if cell.runs == 0 && cell.failures == 0 {
                cell.min_proof_bits = usize::MAX;
            }
            cell.failures += 1;
        }
        table
    }

    /// Renders the aggregate table as aligned text rows
    /// (family, prover, n, runs, accepted, rate, proof bits min/mean/max).
    pub fn aggregate_rows(&self) -> Vec<Vec<String>> {
        self.aggregate()
            .iter()
            .map(|((family, prover, n), c)| {
                vec![
                    family.name().to_string(),
                    prover.tag(),
                    n.to_string(),
                    c.runs.to_string(),
                    c.accepted.to_string(),
                    format!("{:.1}%", 100.0 * c.acceptance_rate()),
                    if c.runs == 0 { "-".into() } else { c.min_proof_bits.to_string() },
                    if c.runs == 0 { "-".into() } else { format!("{:.1}", c.mean_proof_bits()) },
                    c.max_proof_bits.to_string(),
                    c.failures.to_string(),
                ]
            })
            .collect()
    }

    /// Header row matching [`SweepOutcome::aggregate_rows`].
    pub fn aggregate_headers() -> [&'static str; 10] {
        [
            "family",
            "prover",
            "n",
            "runs",
            "accepted",
            "rate",
            "min bits",
            "mean bits",
            "max bits",
            "quarantined",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn record(family: Family, prover: Prover, n: usize, accepted: bool, bits: usize) -> RunRecord {
        RunRecord {
            index: 0,
            family,
            n,
            actual_n: n,
            prover,
            trial: 0,
            gen_seed: 0,
            run_seed: 0,
            accepted,
            rounds: 5,
            proof_size_bits: bits,
            per_round_max_bits: vec![bits],
            coin_bits: 0,
            rejections: vec![],
            wall: Duration::from_millis(1),
            attempts: 1,
        }
    }

    #[test]
    fn aggregate_folds_cells() {
        let outcome = SweepOutcome {
            records: vec![
                record(Family::Planarity, Prover::Honest, 64, true, 10),
                record(Family::Planarity, Prover::Honest, 64, true, 14),
                record(Family::Planarity, Prover::Cheat(0), 64, false, 14),
            ],
            failures: vec![JobFailure {
                index: 3,
                family: Family::Planarity,
                n: 64,
                prover: Prover::Cheat(0),
                trial: 1,
                attempts: 2,
                kind: FailureKind::Panicked,
                payload: "boom".into(),
            }],
            metrics: SweepMetrics {
                jobs: 4,
                failures: 1,
                quarantined: 1,
                timed_out: 0,
                retries: 1,
                threads: 1,
                wall: Duration::from_millis(4),
                peak_rss_bytes: None,
                alloc_peak_bytes: None,
            },
        };
        let table = outcome.aggregate();
        let honest = &table[&(Family::Planarity, Prover::Honest, 64)];
        assert_eq!(honest.runs, 2);
        assert_eq!(honest.accepted, 2);
        assert_eq!(honest.max_proof_bits, 14);
        assert_eq!(honest.min_proof_bits, 10);
        assert!((honest.mean_proof_bits() - 12.0).abs() < 1e-9);
        let cheat = &table[&(Family::Planarity, Prover::Cheat(0), 64)];
        assert_eq!(cheat.runs, 1);
        assert_eq!(cheat.failures, 1);
        assert!((cheat.acceptance_rate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_summary_line_mentions_all_fields() {
        let m = SweepMetrics {
            jobs: 100,
            failures: 2,
            quarantined: 1,
            timed_out: 1,
            retries: 3,
            threads: 4,
            wall: Duration::from_secs(2),
            peak_rss_bytes: Some(6 * 1024 * 1024),
            alloc_peak_bytes: None,
        };
        let line = m.summary_line();
        assert!(line.contains("100 jobs"));
        assert!(line.contains("2 failures"));
        assert!(line.contains("1 quarantined"));
        assert!(line.contains("1 timed out"));
        assert!(line.contains("3 retries"));
        assert!(line.contains("4 threads"));
        assert!(line.contains("50.0 jobs/sec"));
    }

    #[test]
    fn zero_wall_time_reports_zero_throughput() {
        let m = SweepMetrics {
            jobs: 0,
            failures: 0,
            quarantined: 0,
            timed_out: 0,
            retries: 0,
            threads: 1,
            wall: Duration::ZERO,
            peak_rss_bytes: None,
            alloc_peak_bytes: None,
        };
        assert_eq!(m.jobs_per_sec(), 0.0);
        assert!(m.jobs_per_sec().is_finite());
        assert!(m.summary_line().contains("0.0 jobs/sec"));
    }

    #[test]
    fn failure_kind_names_are_stable() {
        assert_eq!(FailureKind::Panicked.name(), "panicked");
        assert_eq!(FailureKind::TimedOut.name(), "timed-out");
    }
}
