//! Cross-thread-count determinism of the engine, end to end.
//!
//! The engine's core contract: for a fixed [`SweepSpec`], the sorted
//! record stream and every derived artifact are identical no matter how
//! many workers execute the sweep. These tests run the same sweep at 1
//! and 4 workers and compare everything except wall-clock timings.

use pdip_engine::{
    aggregate_json, job_seed, sub_seed, Engine, Family, ProverSpec, RunRecord, SweepSpec,
};
use proptest::prelude::*;

fn demo_spec() -> SweepSpec {
    SweepSpec {
        families: vec![Family::PathOuterplanar, Family::SeriesParallel],
        sizes: vec![32, 64],
        provers: vec![ProverSpec::Honest, ProverSpec::AllCheats, ProverSpec::PanicInjection],
        trials: 3,
        base_seed: 0xfeed,
        ..SweepSpec::default()
    }
}

/// Everything in a record except wall time, as one comparable string.
fn timeless(r: &RunRecord) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {:?} {} {:?}",
        r.index,
        r.family.name(),
        r.n,
        r.actual_n,
        r.prover.tag(),
        r.trial,
        r.gen_seed,
        r.run_seed,
        r.accepted,
        r.rounds,
        r.proof_size_bits,
        r.per_round_max_bits,
        r.coin_bits,
        r.rejections,
    )
}

#[test]
fn parallel_and_serial_sweeps_produce_identical_records() {
    let spec = demo_spec();
    let serial = Engine::with_threads(1).run(&spec);
    let parallel = Engine::with_threads(4).run(&spec);

    // Records: same count, same grid order, same content field by field.
    assert_eq!(serial.records.len(), parallel.records.len());
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(timeless(a), timeless(b));
    }

    // Quarantined failures (the injected panics) match too.
    assert_eq!(serial.failures.len(), parallel.failures.len());
    for (a, b) in serial.failures.iter().zip(&parallel.failures) {
        assert_eq!(
            (a.index, a.n, a.trial, a.attempts, a.payload.clone()),
            (b.index, b.n, b.trial, b.attempts, b.payload.clone()),
        );
    }

    // And the serialized aggregate document is byte-identical.
    assert_eq!(aggregate_json(&spec, &serial), aggregate_json(&spec, &parallel));
}

/// The watchdog deadline degrades gracefully and deterministically: with
/// a zero deadline every job is classified as a timeout (identically at
/// any worker count), and the failure kinds survive into the JSON sink.
#[test]
fn watchdog_timeouts_are_deterministic_across_thread_counts() {
    use pdip_engine::FailureKind;
    use std::time::Duration;
    let spec = SweepSpec { job_deadline: Some(Duration::ZERO), ..demo_spec() };
    let serial = Engine::with_threads(1).run(&spec);
    let parallel = Engine::with_threads(4).run(&spec);

    assert!(serial.records.is_empty(), "zero deadline must time out every completed job");
    assert_eq!(serial.failures.len(), parallel.failures.len());
    for (a, b) in serial.failures.iter().zip(&parallel.failures) {
        assert_eq!((a.index, a.kind, a.attempts), (b.index, b.kind, b.attempts));
    }
    // Injected panics keep their own kind; completed-but-slow jobs the
    // watchdog's. Both counters land in the metrics split.
    assert!(serial.failures.iter().any(|f| f.kind == FailureKind::Panicked));
    assert!(serial.failures.iter().any(|f| f.kind == FailureKind::TimedOut));
    assert_eq!(
        serial.metrics.quarantined + serial.metrics.timed_out,
        serial.metrics.failures,
        "failure split must sum to the total"
    );
    assert_eq!(serial.metrics.quarantined, parallel.metrics.quarantined);
    assert_eq!(serial.metrics.timed_out, parallel.metrics.timed_out);
    assert_eq!(aggregate_json(&spec, &serial), aggregate_json(&spec, &parallel));
}

#[test]
fn record_stream_is_sorted_in_grid_order() {
    let outcome = Engine::with_threads(4).run(&demo_spec());
    for w in outcome.records.windows(2) {
        assert!(w[0].index < w[1].index, "records must come back sorted by grid index");
    }
}

proptest! {
    /// The per-job seed stream is injective over any window the engine
    /// can realistically enumerate: distinct job indices never produce
    /// the same seed, and the GEN/RUN sub-seeds of a job never collide
    /// with each other either.
    #[test]
    fn job_seed_stream_never_collides(
        base in 0u64..u64::MAX,
        i in 0u64..1_000_000,
        j in 0u64..1_000_000,
    ) {
        if i != j {
            prop_assert_ne!(job_seed(base, i), job_seed(base, j));
        }
        let s = job_seed(base, i);
        prop_assert_ne!(sub_seed(s, 1), sub_seed(s, 2));
    }
}
