//! Byte-identity of the intra-job parallel round across worker counts.
//!
//! The round's per-node loops (label decode, structure checks,
//! spanning-tree checks, nesting checks) run on `pdip_core::par`'s chunk
//! grid. The contract: captured transcripts, results and sweep records
//! are byte-identical whether the round runs on 1, 2 or 4 intra-job
//! workers — and a sweep's pool workers always pin their rounds serial,
//! so across-job parallelism composes with the knob without nesting.

use pdip_core::{par, RunResult};
use pdip_engine::{aggregate_json, Engine, Family, ProverSpec, SweepSpec, YesInstance};
use pdip_protocols::replay::{capture_run, diff_transcripts};
use pdip_protocols::{PopParams, Transport};
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the process-global intra-worker knob.
static WORKER_KNOB: Mutex<()> = Mutex::new(());

fn lock_knob() -> MutexGuard<'static, ()> {
    WORKER_KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

/// A full comparable rendering of a run: verdict, stats, rejection
/// stream (order, reasons and kinds included).
fn render(res: &RunResult) -> String {
    format!("{res:?}")
}

#[test]
fn round_transcripts_identical_at_worker_counts_1_2_4() {
    let _knob = lock_knob();
    // Families covering every parallelized loop: the path-outerplanarity
    // round runs them directly; embedded planarity adds the reduction
    // (arena-backed) in front; planarity adds rotation recovery.
    for family in [Family::PathOuterplanar, Family::EmbeddedPlanarity, Family::Planarity] {
        let inst = YesInstance::generate(family, 600, 0xA11CE);
        inst.with_protocol(PopParams::default(), Transport::Native, |p| {
            // Honest run plus every cheat: the cheats exercise the
            // rejection paths, whose order must also be chunk-invariant.
            let strategies: Vec<Option<usize>> =
                std::iter::once(None).chain((0..p.cheat_names().len()).map(Some)).collect();
            for &cheat in &strategies {
                par::set_intra_workers(1);
                let (base_res, base_tr) = capture_run(p, cheat, 7);
                for workers in [2usize, 4] {
                    par::set_intra_workers(workers);
                    let (res, tr) = capture_run(p, cheat, 7);
                    assert_eq!(
                        render(&res),
                        render(&base_res),
                        "{family:?} cheat={cheat:?} diverged at {workers} workers"
                    );
                    assert_eq!(
                        diff_transcripts(&base_tr, &tr),
                        None,
                        "{family:?} cheat={cheat:?} transcript diverged at {workers} workers"
                    );
                }
                par::set_intra_workers(1);
            }
        });
    }
}

#[test]
fn sweeps_pin_intra_workers_serial() {
    let _knob = lock_knob();
    let spec = SweepSpec {
        families: vec![Family::PathOuterplanar, Family::EmbeddedPlanarity],
        sizes: vec![48],
        provers: vec![ProverSpec::Honest, ProverSpec::AllCheats],
        trials: 2,
        base_seed: 0xbead,
        ..SweepSpec::default()
    };
    par::set_intra_workers(1);
    let baseline = Engine::with_threads(1).run(&spec);
    // A parallel sweep with the intra knob wide open: pool workers install
    // the serial guard, so no second thread layer opens and the records
    // still match the all-serial baseline byte for byte.
    par::set_intra_workers(4);
    let nested = Engine::with_threads(2).run(&spec);
    par::set_intra_workers(1);
    assert_eq!(aggregate_json(&spec, &baseline), aggregate_json(&spec, &nested));
}
