//! Property-based audit of the chaos harness on tiny instances.
//!
//! The contract under test (experiment E9, ISSUE satellite): for *any*
//! target, mutator kind and seed pair on instances of size n ≤ 12, a
//! single-site mutation of an honest transcript is
//!
//! * never accepted when the corruption class is deterministic (the
//!   structural checks are coin-independent),
//! * never a panic (hardened verifiers reject structured corruption
//!   instead of unwinding), and
//! * reproducible: the same (target, n, gen seed, kind, run seed) tuple
//!   classifies identically on every execution.
//!
//! Probabilistic classes may miss on individual seeds — that is the ε
//! budget, audited in aggregate by `pdip chaos` — so here they are only
//! required to be panic-free and reproducible.

use pdip_engine::chaos::{build_target, Determinism, TamperOutcome, MUTATORS, TARGETS};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn classify(
    target_idx: usize,
    kind_idx: usize,
    n: usize,
    gen_seed: u64,
    run_seed: u64,
) -> Result<Option<(TamperOutcome, Determinism)>, String> {
    let id = TARGETS[target_idx];
    let kind = MUTATORS[kind_idx];
    catch_unwind(AssertUnwindSafe(|| {
        let target = build_target(id, n, gen_seed);
        if !target.supports(kind) {
            return None;
        }
        Some((target.run_mutated(kind, run_seed), target.determinism(kind)))
    }))
    .map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic".into());
        format!("{} / {} panicked at n={n}: {msg}", id.name(), kind.name())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// Any single-site mutation on a tiny instance is detected (if its
    /// class is deterministic), a budgeted miss, or a no-op — and never
    /// a panic, whatever the seeds.
    #[test]
    fn single_site_mutations_are_classified_not_panicked(
        target_idx in 0usize..TARGETS.len(),
        kind_idx in 0usize..MUTATORS.len(),
        n in 6usize..=12,
        gen_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
    ) {
        match classify(target_idx, kind_idx, n, gen_seed, run_seed) {
            Err(msg) => prop_assert!(false, "{}", msg),
            Ok(None) => {} // unsupported kind for this target: skipped
            Ok(Some((outcome, determinism))) => {
                if determinism == Determinism::Deterministic {
                    prop_assert!(
                        outcome != TamperOutcome::Miss,
                        "{} / {}: deterministic corruption accepted at \
                         n={n} gen={gen_seed} run={run_seed}",
                        TARGETS[target_idx].name(),
                        MUTATORS[kind_idx].name(),
                    );
                }
            }
        }
    }

    /// The chaos path is a pure function of its seeds: re-running the
    /// same tuple classifies identically.
    #[test]
    fn chaos_classification_is_reproducible(
        target_idx in 0usize..TARGETS.len(),
        kind_idx in 0usize..MUTATORS.len(),
        n in 6usize..=12,
        gen_seed in 0u64..u64::MAX,
        run_seed in 0u64..u64::MAX,
    ) {
        let a = classify(target_idx, kind_idx, n, gen_seed, run_seed);
        let b = classify(target_idx, kind_idx, n, gen_seed, run_seed);
        prop_assert_eq!(a, b);
    }
}
