//! Snapshot tests for the report layer: the aligned-table renderer and
//! the `[engine]` summary line, captured byte-for-byte through a
//! buffered [`Reporter`]. These strings are the stdout contract of the
//! experiment binaries (E1–E3, `pdip sweep`/`trace`), so format drift
//! must be a deliberate, test-visible change.

use pdip_engine::{Engine, Family, ProverSpec, Reporter, SweepSpec};

#[test]
fn table_snapshot_is_stable() {
    let mut rep = Reporter::buffered();
    rep.table(
        &["protocol", "n", "bits"],
        &[
            vec!["planarity".into(), "64".into(), "1165".into()],
            vec!["sp".into(), "1024".into(), "253".into()],
        ],
    );
    // Built with concat! — a `\`-continued literal would strip the
    // significant leading padding off each line.
    let expected = concat!(
        " protocol     n  bits  \n",
        "-----------------------\n",
        "planarity    64  1165  \n",
        "       sp  1024   253  \n",
    );
    assert_eq!(rep.into_string(), expected);
}

#[test]
fn summary_line_snapshot_through_reporter() {
    let spec = SweepSpec {
        families: vec![Family::PathOuterplanar],
        sizes: vec![32],
        provers: vec![ProverSpec::Honest],
        trials: 2,
        base_seed: 9,
        ..SweepSpec::default()
    };
    let outcome = Engine::with_threads(2).run(&spec);
    let mut rep = Reporter::buffered();
    rep.summary(&outcome.metrics);
    let got = rep.into_string();
    // Wall time and throughput are scheduling-dependent; everything
    // before them is the deterministic prefix of the contract.
    assert!(
        got.starts_with(
            "[engine] 2 jobs, 0 failures (0 quarantined, 0 timed out), 0 retries, 2 threads, "
        ),
        "summary line drifted: {got}"
    );
    // The memory tail reports VmHWM (present on Linux) and the allocator
    // peak ("untracked" here: test binaries install no tracking
    // allocator).
    assert!(got.trim_end().ends_with("alloc peak untracked"), "summary line drifted: {got}");
    assert!(got.contains("peak rss "), "summary line drifted: {got}");
}

#[test]
fn quiet_reporter_silences_table_and_summary() {
    let mut rep = Reporter::from_quiet_flag(true);
    rep.line("header");
    rep.table(&["a"], &[vec!["1".into()]]);
    assert_eq!(rep.into_string(), "");
}
