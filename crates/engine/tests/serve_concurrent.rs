//! The concurrent serve front-end's failure semantics, end-to-end over
//! real localhost sockets: connection isolation, structured fault
//! classification, deadlines, busy backpressure, panic containment,
//! graceful drain, and thread-count-invariant responses.

use pdip_engine::chaos::Mutator;
use pdip_engine::{
    decode_response, panic_blob, read_frame, spawn_server, write_frame, Gate, Response,
    ServeConfig, Status, YesInstance,
};
use pdip_engine::{Family, E13_SEED};
use pdip_protocols::{PopParams, Transport};
use pdip_wire::WireInstance;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

const REQ_VERIFY: u8 = 0x01;
const REQ_SHUTDOWN: u8 = 0x7f;

fn honest_blob(seed: u64) -> Vec<u8> {
    let inst = match YesInstance::generate(Family::PathOuterplanar, 16, seed) {
        YesInstance::Pop(i) => WireInstance::Pop(i),
        _ => unreachable!(),
    };
    pdip_wire::Transcript::record(
        inst,
        PopParams::default(),
        Transport::Simulated,
        0,
        seed,
        seed ^ 1,
    )
    .encode()
}

fn connect(port: u16) -> TcpStream {
    let s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    s
}

fn send_verify(s: &mut TcpStream, blob: &[u8]) {
    let mut f = Vec::with_capacity(1 + blob.len());
    f.push(REQ_VERIFY);
    f.extend_from_slice(blob);
    write_frame(s, &f).expect("send verify");
    s.flush().expect("flush");
}

/// Reads exactly `n` responses, sorted by seq.
fn read_n(s: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = read_frame(s).expect("recv frame").unwrap_or_else(|| panic!("EOF at response {i}"));
        out.push(decode_response(&p).expect("decodable response"));
    }
    out.sort_by_key(|r| r.seq);
    out
}

fn small_cfg() -> ServeConfig {
    ServeConfig { threads: 2, queue_cap: 32, deadline: None, ..ServeConfig::default() }
}

#[test]
fn two_connections_each_get_their_own_answers() {
    let server = spawn_server(small_cfg()).expect("spawn");
    let good = honest_blob(1);
    let mut bad = good.clone();
    bad.truncate(bad.len() / 2);

    let mut a = connect(server.port());
    let mut b = connect(server.port());
    // Interleave submissions across the two connections; each has its
    // own seq space and must get exactly its own verdicts back.
    send_verify(&mut a, &good);
    send_verify(&mut b, &bad);
    send_verify(&mut a, &bad);
    send_verify(&mut b, &good);
    let ra = read_n(&mut a, 2);
    let rb = read_n(&mut b, 2);
    assert_eq!(ra[0].status, Status::Accept);
    assert_eq!(ra[1].status, Status::Malformed);
    assert_eq!(rb[0].status, Status::Malformed);
    assert_eq!(rb[1].status, Status::Accept);
    drop((a, b));
    let stats = server.stop().expect("clean stop");
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.malformed, 2);
    assert_eq!(stats.connections, 2);
    assert_eq!(stats.conn_faults, 0);
}

#[test]
fn connection_drop_mid_response_leaves_others_unharmed() {
    let server = spawn_server(small_cfg()).expect("spawn");
    let good = honest_blob(2);

    // The dropper submits work and vanishes without reading anything.
    let mut dropper = connect(server.port());
    for _ in 0..4 {
        send_verify(&mut dropper, &good);
    }
    drop(dropper);

    // The victim's full round-trip proves the serving threads recycled.
    let mut victim = connect(server.port());
    for _ in 0..3 {
        send_verify(&mut victim, &good);
    }
    let rv = read_n(&mut victim, 3);
    assert!(rv.iter().all(|r| r.status == Status::Accept), "victim must see only accepts");
    drop(victim);

    let stats = server.stop().expect("server must survive a mid-response drop");
    // Every submitted request was verified even though the dropper's
    // responses had nowhere to go.
    assert_eq!(stats.accepted, 7);
}

#[test]
fn half_written_frame_is_a_structured_conn_error() {
    let server = spawn_server(small_cfg()).expect("spawn");

    // Declare 80 payload bytes, deliver 10, half-close: the read side
    // stays open for the structured answer.
    let mut attacker = connect(server.port());
    attacker.write_all(&80u32.to_le_bytes()).expect("header");
    attacker.write_all(&[0xee; 10]).expect("partial payload");
    attacker.flush().expect("flush");
    attacker.shutdown(Shutdown::Write).expect("half-close");
    let r = read_n(&mut attacker, 1);
    assert_eq!(r[0].status, Status::ConnError);
    assert!(
        r[0].detail.starts_with("truncated-frame"),
        "expected truncated-frame class, got {:?}",
        r[0].detail
    );

    // A fresh connection is completely unaffected.
    let mut victim = connect(server.port());
    send_verify(&mut victim, &honest_blob(3));
    assert_eq!(read_n(&mut victim, 1)[0].status, Status::Accept);
    drop((attacker, victim));

    let stats = server.stop().expect("clean stop");
    assert_eq!(stats.conn_faults, 1);
    assert_eq!(stats.accepted, 1);
}

#[test]
fn slow_loris_cannot_pin_a_serving_thread() {
    let cfg = ServeConfig { read_deadline: Some(Duration::from_millis(60)), ..small_cfg() };
    let server = spawn_server(cfg).expect("spawn");

    // Two header bytes, then silence: the per-frame deadline must cut
    // the connection loose with a read-stall classification.
    let mut loris = connect(server.port());
    loris.write_all(&[4, 0]).expect("partial header");
    loris.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(200));
    let r = read_n(&mut loris, 1);
    assert_eq!(r[0].status, Status::ConnError);
    assert!(r[0].detail.starts_with("read-stall"), "got {:?}", r[0].detail);

    // The serving capacity is free again.
    let mut after = connect(server.port());
    send_verify(&mut after, &honest_blob(4));
    assert_eq!(read_n(&mut after, 1)[0].status, Status::Accept);
    drop((loris, after));
    let stats = server.stop().expect("clean stop");
    assert_eq!(stats.conn_faults, 1);
}

#[test]
fn busy_backpressure_is_exact_and_every_request_is_answered() {
    let gate = Gate::closed();
    let cfg = ServeConfig {
        threads: 2,
        queue_cap: 2,
        deadline: None,
        hold: Some(gate.clone()),
        ..ServeConfig::default()
    };
    let server = spawn_server(cfg).expect("spawn");
    let blob = honest_blob(5);
    let mut s = connect(server.port());
    for _ in 0..5 {
        send_verify(&mut s, &blob);
    }
    // Workers held: the 3 over-capacity rejections stream back first.
    let busy = read_n(&mut s, 3);
    assert!(busy.iter().all(|r| r.status == Status::Busy));
    assert_eq!(busy.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
    gate.open();
    let done = read_n(&mut s, 2);
    assert_eq!(done.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1]);
    assert!(done.iter().all(|r| r.status == Status::Accept));
    drop(s);
    let stats = server.stop().expect("clean stop");
    assert_eq!(stats.busy, 3);
    assert_eq!(stats.accepted, 2);
}

#[test]
fn worker_panic_poisons_only_its_own_request() {
    let cfg = ServeConfig { panic_token: Some(0xbad_cafe), ..small_cfg() };
    let server = spawn_server(cfg).expect("spawn");
    let mut s = connect(server.port());
    send_verify(&mut s, &panic_blob(0xbad_cafe));
    send_verify(&mut s, &honest_blob(6));
    let r = read_n(&mut s, 2);
    assert_eq!(r[0].status, Status::Malformed);
    assert!(r[0].detail.starts_with("panic:"), "got {:?}", r[0].detail);
    assert_eq!(r[1].status, Status::Accept);
    drop(s);
    let stats = server.stop().expect("the panic must not escape the worker");
    assert_eq!(stats.panics, 1);
}

#[test]
fn graceful_drain_answers_every_accepted_request() {
    let gate = Gate::closed();
    let cfg = ServeConfig {
        threads: 2,
        queue_cap: 16,
        deadline: None,
        drain_deadline: Duration::from_secs(10),
        hold: Some(gate.clone()),
        ..ServeConfig::default()
    };
    let server = spawn_server(cfg).expect("spawn");
    let blob = honest_blob(7);
    let mut s = connect(server.port());
    for _ in 0..4 {
        send_verify(&mut s, &blob);
    }
    write_frame(&mut s, &[REQ_SHUTDOWN]).expect("send shutdown");
    s.flush().expect("flush");
    // Workers are held, so the ack arrives before any verdict.
    let first = read_frame(&mut s).expect("recv").expect("ack frame");
    assert_eq!(decode_response(&first).expect("decodes").status, Status::ShutdownAck);
    gate.open();
    // All four queued verdicts, then the final stats frame.
    let mut accepts = 0;
    let mut stats_frame = None;
    for _ in 0..5 {
        let p = read_frame(&mut s).expect("recv").expect("frame");
        let r = decode_response(&p).expect("decodes");
        match r.status {
            Status::Accept => accepts += 1,
            Status::Stats => stats_frame = Some(r),
            other => panic!("unexpected {} during drain", other.name()),
        }
    }
    assert_eq!(accepts, 4, "drain must answer every accepted request");
    let stats_frame = stats_frame.expect("final stats frame");
    assert_eq!(stats_frame.seq, u64::MAX);
    assert!(stats_frame.detail.contains("drained=ok"), "got {:?}", stats_frame.detail);
    assert!(stats_frame.detail.contains("accept=4"));
    let stats = server.stop().expect("clean stop");
    assert_eq!(stats.accepted, 4);
}

#[test]
fn responses_are_identical_at_one_and_four_workers() {
    // A deterministic mixed batch (honest, corrupted, unknown-tag) per
    // thread count; seq-sorted response records must match exactly.
    let run = |threads: usize| -> Vec<(u64, u8, String)> {
        let cfg = ServeConfig { threads, queue_cap: 64, deadline: None, ..ServeConfig::default() };
        let server = spawn_server(cfg).expect("spawn");
        let mut s = connect(server.port());
        let mut m = Mutator::new(E13_SEED ^ 0x1234);
        for k in 0..12u64 {
            let mut blob = honest_blob(k % 3);
            if k % 4 == 3 {
                let i = m.index(blob.len());
                blob[i] ^= 1 << m.index(8);
            }
            send_verify(&mut s, &blob);
        }
        let out =
            read_n(&mut s, 12).into_iter().map(|r| (r.seq, r.status.code(), r.detail)).collect();
        drop(s);
        server.stop().expect("clean stop");
        out
    };
    assert_eq!(run(1), run(4));
}
