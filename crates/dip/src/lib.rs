//! The distributed interactive proof (DIP) model of Kol–Oshman–Saxena, as
//! used by Gil & Parter's planarity protocols (PODC 2025).
//!
//! A DIP runs on a connected graph whose nodes form the distributed
//! verifier. Interaction alternates between *verifier rounds* (every node
//! draws a public random string for the prover) and *prover rounds* (the
//! prover assigns each node a label); after the last prover round each
//! node decides yes/no from its own coins, its own labels, and its
//! neighbors' labels only. The instance is accepted iff every node says
//! yes.
//!
//! This crate provides the shared plumbing: exact label-size accounting
//! ([`transcript::SizeStats`], the paper's "proof size" = longest honest
//! label), per-round label storage with tampering hooks for adversarial
//! provers, rejection bookkeeping, fixed-width random tags, and the
//! [`DipProtocol`] interface the experiment harness drives.

#![warn(missing_docs)]

pub mod bits;
pub mod capture;
pub mod outcome;
pub mod par;
pub mod protocol;
pub mod trace;
pub mod transcript;

pub use bits::{bits_for_domain, bits_for_max, Tag};
pub use capture::{ByteSink, CapturedRound, CapturedTranscript};
pub use outcome::{RejectReason, Rejections, RunResult, Verdict};
pub use protocol::{acceptance_rate, DipProtocol};
pub use trace::trace_stats;
pub use transcript::{neighbor_labels, LabelRound, RoundKind, SizeStats};
