//! Run outcomes: verdicts, rejection reasons and aggregated results.

use crate::transcript::SizeStats;
use pdip_graph::NodeId;

/// The global decision of the distributed verifier: accept iff *every*
/// node outputs yes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All nodes accepted.
    Accept,
    /// At least one node rejected.
    Reject,
}

impl Verdict {
    /// `Accept` iff `ok`.
    pub fn from_bool(ok: bool) -> Self {
        if ok {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }

    /// Whether the verdict is `Accept`.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// Classifies *why* a node rejected, so soundness audits can tell a
/// structural catch from a coin-dependent one.
///
/// A chaos/fault-injection sweep replays thousands of corrupted
/// transcripts; when a run accepts, the audit needs to know whether the
/// corruption class is one the verifier catches deterministically (then
/// an accept is a bug) or one caught only with probability ≥ 1 − ε over
/// the verifier's coins (then an accept is a soundness coin-flip miss,
/// budgeted by the theorem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectReason {
    /// A structural invariant was violated: malformed or truncated input,
    /// an out-of-range index, an edge that does not exist, an
    /// inconsistent commitment. Detection does not depend on the coins —
    /// re-running the same corrupted transcript rejects again.
    Malformed,
    /// A randomized check fired. Detection holds with probability
    /// ≥ 1 − ε over the verifier's coins per the protocol's soundness
    /// theorem, so the same corruption may survive another coin draw.
    Probabilistic,
}

/// The outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The collective decision.
    pub verdict: Verdict,
    /// Size statistics of the (honest-prover) labels.
    pub stats: SizeStats,
    /// Nodes that output 'no' (empty on accept), with a human-readable
    /// reason for the first few — invaluable when debugging soundness.
    pub rejections: Vec<(NodeId, String)>,
    /// The [`RejectReason`] of each entry in `rejections` (parallel
    /// vector, same length).
    pub kinds: Vec<RejectReason>,
}

impl RunResult {
    /// An accepting result.
    pub fn accept(stats: SizeStats) -> Self {
        RunResult { verdict: Verdict::Accept, stats, rejections: Vec::new(), kinds: Vec::new() }
    }

    /// A rejecting result with the recorded per-node reasons; reasons are
    /// classified [`RejectReason::Probabilistic`] (the conservative
    /// default — deterministic detection must be claimed explicitly via
    /// [`Rejections::reject_malformed`]).
    pub fn reject(stats: SizeStats, rejections: Vec<(NodeId, String)>) -> Self {
        debug_assert!(!rejections.is_empty());
        let kinds = vec![RejectReason::Probabilistic; rejections.len()];
        RunResult { verdict: Verdict::Reject, stats, rejections, kinds }
    }

    /// Whether the run accepted.
    pub fn accepted(&self) -> bool {
        self.verdict.accepted()
    }

    /// Whether any rejection is a deterministic structural catch.
    pub fn caught_malformed(&self) -> bool {
        self.kinds.contains(&RejectReason::Malformed)
    }

    /// The rejection entries with their classification, in recording
    /// order: `(node, reason, kind)`.
    pub fn classified_rejections(&self) -> impl Iterator<Item = (NodeId, &str, RejectReason)> {
        self.rejections
            .iter()
            .zip(self.kinds.iter())
            .map(|((v, reason), kind)| (*v, reason.as_str(), *kind))
    }
}

/// A per-node rejection collector used by decision procedures.
#[derive(Debug, Default, Clone)]
pub struct Rejections {
    items: Vec<(NodeId, String)>,
    kinds: Vec<RejectReason>,
    /// Count of recorded (non-elided, non-duplicate) rejections.
    recorded: usize,
}

/// Cap on stored reasons; beyond it one elision marker is kept.
const REASON_CAP: usize = 16;

impl Rejections {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a collector from the parallel `rejections`/`kinds`
    /// vectors of a finalized [`RunResult`], so a sharded verifier can
    /// [`Rejections::absorb`] per-block results the block runner already
    /// finalized.
    ///
    /// The recorded count is taken as `items.len()`: a count elided past
    /// the cap inside the source result is not recoverable from its
    /// vectors. That undercounts only [`Rejections::len`] — the stored
    /// entries, their kinds and the elision marker round-trip exactly,
    /// which is what the shard-merge byte-identity contract needs.
    ///
    /// # Panics
    /// Panics if the vectors' lengths differ.
    pub fn from_parts(items: Vec<(NodeId, String)>, kinds: Vec<RejectReason>) -> Self {
        assert_eq!(items.len(), kinds.len(), "rejections/kinds must be parallel");
        let recorded = items.len();
        Rejections { items, kinds, recorded }
    }

    /// Records that node `v` rejects for `reason`, classified `kind`.
    ///
    /// Duplicate `(node, reason)` pairs are recorded once: a node that
    /// trips the same check in several rounds still counts as a single
    /// rejection, so audits and stats are not double-counted (a repeat
    /// with a *stronger* kind upgrades the stored classification).
    /// Reasons beyond the first 16 distinct ones are dropped to bound
    /// memory.
    pub fn reject_as(&mut self, v: NodeId, kind: RejectReason, reason: impl Into<String>) {
        let reason = reason.into();
        if let Some(i) = self.items.iter().position(|(u, r)| *u == v && *r == reason) {
            if kind < self.kinds[i] {
                self.kinds[i] = kind;
            }
            return;
        }
        if self.items.len() < REASON_CAP {
            self.items.push((v, reason));
            self.kinds.push(kind);
            self.recorded += 1;
        } else if self.items.len() == REASON_CAP {
            self.items.push((v, "... further rejections elided".into()));
            self.kinds.push(kind);
            self.recorded += 1;
        } else {
            // Elided, but still classified (a Malformed catch past the
            // cap must not vanish from the audit).
            let last = self.kinds.len() - 1;
            if kind < self.kinds[last] {
                self.kinds[last] = kind;
            }
            self.recorded += 1;
        }
    }

    /// Records a coin-dependent rejection (see [`Rejections::reject_as`]
    /// for dedup and capping).
    pub fn reject(&mut self, v: NodeId, reason: impl Into<String>) {
        self.reject_as(v, RejectReason::Probabilistic, reason);
    }

    /// Records a deterministic structural rejection: the input is
    /// malformed in a way every coin draw detects.
    pub fn reject_malformed(&mut self, v: NodeId, reason: impl Into<String>) {
        self.reject_as(v, RejectReason::Malformed, reason);
    }

    /// Convenience: reject unless `cond` holds.
    pub fn check(&mut self, v: NodeId, cond: bool, reason: impl Fn() -> String) {
        if !cond {
            self.reject(v, reason());
        }
    }

    /// Convenience: structural variant of [`Rejections::check`].
    pub fn check_malformed(&mut self, v: NodeId, cond: bool, reason: impl Fn() -> String) {
        if !cond {
            self.reject_malformed(v, reason());
        }
    }

    /// Whether any node rejected.
    pub fn any(&self) -> bool {
        !self.items.is_empty()
    }

    /// The number of *distinct* recorded rejections (duplicates from the
    /// same node with the same reason count once; elided entries count).
    pub fn len(&self) -> usize {
        self.recorded
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Whether any recorded rejection is a deterministic structural one.
    pub fn any_malformed(&self) -> bool {
        self.kinds.contains(&RejectReason::Malformed)
    }

    /// Merges `other` into `self`, exactly as if every rejection recorded
    /// into `other` had been recorded into `self` directly, in order.
    ///
    /// This is the merge half of the chunked-verification pattern (see
    /// [`crate::par`]): each chunk of a per-node check loop collects into
    /// its own `Rejections`, and the chunks are absorbed in chunk order,
    /// reproducing the serial collector byte for byte. The equivalence
    /// requires that chunks partition the node domain — the same
    /// `(node, reason)` pair must not be recorded into two different
    /// chunks (per-node check loops satisfy this by construction); a
    /// cross-chunk duplicate would be deduplicated by the serial collector
    /// but double-counted past `other`'s elision cap.
    pub fn absorb(&mut self, other: Rejections) {
        // Entries `other` stored verbatim replay through `reject_as`,
        // which re-applies dedup, capping and kind upgrades against
        // `self`'s state. `other`'s elision marker (if any) is held back:
        // it summarizes, it was never a recorded rejection.
        let stored = other.items.len().min(REASON_CAP);
        let elided = other.recorded - stored;
        let mut it = other.items.into_iter().zip(other.kinds);
        for ((v, reason), kind) in it.by_ref().take(stored) {
            self.reject_as(v, kind, reason);
        }
        // Entries elided in `other` stay elided: the serial collector
        // would also have been at its cap by now (it saw `other`'s 16
        // stored entries first), so only their count, their strongest
        // classification and the marker — which carries the node of the
        // first elided entry — survive, exactly as in the serial run.
        if let Some((marker, kind)) = it.next() {
            debug_assert!(elided > 0);
            if self.items.len() == REASON_CAP {
                self.items.push(marker);
                self.kinds.push(kind);
            } else {
                let last = self.kinds.len() - 1;
                if kind < self.kinds[last] {
                    self.kinds[last] = kind;
                }
            }
            self.recorded += elided;
        }
    }

    /// Finalizes into a [`RunResult`].
    pub fn into_result(self, stats: SizeStats) -> RunResult {
        if self.items.is_empty() {
            RunResult::accept(stats)
        } else {
            debug_assert_eq!(self.items.len(), self.kinds.len());
            RunResult { verdict: Verdict::Reject, stats, rejections: self.items, kinds: self.kinds }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_bool_roundtrip() {
        assert!(Verdict::from_bool(true).accepted());
        assert!(!Verdict::from_bool(false).accepted());
    }

    #[test]
    fn rejections_collector() {
        let mut r = Rejections::new();
        assert!(!r.any());
        r.check(3, true, || "fine".into());
        assert!(!r.any());
        r.check(4, false, || "broken".into());
        assert!(r.any());
        let res = r.into_result(SizeStats::default());
        assert!(!res.accepted());
        assert_eq!(res.rejections[0].0, 4);
    }

    #[test]
    fn rejection_cap() {
        let mut r = Rejections::new();
        for v in 0..100 {
            r.reject(v, "x");
        }
        assert!(r.items.len() <= 17);
        assert_eq!(r.len(), 100, "capped entries still count");
    }

    #[test]
    fn duplicate_rejections_count_once() {
        let mut r = Rejections::new();
        for _round in 0..5 {
            r.reject(7, "depth residue mismatch");
        }
        assert!(r.any());
        assert_eq!(r.len(), 1, "same node + same reason must not double-count");
        // A different reason on the same node is a distinct rejection...
        r.reject(7, "arity mismatch");
        assert_eq!(r.len(), 2);
        // ...and the same reason on a different node too.
        r.reject(8, "depth residue mismatch");
        assert_eq!(r.len(), 3);
        let res = r.into_result(SizeStats::default());
        assert_eq!(res.rejections.len(), 3);
    }

    #[test]
    fn duplicate_upgrades_to_malformed() {
        let mut r = Rejections::new();
        r.reject(3, "bad arc");
        assert!(!r.any_malformed());
        // A structural repeat of the same finding upgrades its class.
        r.reject_malformed(3, "bad arc");
        assert!(r.any_malformed());
        assert_eq!(r.len(), 1);
        let res = r.into_result(SizeStats::default());
        assert!(res.caught_malformed());
        assert_eq!(res.classified_rejections().count(), 1);
    }

    /// The chunked-collector merge must equal the serial collector on any
    /// chunking of a per-node rejection stream.
    fn absorb_equals_serial(events: &[(NodeId, RejectReason, &str)], chunk: usize) {
        let mut serial = Rejections::new();
        for &(v, kind, reason) in events {
            serial.reject_as(v, kind, reason);
        }
        let mut merged = Rejections::new();
        for part in events.chunks(chunk.max(1)) {
            let mut local = Rejections::new();
            for &(v, kind, reason) in part {
                local.reject_as(v, kind, reason);
            }
            merged.absorb(local);
        }
        assert_eq!(merged.items, serial.items, "chunk={chunk}");
        assert_eq!(merged.kinds, serial.kinds, "chunk={chunk}");
        assert_eq!(merged.recorded, serial.recorded, "chunk={chunk}");
    }

    #[test]
    fn absorb_matches_serial_below_cap() {
        let events: Vec<_> =
            (0..10).map(|v| (v, RejectReason::Probabilistic, "coin miss")).collect();
        for chunk in [1, 3, 4, 10, 100] {
            absorb_equals_serial(&events, chunk);
        }
    }

    #[test]
    fn absorb_matches_serial_across_elision_cap() {
        // 40 distinct rejections (node-keyed, as chunked check loops
        // produce), mixed kinds: the marker, its node, its upgraded kind
        // and the recorded count must all match the serial collector.
        let events: Vec<_> = (0..40)
            .map(|v| {
                let kind =
                    if v % 7 == 3 { RejectReason::Malformed } else { RejectReason::Probabilistic };
                (v, kind, if v % 2 == 0 { "even check" } else { "odd check" })
            })
            .collect();
        for chunk in [1, 2, 5, 16, 17, 23, 40] {
            absorb_equals_serial(&events, chunk);
        }
    }

    #[test]
    fn from_parts_roundtrips_a_finalized_result() {
        let mut r = Rejections::new();
        r.reject(2, "coin miss");
        r.reject_malformed(5, "truncated label");
        let (items, kinds) = (r.items.clone(), r.kinds.clone());
        let res = r.into_result(SizeStats::default());
        let rebuilt = Rejections::from_parts(res.rejections, res.kinds);
        assert_eq!(rebuilt.items, items);
        assert_eq!(rebuilt.kinds, kinds);
        assert_eq!(rebuilt.recorded, 2);
        // And it keeps absorbing as a live collector.
        let mut combined = Rejections::new();
        combined.absorb(rebuilt);
        assert_eq!(combined.len(), 2);
        assert!(combined.any_malformed());
    }

    #[test]
    fn absorb_empty_is_identity() {
        let mut r = Rejections::new();
        r.reject(1, "x");
        r.absorb(Rejections::new());
        assert_eq!(r.len(), 1);
        let mut empty = Rejections::new();
        empty.absorb(std::mem::take(&mut r));
        assert_eq!(empty.len(), 1);
        assert_eq!(empty.items[0].0, 1);
    }

    #[test]
    fn malformed_kind_survives_elision() {
        let mut r = Rejections::new();
        for v in 0..30 {
            r.reject(v, "coin miss");
        }
        // Past the cap: the entry is elided but the class is kept.
        r.reject_malformed(40, "truncated label");
        assert!(r.any_malformed());
        assert_eq!(r.len(), 31);
        let res = r.into_result(SizeStats::default());
        assert!(res.caught_malformed());
        assert_eq!(res.rejections.len(), res.kinds.len());
    }
}
