//! Run outcomes: verdicts, rejection reasons and aggregated results.

use crate::transcript::SizeStats;
use pdip_graph::NodeId;

/// The global decision of the distributed verifier: accept iff *every*
/// node outputs yes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All nodes accepted.
    Accept,
    /// At least one node rejected.
    Reject,
}

impl Verdict {
    /// `Accept` iff `ok`.
    pub fn from_bool(ok: bool) -> Self {
        if ok {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }

    /// Whether the verdict is `Accept`.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// Classifies *why* a node rejected, so soundness audits can tell a
/// structural catch from a coin-dependent one.
///
/// A chaos/fault-injection sweep replays thousands of corrupted
/// transcripts; when a run accepts, the audit needs to know whether the
/// corruption class is one the verifier catches deterministically (then
/// an accept is a bug) or one caught only with probability ≥ 1 − ε over
/// the verifier's coins (then an accept is a soundness coin-flip miss,
/// budgeted by the theorem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectReason {
    /// A structural invariant was violated: malformed or truncated input,
    /// an out-of-range index, an edge that does not exist, an
    /// inconsistent commitment. Detection does not depend on the coins —
    /// re-running the same corrupted transcript rejects again.
    Malformed,
    /// A randomized check fired. Detection holds with probability
    /// ≥ 1 − ε over the verifier's coins per the protocol's soundness
    /// theorem, so the same corruption may survive another coin draw.
    Probabilistic,
}

/// The outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The collective decision.
    pub verdict: Verdict,
    /// Size statistics of the (honest-prover) labels.
    pub stats: SizeStats,
    /// Nodes that output 'no' (empty on accept), with a human-readable
    /// reason for the first few — invaluable when debugging soundness.
    pub rejections: Vec<(NodeId, String)>,
    /// The [`RejectReason`] of each entry in `rejections` (parallel
    /// vector, same length).
    pub kinds: Vec<RejectReason>,
}

impl RunResult {
    /// An accepting result.
    pub fn accept(stats: SizeStats) -> Self {
        RunResult { verdict: Verdict::Accept, stats, rejections: Vec::new(), kinds: Vec::new() }
    }

    /// A rejecting result with the recorded per-node reasons; reasons are
    /// classified [`RejectReason::Probabilistic`] (the conservative
    /// default — deterministic detection must be claimed explicitly via
    /// [`Rejections::reject_malformed`]).
    pub fn reject(stats: SizeStats, rejections: Vec<(NodeId, String)>) -> Self {
        debug_assert!(!rejections.is_empty());
        let kinds = vec![RejectReason::Probabilistic; rejections.len()];
        RunResult { verdict: Verdict::Reject, stats, rejections, kinds }
    }

    /// Whether the run accepted.
    pub fn accepted(&self) -> bool {
        self.verdict.accepted()
    }

    /// Whether any rejection is a deterministic structural catch.
    pub fn caught_malformed(&self) -> bool {
        self.kinds.contains(&RejectReason::Malformed)
    }

    /// The rejection entries with their classification, in recording
    /// order: `(node, reason, kind)`.
    pub fn classified_rejections(&self) -> impl Iterator<Item = (NodeId, &str, RejectReason)> {
        self.rejections
            .iter()
            .zip(self.kinds.iter())
            .map(|((v, reason), kind)| (*v, reason.as_str(), *kind))
    }
}

/// A per-node rejection collector used by decision procedures.
#[derive(Debug, Default, Clone)]
pub struct Rejections {
    items: Vec<(NodeId, String)>,
    kinds: Vec<RejectReason>,
    /// Count of recorded (non-elided, non-duplicate) rejections.
    recorded: usize,
}

/// Cap on stored reasons; beyond it one elision marker is kept.
const REASON_CAP: usize = 16;

impl Rejections {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that node `v` rejects for `reason`, classified `kind`.
    ///
    /// Duplicate `(node, reason)` pairs are recorded once: a node that
    /// trips the same check in several rounds still counts as a single
    /// rejection, so audits and stats are not double-counted (a repeat
    /// with a *stronger* kind upgrades the stored classification).
    /// Reasons beyond the first 16 distinct ones are dropped to bound
    /// memory.
    pub fn reject_as(&mut self, v: NodeId, kind: RejectReason, reason: impl Into<String>) {
        let reason = reason.into();
        if let Some(i) = self.items.iter().position(|(u, r)| *u == v && *r == reason) {
            if kind < self.kinds[i] {
                self.kinds[i] = kind;
            }
            return;
        }
        if self.items.len() < REASON_CAP {
            self.items.push((v, reason));
            self.kinds.push(kind);
            self.recorded += 1;
        } else if self.items.len() == REASON_CAP {
            self.items.push((v, "... further rejections elided".into()));
            self.kinds.push(kind);
            self.recorded += 1;
        } else {
            // Elided, but still classified (a Malformed catch past the
            // cap must not vanish from the audit).
            let last = self.kinds.len() - 1;
            if kind < self.kinds[last] {
                self.kinds[last] = kind;
            }
            self.recorded += 1;
        }
    }

    /// Records a coin-dependent rejection (see [`Rejections::reject_as`]
    /// for dedup and capping).
    pub fn reject(&mut self, v: NodeId, reason: impl Into<String>) {
        self.reject_as(v, RejectReason::Probabilistic, reason);
    }

    /// Records a deterministic structural rejection: the input is
    /// malformed in a way every coin draw detects.
    pub fn reject_malformed(&mut self, v: NodeId, reason: impl Into<String>) {
        self.reject_as(v, RejectReason::Malformed, reason);
    }

    /// Convenience: reject unless `cond` holds.
    pub fn check(&mut self, v: NodeId, cond: bool, reason: impl Fn() -> String) {
        if !cond {
            self.reject(v, reason());
        }
    }

    /// Convenience: structural variant of [`Rejections::check`].
    pub fn check_malformed(&mut self, v: NodeId, cond: bool, reason: impl Fn() -> String) {
        if !cond {
            self.reject_malformed(v, reason());
        }
    }

    /// Whether any node rejected.
    pub fn any(&self) -> bool {
        !self.items.is_empty()
    }

    /// The number of *distinct* recorded rejections (duplicates from the
    /// same node with the same reason count once; elided entries count).
    pub fn len(&self) -> usize {
        self.recorded
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Whether any recorded rejection is a deterministic structural one.
    pub fn any_malformed(&self) -> bool {
        self.kinds.contains(&RejectReason::Malformed)
    }

    /// Finalizes into a [`RunResult`].
    pub fn into_result(self, stats: SizeStats) -> RunResult {
        if self.items.is_empty() {
            RunResult::accept(stats)
        } else {
            debug_assert_eq!(self.items.len(), self.kinds.len());
            RunResult { verdict: Verdict::Reject, stats, rejections: self.items, kinds: self.kinds }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_bool_roundtrip() {
        assert!(Verdict::from_bool(true).accepted());
        assert!(!Verdict::from_bool(false).accepted());
    }

    #[test]
    fn rejections_collector() {
        let mut r = Rejections::new();
        assert!(!r.any());
        r.check(3, true, || "fine".into());
        assert!(!r.any());
        r.check(4, false, || "broken".into());
        assert!(r.any());
        let res = r.into_result(SizeStats::default());
        assert!(!res.accepted());
        assert_eq!(res.rejections[0].0, 4);
    }

    #[test]
    fn rejection_cap() {
        let mut r = Rejections::new();
        for v in 0..100 {
            r.reject(v, "x");
        }
        assert!(r.items.len() <= 17);
        assert_eq!(r.len(), 100, "capped entries still count");
    }

    #[test]
    fn duplicate_rejections_count_once() {
        let mut r = Rejections::new();
        for _round in 0..5 {
            r.reject(7, "depth residue mismatch");
        }
        assert!(r.any());
        assert_eq!(r.len(), 1, "same node + same reason must not double-count");
        // A different reason on the same node is a distinct rejection...
        r.reject(7, "arity mismatch");
        assert_eq!(r.len(), 2);
        // ...and the same reason on a different node too.
        r.reject(8, "depth residue mismatch");
        assert_eq!(r.len(), 3);
        let res = r.into_result(SizeStats::default());
        assert_eq!(res.rejections.len(), 3);
    }

    #[test]
    fn duplicate_upgrades_to_malformed() {
        let mut r = Rejections::new();
        r.reject(3, "bad arc");
        assert!(!r.any_malformed());
        // A structural repeat of the same finding upgrades its class.
        r.reject_malformed(3, "bad arc");
        assert!(r.any_malformed());
        assert_eq!(r.len(), 1);
        let res = r.into_result(SizeStats::default());
        assert!(res.caught_malformed());
        assert_eq!(res.classified_rejections().count(), 1);
    }

    #[test]
    fn malformed_kind_survives_elision() {
        let mut r = Rejections::new();
        for v in 0..30 {
            r.reject(v, "coin miss");
        }
        // Past the cap: the entry is elided but the class is kept.
        r.reject_malformed(40, "truncated label");
        assert!(r.any_malformed());
        assert_eq!(r.len(), 31);
        let res = r.into_result(SizeStats::default());
        assert!(res.caught_malformed());
        assert_eq!(res.rejections.len(), res.kinds.len());
    }
}
