//! Run outcomes: verdicts, rejection reasons and aggregated results.

use crate::transcript::SizeStats;
use pdip_graph::NodeId;

/// The global decision of the distributed verifier: accept iff *every*
/// node outputs yes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All nodes accepted.
    Accept,
    /// At least one node rejected.
    Reject,
}

impl Verdict {
    /// `Accept` iff `ok`.
    pub fn from_bool(ok: bool) -> Self {
        if ok {
            Verdict::Accept
        } else {
            Verdict::Reject
        }
    }

    /// Whether the verdict is `Accept`.
    pub fn accepted(&self) -> bool {
        matches!(self, Verdict::Accept)
    }
}

/// The outcome of one protocol run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The collective decision.
    pub verdict: Verdict,
    /// Size statistics of the (honest-prover) labels.
    pub stats: SizeStats,
    /// Nodes that output 'no' (empty on accept), with a human-readable
    /// reason for the first few — invaluable when debugging soundness.
    pub rejections: Vec<(NodeId, String)>,
}

impl RunResult {
    /// An accepting result.
    pub fn accept(stats: SizeStats) -> Self {
        RunResult { verdict: Verdict::Accept, stats, rejections: Vec::new() }
    }

    /// A rejecting result with the recorded per-node reasons.
    pub fn reject(stats: SizeStats, rejections: Vec<(NodeId, String)>) -> Self {
        debug_assert!(!rejections.is_empty());
        RunResult { verdict: Verdict::Reject, stats, rejections }
    }

    /// Whether the run accepted.
    pub fn accepted(&self) -> bool {
        self.verdict.accepted()
    }
}

/// A per-node rejection collector used by decision procedures.
#[derive(Debug, Default, Clone)]
pub struct Rejections {
    items: Vec<(NodeId, String)>,
}

impl Rejections {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that node `v` rejects for `reason` (reasons beyond the
    /// first 16 are dropped to bound memory).
    pub fn reject(&mut self, v: NodeId, reason: impl Into<String>) {
        if self.items.len() < 16 {
            self.items.push((v, reason.into()));
        } else if self.items.len() == 16 {
            self.items.push((v, "... further rejections elided".into()));
        }
    }

    /// Convenience: reject unless `cond` holds.
    pub fn check(&mut self, v: NodeId, cond: bool, reason: impl Fn() -> String) {
        if !cond {
            self.reject(v, reason());
        }
    }

    /// Whether any node rejected.
    pub fn any(&self) -> bool {
        !self.items.is_empty()
    }

    /// Finalizes into a [`RunResult`].
    pub fn into_result(self, stats: SizeStats) -> RunResult {
        if self.items.is_empty() {
            RunResult::accept(stats)
        } else {
            RunResult::reject(stats, self.items)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_bool_roundtrip() {
        assert!(Verdict::from_bool(true).accepted());
        assert!(!Verdict::from_bool(false).accepted());
    }

    #[test]
    fn rejections_collector() {
        let mut r = Rejections::new();
        assert!(!r.any());
        r.check(3, true, || "fine".into());
        assert!(!r.any());
        r.check(4, false, || "broken".into());
        assert!(r.any());
        let res = r.into_result(SizeStats::default());
        assert!(!res.accepted());
        assert_eq!(res.rejections[0].0, 4);
    }

    #[test]
    fn rejection_cap() {
        let mut r = Rejections::new();
        for v in 0..100 {
            r.reject(v, "x");
        }
        assert!(r.items.len() <= 17);
    }
}
