//! Bit accounting and fixed-width random tags.
//!
//! The paper measures a protocol by its *proof size*: the length in bits of
//! the longest label the honest prover assigns. Labels in this
//! implementation are structured Rust values; every field declares its
//! exact wire width through these helpers, and the runtime aggregates the
//! totals (`pdip_core::Transcript`).

/// Bits needed to encode one value from a domain of `k` distinct values
/// (`⌈log₂ k⌉`; 0 for `k ≤ 1`).
pub fn bits_for_domain(k: usize) -> usize {
    if k <= 1 {
        0
    } else {
        (usize::BITS - (k - 1).leading_zeros()) as usize
    }
}

/// Bits needed to encode an index in `0..=max` (`bits_for_domain(max + 1)`).
pub fn bits_for_max(max: usize) -> usize {
    bits_for_domain(max + 1)
}

/// A fixed-width random bitstring, e.g. the per-node names `s_v` of the
/// nesting-verification stage (§5 of the paper).
///
/// Comparing two tags compares both the value and the declared width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// The sampled value (only the low `bits` bits are meaningful).
    pub value: u64,
    /// The declared width in bits (≤ 64).
    pub bits: usize,
}

impl Tag {
    /// Samples a uniform `bits`-bit tag.
    ///
    /// # Panics
    /// Panics if `bits > 64`.
    pub fn random(bits: usize, rng: &mut impl rand::Rng) -> Self {
        assert!(bits <= 64, "tags are limited to 64 bits");
        let value = if bits == 0 {
            0
        } else if bits == 64 {
            rng.gen::<u64>()
        } else {
            rng.gen::<u64>() & ((1u64 << bits) - 1)
        };
        Tag { value, bits }
    }

    /// The all-zero tag of a given width (used as a placeholder by cheating
    /// provers).
    pub fn zero(bits: usize) -> Self {
        Tag { value: 0, bits }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn domain_bit_counts() {
        assert_eq!(bits_for_domain(0), 0);
        assert_eq!(bits_for_domain(1), 0);
        assert_eq!(bits_for_domain(2), 1);
        assert_eq!(bits_for_domain(3), 2);
        assert_eq!(bits_for_domain(4), 2);
        assert_eq!(bits_for_domain(5), 3);
        assert_eq!(bits_for_domain(1 << 20), 20);
        assert_eq!(bits_for_max(7), 3);
        assert_eq!(bits_for_max(8), 4);
    }

    #[test]
    fn tags_respect_width() {
        let mut rng = SmallRng::seed_from_u64(5);
        for bits in [0usize, 1, 5, 31, 64] {
            for _ in 0..20 {
                let t = Tag::random(bits, &mut rng);
                if bits < 64 {
                    assert!(t.value < (1u64 << bits).max(1));
                }
                assert_eq!(t.bits, bits);
            }
        }
    }

    #[test]
    fn tag_collisions_are_rare() {
        let mut rng = SmallRng::seed_from_u64(6);
        let tags: Vec<Tag> = (0..100).map(|_| Tag::random(40, &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = tags.iter().collect();
        assert_eq!(distinct.len(), 100);
    }
}
