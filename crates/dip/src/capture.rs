//! Prover-transcript capture hooks.
//!
//! The DIP model is defined by its communication: per-node, per-round
//! labels. The protocols in `pdip-protocols` materialize those labels as
//! typed Rust values deep inside their run functions; this module lets an
//! outer caller observe them as canonical byte blobs *without* changing
//! any protocol signature, RNG call order, or result.
//!
//! The mechanism is a thread-local capture scope, in the same spirit as
//! `pdip_graph::with_thread_scratch`:
//!
//! * [`capture`] installs a sink for the duration of a closure and
//!   returns whatever the protocol emitted as a [`CapturedTranscript`];
//! * protocol code calls [`emit`] at each prover round with a closure
//!   that serializes the round's labels into a [`ByteSink`]. When no
//!   capture scope is active the closure is **not evaluated** — a
//!   thread-local read and a branch, no allocation, so sweeps and
//!   benchmarks are unaffected.
//!
//! Nested protocol runs (outerplanarity spawning a path-outerplanarity
//! run per block, which in turn runs LR-sorting) emit into the same
//! active scope in deterministic execution order, so the captured round
//! sequence is itself a pure function of `(instance, prover, seed)`.
//! That determinism is what makes stored transcripts re-verifiable: see
//! `pdip-wire` and DESIGN.md §5.

use std::cell::RefCell;

/// Canonical little-endian byte encoder used by every [`emit`] call.
///
/// All multi-byte integers are little-endian; `usize` values are widened
/// to `u64` so payloads are identical across platforms.
#[derive(Debug, Default)]
pub struct ByteSink {
    buf: Vec<u8>,
}

impl ByteSink {
    /// A fresh empty sink.
    pub fn new() -> Self {
        ByteSink { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn put_usize(&mut self, x: usize) {
        self.put_u64(x as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, x: bool) {
        self.put_u8(u8::from(x));
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, xs: &[u8]) {
        self.buf.extend_from_slice(xs);
    }

    /// The accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// One captured prover-round message blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedRound {
    /// Stable stage name, e.g. `"lr/round1"` or `"lemma2.5/st"`.
    pub stage: String,
    /// Canonical little-endian payload ([`ByteSink`] encoding).
    pub payload: Vec<u8>,
}

/// The ordered sequence of prover-round blobs emitted during one capture
/// scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CapturedTranscript {
    /// Rounds in emission (= deterministic execution) order.
    pub rounds: Vec<CapturedRound>,
}

impl CapturedTranscript {
    /// Total payload bytes across all rounds.
    pub fn payload_bytes(&self) -> usize {
        self.rounds.iter().map(|r| r.payload.len()).sum()
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Vec<CapturedRound>>> = const { RefCell::new(None) };
}

/// Whether a capture scope is active on this thread.
pub fn is_capturing() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Emits one prover-round blob into the active capture scope, if any.
///
/// `build` is only evaluated when a scope is active, so emission points
/// on protocol hot paths cost a thread-local read and a branch.
pub fn emit(stage: &str, build: impl FnOnce(&mut ByteSink)) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(rounds) = slot.as_mut() {
            let mut sink = ByteSink::new();
            build(&mut sink);
            rounds.push(CapturedRound { stage: stage.to_string(), payload: sink.into_bytes() });
        }
    });
}

/// Restores the previously active scope even if the captured closure
/// panics (worker threads are reused across catch_unwind boundaries).
struct ScopeGuard {
    previous: Option<Vec<CapturedRound>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.previous.take();
        });
    }
}

/// Runs `f` with transcript capture installed on this thread and returns
/// its result together with everything emitted.
///
/// Scopes nest: an inner `capture` shadows the outer one for its
/// duration (the inner rounds are *not* replayed into the outer scope),
/// and the outer scope is restored afterwards — also on panic.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, CapturedTranscript) {
    let guard = ScopeGuard { previous: ACTIVE.with(|a| a.borrow_mut().replace(Vec::new())) };
    let out = f();
    let rounds = ACTIVE.with(|a| a.borrow_mut().replace(Vec::new())).unwrap_or_default();
    drop(guard);
    (out, CapturedTranscript { rounds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_scope_is_a_noop_and_lazy() {
        assert!(!is_capturing());
        let mut evaluated = false;
        emit("never", |_| evaluated = true);
        assert!(!evaluated, "build closure must not run without a scope");
    }

    #[test]
    fn capture_collects_rounds_in_order() {
        let ((), t) = capture(|| {
            emit("a", |s| s.put_u64(1));
            emit("b", |s| {
                s.put_u8(2);
                s.put_bool(true);
            });
        });
        assert_eq!(t.rounds.len(), 2);
        assert_eq!(t.rounds[0].stage, "a");
        assert_eq!(t.rounds[0].payload, 1u64.to_le_bytes().to_vec());
        assert_eq!(t.rounds[1].stage, "b");
        assert_eq!(t.rounds[1].payload, vec![2, 1]);
        assert!(!is_capturing());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let ((), outer) = capture(|| {
            emit("outer-1", |s| s.put_u8(1));
            let ((), inner) = capture(|| emit("inner", |s| s.put_u8(9)));
            assert_eq!(inner.rounds.len(), 1);
            emit("outer-2", |s| s.put_u8(2));
        });
        let stages: Vec<&str> = outer.rounds.iter().map(|r| r.stage.as_str()).collect();
        assert_eq!(stages, ["outer-1", "outer-2"]);
    }

    #[test]
    fn panic_inside_capture_restores_the_scope() {
        let caught = std::panic::catch_unwind(|| {
            capture(|| {
                emit("x", |s| s.put_u8(0));
                panic!("boom");
            })
        });
        assert!(caught.is_err());
        assert!(!is_capturing(), "panicked scope must not leak");
    }
}
