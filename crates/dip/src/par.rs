//! Intra-job parallelism: deterministic chunked work-splitting.
//!
//! The sweep engine parallelizes *across* jobs; this module parallelizes
//! *within* one job — the per-node work of a single round (label decode,
//! per-node commitment checks) — without changing a single output byte.
//! Three rules make that safe:
//!
//! * **Worker-count-independent chunking.** The index range `0..len` is
//!   cut into fixed-size chunks whose boundaries depend only on `len` and
//!   the grain, never on how many threads run. Workers *claim* chunks
//!   dynamically (an atomic cursor, for load balance), but what a chunk
//!   *is* never varies.
//! * **Chunk-order merge.** Results are reassembled by chunk index, so the
//!   output of [`map_chunks`] is identical to running the chunks in a
//!   serial `for` loop. Anything order-sensitive downstream (rejection
//!   order, captured transcripts, `RunRecord`s) sees the serial order.
//! * **No nested pools.** The sweep engine's worker threads install a
//!   [`SerialGuard`]; any intra-job split reached from inside a pool
//!   worker runs serially on that worker. One machine, one level of
//!   parallelism, no oversubscription.
//!
//! The knob is process-global ([`set_intra_workers`]; the default is
//! *auto* — `available_parallelism()` capped at [`MAX_AUTO_WORKERS`]) so
//! single runs (CLI round benchmarks, one-shot verifications, the E11
//! scaling driver) engage the parallel path out of the box on multi-core
//! machines. Sweeps keep their across-job parallelism: the engine's pool
//! workers hold a [`SerialGuard`], so the auto default never nests a
//! second thread layer. With one effective worker every entry point
//! degenerates to the plain serial loop — same code path a round compiled
//! to before this module existed, and small inputs (`len <= grain`) stay
//! serial at any setting.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configured intra-job worker count (process-global). `0` is the *auto*
/// sentinel: resolve to [`auto_intra_workers`] at read time.
static INTRA_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cap on the auto-resolved worker count: intra-job chunks are
/// memory-bandwidth bound well before 8 threads, and an uncapped default
/// would oversubscribe big CI boxes running the test harness in parallel.
pub const MAX_AUTO_WORKERS: usize = 8;

thread_local! {
    /// Depth of [`SerialGuard`]s active on this thread.
    static SERIAL_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Sets the process-global intra-job worker count (clamped to `>= 1`),
/// overriding the auto default.
///
/// Callers that own the whole process (the CLI, benchmarks) may pin
/// this; library code never should. The setting does not affect threads
/// currently inside a [`SerialGuard`].
pub fn set_intra_workers(k: usize) {
    INTRA_WORKERS.store(k.max(1), Ordering::Relaxed);
}

/// Restores the auto default ([`auto_intra_workers`] at read time).
pub fn set_intra_workers_auto() {
    INTRA_WORKERS.store(0, Ordering::Relaxed);
}

/// The worker count the auto default resolves to:
/// `available_parallelism()` capped at [`MAX_AUTO_WORKERS`].
pub fn auto_intra_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_AUTO_WORKERS)
}

/// The configured intra-job worker count (auto default resolved).
pub fn intra_workers() -> usize {
    match INTRA_WORKERS.load(Ordering::Relaxed) {
        0 => auto_intra_workers(),
        k => k,
    }
}

/// Worker count effective on *this* thread: 1 inside a [`SerialGuard`].
fn effective_workers() -> usize {
    if SERIAL_DEPTH.with(|d| d.get()) > 0 {
        1
    } else {
        intra_workers()
    }
}

/// RAII guard forcing all intra-job splits on this thread to run
/// serially. The sweep engine's pool workers hold one for their whole
/// life, so a parallel sweep never nests a second thread layer.
#[derive(Debug)]
pub struct SerialGuard(());

impl SerialGuard {
    /// Installs the guard on the current thread (nestable).
    pub fn install() -> Self {
        SERIAL_DEPTH.with(|d| d.set(d.get() + 1));
        SerialGuard(())
    }
}

impl Drop for SerialGuard {
    fn drop(&mut self) {
        SERIAL_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// The deterministic chunk grid: contiguous ranges of size `grain`
/// (clamped to `>= 1`) covering `0..len`, last one ragged. Depends only
/// on `len` and `grain` — never on the worker count.
pub fn chunk_ranges(len: usize, grain: usize) -> impl Iterator<Item = Range<usize>> {
    let grain = grain.max(1);
    (0..len.div_ceil(grain)).map(move |c| c * grain..((c + 1) * grain).min(len))
}

/// Applies `f` to every chunk of the deterministic grid and returns the
/// per-chunk results **in chunk order** — byte-for-byte the output of the
/// serial loop `chunk_ranges(len, grain).map(f).collect()`, at any worker
/// count.
///
/// `f` must be pure up to its range argument (no shared mutable state, no
/// RNG draws); chunk-local accumulators (scratch buffers, chunk-local
/// rejection collectors merged by the caller in chunk order) are the
/// intended pattern. A panic in any chunk propagates to the caller.
pub fn map_chunks<T, F>(len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    map_chunks_with(effective_workers(), len, grain, f)
}

/// [`map_chunks`] with an explicit worker count, bypassing the
/// process-global knob (but not the grid: chunk boundaries still depend
/// only on `len` and `grain`). For callers that must compare worker
/// counts side by side — the E11 scaling driver's 1-vs-K byte-identity
/// probe, thread-invariance tests — without racing other threads on
/// [`set_intra_workers`].
pub fn map_chunks_with<T, F>(workers: usize, len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let grain = grain.max(1);
    let nchunks = len.div_ceil(grain);
    let workers = workers.max(1).min(nchunks.max(1));
    if workers <= 1 || nchunks <= 1 {
        return chunk_ranges(len, grain).map(f).collect();
    }
    // Workers race on an atomic cursor for load balance; each returns its
    // claimed (chunk index, result) pairs and the merge re-sorts by chunk
    // index, so the output order is the grid order regardless of timing.
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(nchunks);
    slots.resize_with(nchunks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Intra-job workers never split further.
                    let _serial = SerialGuard::install();
                    let mut got: Vec<(usize, T)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= nchunks {
                            break;
                        }
                        got.push((c, f(c * grain..((c + 1) * grain).min(len))));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(got) => {
                    for (c, t) in got {
                        slots[c] = Some(t);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots.into_iter().map(|o| o.expect("every chunk claimed exactly once")).collect()
}

/// Applies `f` to every index of `0..len` and returns the results in
/// index order — the parallel equivalent of `(0..len).map(f).collect()`,
/// with the same determinism contract as [`map_chunks`].
pub fn map_indexed<T, F>(len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    map_indexed_with(effective_workers(), len, grain, f)
}

/// [`map_indexed`] with an explicit worker count; same contract as
/// [`map_chunks_with`].
pub fn map_indexed_with<T, F>(workers: usize, len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || len <= grain.max(1) {
        return (0..len).map(f).collect();
    }
    let per_chunk = map_chunks_with(workers, len, grain, |r| r.map(&f).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(len);
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Runs `f` with the global worker count set to `k`, restoring 1.
    fn with_workers<R>(k: usize, f: impl FnOnce() -> R) -> R {
        set_intra_workers(k);
        let r = f();
        set_intra_workers(1);
        r
    }

    #[test]
    fn grid_covers_range_exactly() {
        for (len, grain) in [(0, 3), (1, 3), (9, 3), (10, 3), (11, 3), (5, 100), (7, 0)] {
            let chunks: Vec<_> = chunk_ranges(len, grain).collect();
            let flat: Vec<usize> = chunks.iter().cloned().flatten().collect();
            assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len={len} grain={grain}");
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn map_indexed_matches_serial_at_any_worker_count() {
        let serial: Vec<u64> = (0..997).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for k in [1, 2, 3, 4, 8] {
            let par = with_workers(k, || map_indexed(997, 64, |i| (i as u64).wrapping_mul(0x9E37)));
            assert_eq!(par, serial, "workers={k}");
        }
    }

    #[test]
    fn map_chunks_preserves_chunk_order() {
        let serial: Vec<Range<usize>> = chunk_ranges(1000, 7).collect();
        for k in [1, 2, 4] {
            let par = with_workers(k, || map_chunks(1000, 7, |r| r));
            assert_eq!(par, serial, "workers={k}");
        }
    }

    #[test]
    fn auto_default_resolves_within_cap() {
        // Never touches the global knob: the sentinel resolution and the
        // cap are pure functions of the machine.
        let k = auto_intra_workers();
        assert!((1..=MAX_AUTO_WORKERS).contains(&k), "auto resolved to {k}");
        set_intra_workers_auto();
        assert_eq!(intra_workers(), k, "0 sentinel must resolve to auto");
        set_intra_workers(1);
    }

    #[test]
    fn explicit_worker_variants_match_serial_without_global_knob() {
        // map_*_with must not read (or require) the process-global knob.
        let f = |i: usize| (i as u64).wrapping_mul(0x51_7C);
        let serial: Vec<u64> = (0..1203).map(f).collect();
        let grid: Vec<Range<usize>> = chunk_ranges(1203, 31).collect();
        for k in [1, 2, 4, 8, 64] {
            assert_eq!(map_indexed_with(k, 1203, 31, f), serial, "workers={k}");
            assert_eq!(map_chunks_with(k, 1203, 31, |r| r), grid, "workers={k}");
        }
    }

    #[test]
    fn serial_guard_disables_splitting() {
        with_workers(4, || {
            let _g = SerialGuard::install();
            assert_eq!(effective_workers(), 1);
            // Still correct, just serial.
            let out = map_indexed(100, 10, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        });
        assert_eq!(SERIAL_DEPTH.with(|d| d.get()), 0, "guard must restore depth");
    }

    #[test]
    fn workers_inside_chunks_are_serial() {
        // A nested map_indexed inside a chunk must not spawn more threads
        // (it cannot deadlock or oversubscribe) and must stay correct.
        let out = with_workers(4, || {
            map_chunks(8, 2, |r| {
                r.map(|i| map_indexed(3, 1, move |j| i * 10 + j)).collect::<Vec<_>>()
            })
        });
        let flat: Vec<usize> = out.into_iter().flatten().flatten().collect();
        let serial: Vec<usize> = (0..8).flat_map(|i| (0..3).map(move |j| i * 10 + j)).collect();
        assert_eq!(flat, serial);
    }

    #[test]
    fn chunk_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_workers(2, || {
                map_chunks(10, 1, |r| {
                    assert!(r.start != 7, "boom");
                    r.start
                })
            })
        });
        assert!(caught.is_err());
        set_intra_workers(1);
    }

    proptest! {
        /// The parallel output equals the serial output for arbitrary
        /// (len, grain, workers) — the core byte-identity contract.
        #[test]
        fn prop_parallel_equals_serial(len in 0usize..5000, grain in 0usize..257, k in 1usize..9) {
            let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left((i % 63) as u32);
            let serial: Vec<u64> = (0..len).map(f).collect();
            let par = with_workers(k, || map_indexed(len, grain, f));
            prop_assert_eq!(par, serial);
        }
    }
}
