//! Bridging DIP bit accounting into the `pdip-obs` recorder.
//!
//! Conventions (consumed by the engine's E10 trace audit):
//!
//! * span name = the protocol's static name (e.g. `"planarity"`),
//!   coordinate `a` = 1-based prover-round index; counters
//!   `"round_max_bits"` / `"round_total_bits"` carry that round's
//!   [`SizeStats`] entries;
//! * the same span at `a = 0` carries run-level counters
//!   `"proof_size_bits"`, `"coin_bits"`, and `"rounds"`.
//!
//! Everything emitted here is derived from [`SizeStats`] — protocol
//! structure, never time — so traced event streams stay deterministic.

use crate::transcript::SizeStats;
use pdip_obs::{counter, Recorder, SpanId};

/// Emit the per-round and run-level bit counters of one finished run.
///
/// `proto` must be the protocol's stable static name. No-op (no
/// allocation) when `rec` is disabled.
pub fn trace_stats(rec: &dyn Recorder, proto: &'static str, stats: &SizeStats) {
    if !rec.enabled() {
        return;
    }
    for (i, (&max, &total)) in
        stats.per_round_max_bits.iter().zip(&stats.per_round_total_bits).enumerate()
    {
        let id = SpanId::at(proto, (i + 1) as u64);
        counter(rec, 0, id, "round_max_bits", max as u64);
        counter(rec, 0, id, "round_total_bits", total as u64);
    }
    let run = SpanId::new(proto);
    counter(rec, 0, run, "proof_size_bits", stats.proof_size() as u64);
    counter(rec, 0, run, "coin_bits", stats.coin_bits as u64);
    counter(rec, 0, run, "rounds", stats.rounds as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_obs::{CollectingRecorder, NoopRecorder};

    fn sample_stats() -> SizeStats {
        SizeStats {
            per_round_max_bits: vec![7, 12, 5],
            per_round_total_bits: vec![70, 120, 50],
            coin_bits: 33,
            rounds: 5,
        }
    }

    #[test]
    fn emits_one_counter_pair_per_round_plus_run_summary() {
        let rec = CollectingRecorder::new();
        trace_stats(&rec, "demo", &sample_stats());
        let t = rec.drain();
        assert_eq!(t.events().len(), 3 * 2 + 3);
        assert_eq!(t.counter_total(0, SpanId::at("demo", 2), "round_max_bits"), 12);
        assert_eq!(t.counter_total(0, SpanId::at("demo", 3), "round_total_bits"), 50);
        assert_eq!(t.counter_max_by_name(0, "demo", "round_max_bits"), Some(12));
        assert_eq!(t.counter_total(0, SpanId::new("demo"), "proof_size_bits"), 12);
        assert_eq!(t.counter_total(0, SpanId::new("demo"), "coin_bits"), 33);
        assert_eq!(t.counter_total(0, SpanId::new("demo"), "rounds"), 5);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        // Must not panic or do observable work.
        trace_stats(&NoopRecorder, "demo", &sample_stats());
    }
}
