//! Transcripts: per-round, per-node labels with exact bit accounting.

use pdip_graph::{Graph, NodeId};

/// Whether a round belongs to the prover or the verifier
/// (the paper's `I_prv` / `I_vrf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundKind {
    /// The prover assigns labels to nodes.
    Prover,
    /// Every node draws a public random string and sends it to the prover.
    Verifier,
}

/// The labels of one prover round, together with their declared bit sizes.
#[derive(Debug, Clone)]
pub struct LabelRound<L> {
    labels: Vec<L>,
    bits: Vec<usize>,
}

impl<L> LabelRound<L> {
    /// Builds a round from per-node labels and a size function.
    pub fn new(labels: Vec<L>, size_of: impl Fn(&L) -> usize) -> Self {
        let bits = labels.iter().map(&size_of).collect();
        LabelRound { labels, bits }
    }

    /// Label of node `v`.
    pub fn label(&self, v: NodeId) -> &L {
        &self.labels[v]
    }

    /// Declared size in bits of node `v`'s label.
    pub fn bits(&self, v: NodeId) -> usize {
        self.bits[v]
    }

    /// Mutable access for adversarial tampering (sizes are *not* updated:
    /// the proof-size measure refers to the honest prover only).
    pub fn label_mut(&mut self, v: NodeId) -> &mut L {
        &mut self.labels[v]
    }

    /// Swaps the labels of two nodes (generic tampering adversary).
    pub fn swap(&mut self, a: NodeId, b: NodeId) {
        self.labels.swap(a, b);
        self.bits.swap(a, b);
    }

    /// The largest label in this round, in bits.
    pub fn max_bits(&self) -> usize {
        self.bits.iter().copied().max().unwrap_or(0)
    }

    /// Total communication of this round in bits (sum over nodes).
    pub fn total_bits(&self) -> usize {
        self.bits.iter().sum()
    }

    /// `(max_bits, total_bits)` in one pass over the declared sizes —
    /// the single source of truth for per-round accounting
    /// ([`SizeStats::record_round`] and every aggregation path).
    pub fn bit_summary(&self) -> (usize, usize) {
        self.bits.iter().fold((0, 0), |(max, total), &b| (max.max(b), total + b))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the round is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Size statistics accumulated over the prover rounds of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SizeStats {
    /// Per prover-round maximum label size in bits.
    pub per_round_max_bits: Vec<usize>,
    /// Per prover-round total communication in bits (sum over nodes).
    pub per_round_total_bits: Vec<usize>,
    /// Total verifier→prover coin bits (sum over nodes and rounds).
    pub coin_bits: usize,
    /// Number of interaction rounds of the protocol.
    pub rounds: usize,
}

impl SizeStats {
    /// The paper's *proof size*: the longest label over all nodes and
    /// prover rounds.
    pub fn proof_size(&self) -> usize {
        self.per_round_max_bits.iter().copied().max().unwrap_or(0)
    }

    /// The per-node proof budget: sum over prover rounds of the round
    /// maxima (an upper bound on what any single node receives).
    pub fn per_node_total(&self) -> usize {
        self.per_round_max_bits.iter().sum()
    }

    /// Records one prover round (one pass over the declared sizes via
    /// [`LabelRound::bit_summary`]).
    pub fn record_round<L>(&mut self, round: &LabelRound<L>) {
        let (max, total) = round.bit_summary();
        self.per_round_max_bits.push(max);
        self.per_round_total_bits.push(total);
    }

    /// Grow `dst` to `len` and add `src` elementwise — the one helper
    /// behind both per-round vectors of [`SizeStats::merge_parallel`].
    fn resize_add(dst: &mut Vec<usize>, src: &[usize], len: usize) {
        dst.resize(len, 0);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }

    /// Merges stats of a sub-protocol executed in parallel (same rounds):
    /// per-round maxima add up because a node receives the concatenation.
    pub fn merge_parallel(&mut self, other: &SizeStats) {
        let rounds = self.per_round_max_bits.len().max(other.per_round_max_bits.len());
        Self::resize_add(&mut self.per_round_max_bits, &other.per_round_max_bits, rounds);
        Self::resize_add(&mut self.per_round_total_bits, &other.per_round_total_bits, rounds);
        self.coin_bits += other.coin_bits;
        self.rounds = self.rounds.max(other.rounds);
    }

    /// Merges stats of a protocol run on a *disjoint shard* of the same
    /// instance (block-cut-tree verification: each biconnected block is an
    /// independent run on its own node set).
    ///
    /// Unlike [`SizeStats::merge_parallel`] — where one node receives the
    /// concatenation of sub-protocol labels, so maxima *add* — a node
    /// belongs to essentially one block, so the per-round maximum over the
    /// whole graph is the elementwise **max** over blocks. (A cut vertex
    /// sits in several blocks, but its label in each is independently
    /// bounded by the theorem's per-block O(log log n); the shard table
    /// reports the per-block maximum, matching the paper's per-instance
    /// proof-size measure.) Totals and coin bits sum — every node in every
    /// block really communicates — and the round count is the max.
    pub fn merge_shard_max(&mut self, other: &SizeStats) {
        let rounds = self.per_round_max_bits.len().max(other.per_round_max_bits.len());
        self.per_round_max_bits.resize(rounds, 0);
        for (d, &s) in self.per_round_max_bits.iter_mut().zip(&other.per_round_max_bits) {
            *d = (*d).max(s);
        }
        Self::resize_add(&mut self.per_round_total_bits, &other.per_round_total_bits, rounds);
        self.coin_bits += other.coin_bits;
        self.rounds = self.rounds.max(other.rounds);
    }
}

/// Collects the labels of the neighbors of `v` in port order — the only
/// remote information the verifier at `v` may use (KOS18 model).
pub fn neighbor_labels<'a, L>(g: &Graph, round: &'a LabelRound<L>, v: NodeId) -> Vec<&'a L> {
    g.neighbor_nodes(v).map(|u| round.label(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_round_accounting() {
        let labels = vec![3u32, 50, 7];
        let round = LabelRound::new(labels, |&x| x.count_ones() as usize + 2);
        assert_eq!(round.bits(0), 4);
        assert_eq!(round.bits(1), 5); // 50 = 0b110010 -> 3 ones + 2
        assert_eq!(round.max_bits(), 5);
    }

    #[test]
    fn stats_proof_size_is_max_over_rounds() {
        let mut stats = SizeStats::default();
        stats.record_round(&LabelRound::new(vec![1u8, 2, 3], |_| 4));
        stats.record_round(&LabelRound::new(vec![1u8, 2, 3], |&x| x as usize * 3));
        assert_eq!(stats.per_round_max_bits, vec![4, 9]);
        assert_eq!(stats.proof_size(), 9);
        assert_eq!(stats.per_node_total(), 13);
    }

    #[test]
    fn parallel_merge_adds_per_round() {
        let mut a = SizeStats {
            per_round_max_bits: vec![3, 5],
            per_round_total_bits: vec![9, 15],
            coin_bits: 10,
            rounds: 3,
        };
        let b = SizeStats {
            per_round_max_bits: vec![2, 2, 2],
            per_round_total_bits: vec![4, 4, 4],
            coin_bits: 1,
            rounds: 5,
        };
        a.merge_parallel(&b);
        assert_eq!(a.per_round_max_bits, vec![5, 7, 2]);
        assert_eq!(a.coin_bits, 11);
        assert_eq!(a.rounds, 5);
    }

    #[test]
    fn shard_merge_takes_per_round_max_and_sums_totals() {
        let mut a = SizeStats {
            per_round_max_bits: vec![3, 5],
            per_round_total_bits: vec![9, 15],
            coin_bits: 10,
            rounds: 3,
        };
        let b = SizeStats {
            per_round_max_bits: vec![2, 8, 2],
            per_round_total_bits: vec![4, 4, 4],
            coin_bits: 1,
            rounds: 5,
        };
        a.merge_shard_max(&b);
        assert_eq!(a.per_round_max_bits, vec![3, 8, 2], "disjoint blocks: max, not sum");
        assert_eq!(a.per_round_total_bits, vec![13, 19, 4], "communication still sums");
        assert_eq!(a.coin_bits, 11);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.proof_size(), 8);
    }

    #[test]
    fn shard_merge_is_commutative_and_associative_on_proof_size() {
        let parts = [
            SizeStats {
                per_round_max_bits: vec![7, 1],
                per_round_total_bits: vec![7, 1],
                coin_bits: 2,
                rounds: 2,
            },
            SizeStats {
                per_round_max_bits: vec![3],
                per_round_total_bits: vec![3],
                coin_bits: 0,
                rounds: 1,
            },
            SizeStats {
                per_round_max_bits: vec![4, 9, 2],
                per_round_total_bits: vec![4, 9, 2],
                coin_bits: 5,
                rounds: 3,
            },
        ];
        let mut fwd = SizeStats::default();
        let mut rev = SizeStats::default();
        for p in &parts {
            fwd.merge_shard_max(p);
        }
        for p in parts.iter().rev() {
            rev.merge_shard_max(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.proof_size(), 9);
    }

    #[test]
    fn neighbor_labels_in_port_order() {
        let g = Graph::from_edges(3, [(1, 0), (1, 2)]);
        let round = LabelRound::new(vec![10u32, 20, 30], |_| 1);
        let nb = neighbor_labels(&g, &round, 1);
        assert_eq!(nb, vec![&10, &30]);
    }

    #[test]
    fn swap_tampering() {
        let mut round = LabelRound::new(vec![1u8, 2], |&x| x as usize);
        round.swap(0, 1);
        assert_eq!(*round.label(0), 2);
        assert_eq!(round.bits(0), 2);
    }
}
