//! The experiment-facing protocol interface.
//!
//! Every protocol in `pdip-protocols` exposes its runs through
//! [`DipProtocol`], so the experiment harness (E1–E8) can sweep protocols,
//! instance sizes, and prover behaviours uniformly. A `DipProtocol` value
//! is a protocol *bound to one instance* (graph plus task input plus
//! parameters).

use crate::outcome::RunResult;
use pdip_obs::Recorder;

/// A DIP bound to a concrete instance.
pub trait DipProtocol {
    /// Short protocol name, e.g. `"lr-sorting"`.
    fn name(&self) -> String;

    /// Number of interaction rounds (the paper's measure; e.g. 5 for
    /// LR-sorting, 1 for the PLS baselines).
    fn rounds(&self) -> usize;

    /// Number of nodes of the bound instance.
    fn instance_size(&self) -> usize;

    /// Ground truth: is the bound instance a yes-instance?
    fn is_yes_instance(&self) -> bool;

    /// One run with the honest prover (defined only for yes-instances;
    /// implementations may panic or reject on no-instances).
    fn run_honest(&self, seed: u64) -> RunResult;

    /// The named cheating-prover strategies this protocol implements.
    fn cheat_names(&self) -> Vec<String>;

    /// One run against cheating strategy `strategy` (an index into
    /// [`DipProtocol::cheat_names`]).
    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult;

    /// [`DipProtocol::run_honest`] with instrumentation: the same run
    /// (identical RNG call order and [`RunResult`]) with round spans
    /// and bit counters emitted to `rec`. The default ignores `rec`,
    /// so protocols without instrumentation stay correct.
    fn run_honest_traced(&self, seed: u64, _rec: &dyn Recorder) -> RunResult {
        self.run_honest(seed)
    }

    /// [`DipProtocol::run_cheat`] with instrumentation; see
    /// [`DipProtocol::run_honest_traced`].
    fn run_cheat_traced(&self, strategy: usize, seed: u64, _rec: &dyn Recorder) -> RunResult {
        self.run_cheat(strategy, seed)
    }
}

/// Empirical acceptance rate over `trials` runs with distinct seeds.
///
/// Zero trials means zero observed acceptances: the rate is defined as
/// `0.0` rather than the `0/0` NaN, so downstream aggregation and
/// formatting never see a non-number.
pub fn acceptance_rate(run: impl Fn(u64) -> RunResult, base_seed: u64, trials: usize) -> f64 {
    if trials == 0 {
        return 0.0;
    }
    let mut accepted = 0usize;
    for t in 0..trials {
        if run(base_seed.wrapping_add(t as u64)).accepted() {
            accepted += 1;
        }
    }
    accepted as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::RunResult;
    use crate::transcript::SizeStats;

    #[test]
    fn acceptance_rate_counts() {
        // Accept on even seeds only.
        let rate = acceptance_rate(
            |seed| {
                if seed % 2 == 0 {
                    RunResult::accept(SizeStats::default())
                } else {
                    RunResult::reject(SizeStats::default(), vec![(0, "odd".into())])
                }
            },
            0,
            10,
        );
        assert!((rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn acceptance_rate_zero_trials_is_zero_not_nan() {
        let rate = acceptance_rate(|_| panic!("must not run any trial when trials == 0"), 42, 0);
        assert_eq!(rate, 0.0);
    }
}
