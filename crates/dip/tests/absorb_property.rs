//! Property: absorbing per-stream `Rejections` collectors in stream
//! order reproduces the serial collector — even when *every* stream
//! individually overflows the 16-entry elision cap.
//!
//! This is the merge contract the sharded block-cut-tree verifier leans
//! on (PR 8): each biconnected block collects rejections locally, the
//! combiner absorbs them in block order, and the result must be
//! byte-identical to one verifier walking all blocks serially. The
//! overflow case is the dangerous one — the elision marker, the elided
//! count and the strongest-kind upgrade all have to survive the merge.

use pdip_core::{RejectReason, Rejections, SizeStats};
use proptest::prelude::*;

const REASONS: [&str; 3] = ["depth residue mismatch", "arity mismatch", "bad arc"];

/// Decodes an event code (0..6) into `(kind, reason)`; the vendored
/// proptest subset has no `prop_map`, so events travel as `u8`s.
fn decode(code: u8) -> (RejectReason, &'static str) {
    let kind =
        if code.is_multiple_of(2) { RejectReason::Malformed } else { RejectReason::Probabilistic };
    (kind, REASONS[(code / 2) as usize])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Three to five streams, each with 17..40 events — every one past
    /// the 16-entry cap on its own.
    #[test]
    fn absorb_of_capped_streams_reproduces_serial(
        streams in prop::collection::vec(prop::collection::vec(0u8..6, 17..40), 3..6),
    ) {
        // Assign node ids globally increasing across streams: each stream
        // owns a contiguous node range, so streams partition the domain
        // and concatenating them is a valid serial rejection stream.
        let mut serial = Rejections::new();
        let mut merged = Rejections::new();
        let mut node = 0usize;
        let mut serial_len = 0usize;
        for stream in &streams {
            let mut local = Rejections::new();
            for &code in stream {
                let (kind, reason) = decode(code);
                serial.reject_as(node, kind, reason);
                local.reject_as(node, kind, reason);
                node += 1;
            }
            prop_assert!(local.len() > 16, "stream must overflow the cap");
            serial_len += local.len();
            merged.absorb(local);
        }

        prop_assert_eq!(merged.len(), serial.len());
        prop_assert_eq!(merged.len(), serial_len);
        prop_assert_eq!(merged.any_malformed(), serial.any_malformed());

        // The finalized results must match entry for entry: stored
        // reasons, their order, the elision marker, and every kind.
        let m = merged.into_result(SizeStats::default());
        let s = serial.into_result(SizeStats::default());
        prop_assert_eq!(m.verdict, s.verdict);
        prop_assert_eq!(m.rejections, s.rejections);
        prop_assert_eq!(m.kinds, s.kinds);
    }
}
