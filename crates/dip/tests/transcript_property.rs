//! Property: `SizeStats::per_round_total_bits` is always the sum of
//! the declared `LabelRound::bits` — across the record path, the
//! parallel-merge path (including its resize branch when round counts
//! differ), and any interleaving of the two.
//!
//! This pins the invariant behind the PR-5 dedup of the per-round bit
//! accounting into `LabelRound::bit_summary`.

use pdip_core::{LabelRound, SizeStats};
use proptest::prelude::*;

/// A round whose label sizes are exactly the given declared bits.
fn round_from_bits(bits: &[usize]) -> LabelRound<usize> {
    LabelRound::new(bits.to_vec(), |&b| b)
}

/// Reference accounting: fold the same rounds/merges with naive sums.
#[derive(Default)]
struct Reference {
    totals: Vec<usize>,
    maxes: Vec<usize>,
}

impl Reference {
    fn record(&mut self, bits: &[usize]) {
        self.totals.push(bits.iter().sum());
        self.maxes.push(bits.iter().copied().max().unwrap_or(0));
    }

    fn merge(&mut self, other: &Reference) {
        let rounds = self.totals.len().max(other.totals.len());
        self.totals.resize(rounds, 0);
        self.maxes.resize(rounds, 0);
        for (i, (&t, &m)) in other.totals.iter().zip(&other.maxes).enumerate() {
            self.totals[i] += t;
            self.maxes[i] += m;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever mix of record_round / merge_parallel (with mismatched
    /// round counts forcing the resize path), the stats vectors equal
    /// the naive per-round sums and maxima of the declared bits.
    ///
    /// `kinds[i] == 0` records one round from the pool; `kinds[i] == k`
    /// (1..=3) merges a parallel sub-protocol of k pooled rounds — so
    /// merges regularly carry more rounds than already recorded,
    /// exercising the resize branch. (The vendored proptest subset has
    /// no enum strategies, hence the opcode encoding.)
    #[test]
    fn totals_equal_sum_of_declared_bits(
        kinds in prop::collection::vec(0usize..4, 1..10),
        pool in prop::collection::vec(prop::collection::vec(0usize..512, 0..12), 32..33),
    ) {
        let mut stats = SizeStats::default();
        let mut reference = Reference::default();
        let mut cursor = 0usize;
        let next = |cursor: &mut usize| {
            let bits = pool[*cursor % pool.len()].clone();
            *cursor += 1;
            bits
        };
        for &kind in &kinds {
            if kind == 0 {
                let bits = next(&mut cursor);
                stats.record_round(&round_from_bits(&bits));
                reference.record(&bits);
            } else {
                let mut sub = SizeStats::default();
                let mut sub_ref = Reference::default();
                for _ in 0..kind {
                    let bits = next(&mut cursor);
                    sub.record_round(&round_from_bits(&bits));
                    sub_ref.record(&bits);
                }
                stats.merge_parallel(&sub);
                reference.merge(&sub_ref);
            }
        }
        prop_assert_eq!(&stats.per_round_total_bits, &reference.totals);
        prop_assert_eq!(&stats.per_round_max_bits, &reference.maxes);
        // Derived measures agree with the reference vectors too.
        prop_assert_eq!(stats.proof_size(), reference.maxes.iter().copied().max().unwrap_or(0));
        prop_assert_eq!(stats.per_node_total(), reference.maxes.iter().sum::<usize>());
    }

    /// bit_summary is a one-pass equivalent of (max_bits, total_bits).
    #[test]
    fn bit_summary_matches_separate_passes(bits in prop::collection::vec(0usize..4096, 0..64)) {
        let round = round_from_bits(&bits);
        prop_assert_eq!(round.bit_summary(), (round.max_bits(), round.total_bits()));
    }
}
