//! Allocation steady-state: after one warm-up pass, traversals and the
//! left-right planarity test on a warm [`TraversalScratch`] perform zero
//! heap allocations.
//!
//! A counting `#[global_allocator]` wrapper tallies every allocation in
//! the process, so this file holds exactly ONE `#[test]`: a second test
//! running concurrently would bleed its allocations into the counter.

use pdip_graph::gen::planar::random_planar;
use pdip_graph::{is_planar_with, TraversalScratch};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn warm_traversals_do_not_allocate() {
    let mut rng = SmallRng::seed_from_u64(42);
    let inst = random_planar(500, 0.5, &mut rng);
    let g = inst.graph;
    g.freeze(); // materialize the CSR rows outside the measured region

    let mut scratch = TraversalScratch::new();
    let mut order = Vec::new();

    // A slab-arena round: borrow flat label tables, fill them to the
    // graph's scale, hand them back — the per-node-`Vec` replacement
    // pattern the round code uses (see `SliceArena`).
    let arena_round = |scratch: &mut TraversalScratch| {
        scratch.begin_edges(g.m());
        for e in 0..g.m() / 2 {
            scratch.mark_edge(e);
        }
        let mut offs = scratch.arena().take();
        let mut flat = scratch.arena().take();
        for v in 0..g.n() {
            offs.push(flat.len());
            flat.extend((0..g.degree(v)).filter(|_| scratch.edge_marked(v % g.m())));
        }
        offs.push(flat.len());
        let total: usize = flat.len();
        // Give in reverse take order: the arena is a LIFO, so the next
        // round's takes see each buffer back in the role it grew for.
        let arena = scratch.arena();
        arena.give(flat);
        arena.give(offs);
        total
    };

    // Warm-up: every buffer grows to its high-water mark here.
    scratch.bfs_order_into(&g, 0, &mut order);
    scratch.dfs_order_into(&g, 0, &mut order);
    assert!(is_planar_with(&g, &mut scratch));
    let warm_total = arena_round(&mut scratch);

    // Steady state: the same traversals must not touch the heap.
    let before = allocations();
    scratch.bfs_order_into(&g, 0, &mut order);
    assert_eq!(order.len(), g.n());
    scratch.dfs_order_into(&g, 0, &mut order);
    assert_eq!(order.len(), g.n());
    assert!(is_planar_with(&g, &mut scratch));
    assert_eq!(arena_round(&mut scratch), warm_total);
    let delta = allocations() - before;

    assert_eq!(
        delta, 0,
        "warm BFS + DFS + LR planarity + arena round must be allocation-free, saw {delta} allocations"
    );
}
