//! Differential tests: the frozen-CSR [`Graph`] agrees with the retained
//! naive `Vec<Vec<_>>` adjacency ([`NaiveAdjacency`]) on every accessor,
//! for random build/query interleavings — including queries before the
//! first freeze, after it, and after a post-freeze mutation thaws the
//! rows — and the left-right planarity tester agrees with the
//! rotation-system brute force on every small random graph.

use pdip_graph::{is_planar, is_planar_bruteforce, Graph, NaiveAdjacency};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compares every accessor of `g` and `naive` over the whole node grid.
fn assert_agree(g: &Graph, naive: &NaiveAdjacency) {
    assert_eq!(g.n(), naive.n());
    assert_eq!(g.m(), naive.m());
    assert_eq!(g.edges(), naive.edges());
    for v in 0..g.n() {
        assert_eq!(g.degree(v), naive.degree(v), "degree of {v}");
        assert_eq!(g.neighbors(v), naive.neighbors(v), "neighbors of {v}");
        assert_eq!(
            g.incident_edges(v).collect::<Vec<_>>(),
            naive.incident_edges(v).collect::<Vec<_>>(),
            "incident edges of {v}"
        );
        for u in 0..g.n() {
            assert_eq!(g.edge_between(v, u), naive.edge_between(v, u), "edge ({v},{u})");
            assert_eq!(g.has_edge(v, u), naive.has_edge(v, u), "adjacency ({v},{u})");
        }
    }
}

proptest! {
    /// Random edge subsets with query points before freezing, after
    /// freezing, and after a mutation that invalidates the frozen rows.
    #[test]
    fn csr_matches_naive_through_freeze_thaw(
        n in 2usize..24,
        picks in prop::collection::vec(0usize..24 * 24, 0..80),
        extra in prop::collection::vec(0usize..30 * 30, 0..10),
    ) {
        let mut g = Graph::new(n);
        let mut naive = NaiveAdjacency::new(n);
        for &pick in &picks {
            let (u, v) = (pick / 24 % n, pick % 24 % n);
            // Mirror the mid-build has_edge probe generators rely on;
            // it must not disagree with (or freeze out) later add_edge.
            prop_assert_eq!(g.has_edge(u, v), naive.has_edge(u, v));
            if u != v && !g.has_edge(u, v) {
                prop_assert_eq!(g.add_edge(u, v), naive.add_edge(u, v));
            }
        }
        assert_agree(&g, &naive);

        g.freeze();
        prop_assert!(g.is_frozen());
        assert_agree(&g, &naive);

        // Post-freeze mutation: rows must rebuild, not go stale.
        let w = g.add_node();
        prop_assert_eq!(naive.add_node(), w);
        prop_assert!(!g.is_frozen());
        for &pick in &extra {
            let (u, v) = (pick / 30 % g.n(), pick % 30 % g.n());
            if u != v && !g.has_edge(u, v) {
                prop_assert_eq!(g.add_edge(u, v), naive.add_edge(u, v));
            }
        }
        assert_agree(&g, &naive);
    }

    /// The left-right tester agrees with the rotation-system brute force
    /// on every small graph whose search space is tractable.
    #[test]
    fn lr_planarity_matches_bruteforce(
        n in 1usize..=8,
        picks in prop::collection::vec(0usize..8 * 8, 0..20),
    ) {
        let mut g = Graph::new(n);
        for &pick in &picks {
            let (u, v) = (pick / 8 % n, pick % 8 % n);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
            }
        }
        // ∏_v (deg(v) − 1)! rotation systems; skip (as an assume would)
        // the rare dense case where the brute force would be slow.
        let space: f64 = (0..n)
            .map(|v| (1..g.degree(v).max(1)).map(|k| k as f64).product::<f64>())
            .product();
        if space > 1e6 {
            return Ok(());
        }
        prop_assert_eq!(is_planar(&g), is_planar_bruteforce(&g));
    }
}

#[test]
fn both_reject_self_loops_and_parallel_edges() {
    for (u, v, prebuild) in [(1usize, 1usize, false), (0, 1, true)] {
        let graph_panic = catch_unwind(AssertUnwindSafe(|| {
            let mut g = Graph::new(3);
            if prebuild {
                g.add_edge(u, v);
            }
            g.add_edge(u, v);
        }))
        .is_err();
        let naive_panic = catch_unwind(AssertUnwindSafe(|| {
            let mut a = NaiveAdjacency::new(3);
            if prebuild {
                a.add_edge(u, v);
            }
            a.add_edge(u, v);
        }))
        .is_err();
        assert!(graph_panic, "Graph must reject ({u},{v}) prebuild={prebuild}");
        assert!(naive_panic, "NaiveAdjacency must reject ({u},{v}) prebuild={prebuild}");
    }
}

#[test]
fn frozen_parallel_edge_rejection_survives_freeze() {
    // The duplicate check must consult current adjacency even when the
    // query path would otherwise serve frozen rows.
    let mut g = Graph::new(3);
    g.add_edge(0, 1);
    g.freeze();
    let dup = catch_unwind(AssertUnwindSafe(move || g.add_edge(0, 1)));
    assert!(dup.is_err(), "parallel edge after freeze must still panic");
}
