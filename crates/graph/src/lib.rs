//! Graph substrate for the planarity-DIP reproduction.
#![warn(missing_docs)]
// Parallel-array index loops are idiomatic throughout this codebase.
#![allow(clippy::needless_range_loop)]
#![doc = include_str!("lib.md")]

pub mod biconnected;
pub mod degeneracy;
pub mod ear;
pub mod embedding;
pub mod gen;
pub mod graph;
pub mod naive;
pub mod outerplanar;
pub mod planarity;
pub mod scratch;
pub mod seed;
pub mod series_parallel;
pub mod traversal;

pub use biconnected::{BiconnectedComponents, BlockCutTree};
pub use degeneracy::{
    degeneracy_ordering, degeneracy_orientation, greedy_coloring, is_proper_coloring,
    ForestDecomposition,
};
pub use ear::{nested_ear_decomposition, Ear, EarDecomposition};
pub use embedding::{Dart, RotationSystem};
pub use gen::stream::{BlockMeta, Shard, StreamInstance, StreamMode, StreamSkeleton, StreamSpec};
pub use graph::{Edge, EdgeId, Graph, NodeId, Orientation};
pub use naive::NaiveAdjacency;
pub use outerplanar::{
    is_biconnected, is_hamiltonian_path, is_outerplanar, is_path_outerplanar,
    is_path_outerplanar_with, is_properly_nested, outer_cycle, path_outerplanar_witness,
};
pub use planarity::{is_planar, is_planar_bruteforce, is_planar_with};
pub use scratch::{reset_thread_scratch, with_thread_scratch, SliceArena, TraversalScratch};
pub use series_parallel::{
    is_series_parallel, is_treewidth_at_most_2, sp_tree, SpNode, SpTree, SpTreeEntry,
};
pub use traversal::{bfs_order, connected_components, dfs_order, EulerTour, RootedForest};
