//! Traversals, rooted trees, spanning forests and Euler tours.
//!
//! Most protocols in the paper commit to a rooted spanning structure — a
//! Hamiltonian path, a spanning tree of the graph, or a spanning forest of
//! sub-ears — and then verify or aggregate along it. [`RootedForest`] is the
//! shared representation: parent pointers plus derived children lists and
//! depths.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{with_thread_scratch, TraversalScratch};

/// BFS visit order from `root` (only the reachable component).
///
/// Allocates the returned vector; the traversal state itself comes from
/// the per-thread [`TraversalScratch`] (see
/// [`TraversalScratch::bfs_order_into`] for the fully allocation-free
/// variant).
pub fn bfs_order(g: &Graph, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    with_thread_scratch(|s| s.bfs_order_into(g, root, &mut order));
    order
}

/// Iterative DFS preorder from `root` (only the reachable component),
/// visiting neighbors in port order.
///
/// See [`TraversalScratch::dfs_order_into`] for the allocation-free
/// variant.
pub fn dfs_order(g: &Graph, root: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    with_thread_scratch(|s| s.dfs_order_into(g, root, &mut order));
    order
}

/// The connected components of `g`, each as a list of node ids.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    with_thread_scratch(|s| {
        s.begin_nodes(g.n());
        let mut comps: Vec<Vec<NodeId>> = Vec::new();
        for start in 0..g.n() {
            if !s.visit_node(start) {
                continue;
            }
            // The component list doubles as the BFS queue.
            let mut nodes = vec![start];
            let mut head = 0;
            while head < nodes.len() {
                let v = nodes[head];
                head += 1;
                for &(u, _) in g.neighbors(v) {
                    if s.visit_node(u) {
                        nodes.push(u);
                    }
                }
            }
            comps.push(nodes);
        }
        comps
    })
}

/// A rooted spanning forest of a graph: every node has an optional parent
/// edge; parentless nodes are roots.
///
/// Invariants (checked by [`RootedForest::from_parents`]):
/// the parent pointers are acyclic and every parent edge is a real edge of
/// the underlying graph.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, RootedForest};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let t = RootedForest::bfs_spanning_tree(&g, 0);
/// assert_eq!(t.roots(), vec![0]);
/// assert_eq!(t.depth(2), 2);
/// assert!(t.is_spanning_tree(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedForest {
    /// parent[v] = Some((parent node, edge id)) or None for roots.
    parent: Vec<Option<(NodeId, EdgeId)>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<usize>,
}

impl RootedForest {
    /// Builds a forest from parent pointers, validating acyclicity and that
    /// each pointer follows a real edge of `g`.
    ///
    /// # Panics
    /// Panics if a pointer does not correspond to an edge of `g` or if the
    /// pointers contain a cycle.
    pub fn from_parents(g: &Graph, parent: Vec<Option<(NodeId, EdgeId)>>) -> Self {
        assert_eq!(parent.len(), g.n());
        for (v, p) in parent.iter().enumerate() {
            if let Some((u, e)) = *p {
                let edge = g.edge(e);
                assert!(
                    edge.is_incident(v) && edge.other(v) == u,
                    "parent pointer of {v} does not match edge {e}"
                );
            }
        }
        let mut children = vec![Vec::new(); g.n()];
        for (v, p) in parent.iter().enumerate() {
            if let Some((u, _)) = *p {
                children[u].push(v);
            }
        }
        // Compute depths, detecting cycles.
        let mut depth = vec![usize::MAX; g.n()];
        for v in 0..g.n() {
            if depth[v] != usize::MAX {
                continue;
            }
            let mut path = Vec::new();
            let mut cur = v;
            while depth[cur] == usize::MAX {
                // Mark as on-stack with a sentinel to detect cycles.
                depth[cur] = usize::MAX - 1;
                path.push(cur);
                match parent[cur] {
                    None => break,
                    Some((p, _)) => {
                        assert!(depth[p] != usize::MAX - 1, "cycle in parent pointers at {p}");
                        cur = p;
                    }
                }
            }
            let base = match parent[*path.last().unwrap()] {
                None => 0,
                Some((p, _)) => depth[p] + 1,
            };
            for (i, &w) in path.iter().enumerate() {
                // path[0] is deepest? No: we walked *up*, so path[last] is
                // highest; its depth is `base`.
                depth[w] = base + (path.len() - 1 - i);
            }
        }
        RootedForest { parent, children, depth }
    }

    /// Assembles a forest from parent pointers and depths produced by a
    /// traversal (valid by construction, so no [`Self::from_parents`]
    /// validation pass). Children are listed in increasing id order, the
    /// same order `from_parents` produces.
    fn from_traversal(parent: Vec<Option<(NodeId, EdgeId)>>, depth: Vec<usize>) -> Self {
        let mut children = vec![Vec::new(); parent.len()];
        for (v, p) in parent.iter().enumerate() {
            if let Some((u, _)) = *p {
                children[u].push(v);
            }
        }
        RootedForest { parent, children, depth }
    }

    /// BFS spanning tree of the connected component of `root`.
    pub fn bfs_spanning_tree(g: &Graph, root: NodeId) -> Self {
        with_thread_scratch(|s| Self::bfs_spanning_tree_with(g, root, s))
    }

    /// [`Self::bfs_spanning_tree`] with an explicit scratch: the visited
    /// marks and queue are reused, only the forest itself is allocated.
    pub fn bfs_spanning_tree_with(g: &Graph, root: NodeId, s: &mut TraversalScratch) -> Self {
        let mut parent = vec![None; g.n()];
        let mut depth = vec![0usize; g.n()];
        s.begin_nodes(g.n());
        s.visit_node(root);
        s.queue.clear();
        s.queue.push(root);
        let mut head = 0;
        while head < s.queue.len() {
            let v = s.queue[head];
            head += 1;
            for &(u, e) in g.neighbors(v) {
                if s.visit_node(u) {
                    parent[u] = Some((v, e));
                    depth[u] = depth[v] + 1;
                    s.queue.push(u);
                }
            }
        }
        Self::from_traversal(parent, depth)
    }

    /// DFS spanning tree of the connected component of `root`.
    pub fn dfs_spanning_tree(g: &Graph, root: NodeId) -> Self {
        with_thread_scratch(|s| Self::dfs_spanning_tree_with(g, root, s))
    }

    /// [`Self::dfs_spanning_tree`] with an explicit scratch.
    pub fn dfs_spanning_tree_with(g: &Graph, root: NodeId, s: &mut TraversalScratch) -> Self {
        let mut parent = vec![None; g.n()];
        let mut depth = vec![0usize; g.n()];
        s.begin_nodes(g.n());
        s.visit_node(root);
        s.queue.clear();
        s.queue.push(root);
        while let Some(v) = s.queue.pop() {
            for &(u, e) in g.neighbors(v).iter().rev() {
                if s.visit_node(u) {
                    parent[u] = Some((v, e));
                    depth[u] = depth[v] + 1;
                    s.queue.push(u);
                }
            }
        }
        Self::from_traversal(parent, depth)
    }

    /// A forest representing a rooted path `nodes[0] -> nodes[1] -> ...`
    /// where `nodes[0]` is the root and each node's parent is its
    /// predecessor in the list.
    ///
    /// # Panics
    /// Panics if consecutive nodes are not adjacent in `g`.
    pub fn from_path(g: &Graph, nodes: &[NodeId]) -> Self {
        let mut parent = vec![None; g.n()];
        for w in nodes.windows(2) {
            let e = g
                .edge_between(w[0], w[1])
                .unwrap_or_else(|| panic!("path edge ({}, {}) missing from graph", w[0], w[1]));
            parent[w[1]] = Some((w[0], e));
        }
        Self::from_parents(g, parent)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent node of `v`, if any.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v].map(|(p, _)| p)
    }

    /// Parent edge of `v`, if any.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent[v].map(|(_, e)| e)
    }

    /// Children of `v` (in discovery/insertion order).
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Depth of `v` (roots have depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// All roots in increasing id order.
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.n()).filter(|&v| self.parent[v].is_none()).collect()
    }

    /// Whether `e` is a forest edge.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.parent.iter().any(|p| matches!(p, Some((_, pe)) if *pe == e))
    }

    /// The set of forest edge ids.
    pub fn edge_set(&self) -> Vec<EdgeId> {
        self.parent.iter().filter_map(|p| p.map(|(_, e)| e)).collect()
    }

    /// Whether the forest is a spanning tree of `g`: exactly one root and
    /// `n - 1` parent edges (acyclicity is a construction invariant).
    pub fn is_spanning_tree(&self, g: &Graph) -> bool {
        g.n() > 0 && self.roots().len() == 1 && self.edge_set().len() == g.n() - 1
    }

    /// Nodes in order of nonincreasing depth (children before parents) —
    /// convenient for "aggregate up the tree" computations.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order: Vec<NodeId> = (0..self.n()).collect();
        order.sort_by(|&a, &b| self.depth[b].cmp(&self.depth[a]));
        order
    }

    /// The path from `v` up to its root, inclusive.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }
}

/// An Euler tour of a rooted tree: the closed walk that traverses every tree
/// edge twice, visiting the children of each node in a caller-specified
/// order. Used by the planar-embedding reduction of §7 of the paper.
///
/// `tour` lists node visits; a node `v` with `c` children appears `c + 1`
/// times (its "copies" x_0(v), ..., x_c(v) in the paper's notation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EulerTour {
    /// Visit sequence of node ids, starting and ending at the root.
    pub tour: Vec<NodeId>,
    /// `visits[v]` = indices into `tour` where `v` appears, increasing.
    pub visits: Vec<Vec<usize>>,
}

impl EulerTour {
    /// Computes the Euler tour of the tree rooted at `root`, visiting each
    /// node's children in the order given by `child_order(v)`.
    ///
    /// # Panics
    /// Panics if `forest` is not a tree spanning its component containing
    /// `root` with consistent child orders (every child must appear exactly
    /// once in `child_order(parent)`).
    pub fn new(
        forest: &RootedForest,
        root: NodeId,
        child_order: impl Fn(NodeId) -> Vec<NodeId>,
    ) -> Self {
        let n = forest.n();
        let mut tour = Vec::new();
        let mut visits = vec![Vec::new(); n];
        // Explicit stack: (node, ordered children, next child index).
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        let root_children = child_order(root);
        assert_eq!(
            sorted(&root_children),
            sorted(forest.children(root)),
            "child_order({root}) must be a permutation of the children"
        );
        stack.push((root, root_children, 0));
        visits[root].push(tour.len());
        tour.push(root);
        while let Some((v, children, idx)) = stack.last_mut() {
            if *idx < children.len() {
                let c = children[*idx];
                *idx += 1;
                let c_children = child_order(c);
                assert_eq!(
                    sorted(&c_children),
                    sorted(forest.children(c)),
                    "child_order({c}) must be a permutation of the children"
                );
                visits[c].push(tour.len());
                tour.push(c);
                stack.push((c, c_children, 0));
            } else {
                let v = *v;
                stack.pop();
                if let Some((_p, _, _)) = stack.last() {
                    let p = stack.last().unwrap().0;
                    visits[p].push(tour.len());
                    tour.push(p);
                    let _ = v;
                }
            }
        }
        EulerTour { tour, visits }
    }

    /// Computes the Euler tour directly from per-node child lists that the
    /// caller guarantees to be consistent (each node's list is a permutation
    /// of its children in the intended tree). Produces exactly the tour
    /// [`EulerTour::new`] would for `|v| children[v].clone()`, but without
    /// the per-node permutation checks or list clones — the fast path for
    /// construction-time callers that just built `children` from the tree.
    pub fn from_child_lists(root: NodeId, children: &[Vec<NodeId>]) -> Self {
        let n = children.len();
        let total: usize = children.iter().map(Vec::len).sum();
        let mut tour = Vec::with_capacity(2 * total + 1);
        let mut visits = vec![Vec::new(); n];
        // Explicit stack: (node, next child index).
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        stack.push((root, 0));
        visits[root].push(tour.len());
        tour.push(root);
        while let Some((v, idx)) = stack.last_mut() {
            let kids = &children[*v];
            if *idx < kids.len() {
                let c = kids[*idx];
                *idx += 1;
                visits[c].push(tour.len());
                tour.push(c);
                stack.push((c, 0));
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    visits[p].push(tour.len());
                    tour.push(p);
                }
            }
        }
        EulerTour { tour, visits }
    }
}

fn sorted(xs: &[NodeId]) -> Vec<NodeId> {
    let mut v = xs.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_visits_all_reachable() {
        let g = path_graph(5);
        assert_eq!(bfs_order(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2), vec![2, 1, 3, 0, 4]);
    }

    #[test]
    fn dfs_follows_port_order() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(dfs_order(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2, 3]);
        assert_eq!(comps[2], vec![4]);
    }

    #[test]
    fn bfs_tree_depths() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]);
        let t = RootedForest::bfs_spanning_tree(&g, 0);
        assert!(t.is_spanning_tree(&g));
        assert_eq!(t.depth(0), 0);
        assert_eq!(t.depth(3), 2);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.roots(), vec![0]);
        assert_eq!(t.path_to_root(4), vec![4, 2, 0]);
    }

    #[test]
    fn dfs_tree_is_spanning() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let t = RootedForest::dfs_spanning_tree(&g, 0);
        assert!(t.is_spanning_tree(&g));
        assert_eq!(t.edge_set().len(), 5);
    }

    #[test]
    fn path_forest() {
        let g = path_graph(4);
        let t = RootedForest::from_path(&g, &[0, 1, 2, 3]);
        assert!(t.is_spanning_tree(&g));
        assert_eq!(t.children(1), &[2]);
        assert_eq!(t.depth(3), 3);
    }

    #[test]
    #[should_panic(expected = "cycle in parent pointers")]
    fn cyclic_parents_rejected() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let parent = vec![
            Some((1, 0)), // 0 -> 1
            Some((2, 1)), // 1 -> 2
            Some((0, 2)), // 2 -> 0
        ];
        RootedForest::from_parents(&g, parent);
    }

    #[test]
    fn bottom_up_order_children_first() {
        let g = path_graph(4);
        let t = RootedForest::from_path(&g, &[0, 1, 2, 3]);
        let order = t.bottom_up_order();
        let pos = |v: NodeId| order.iter().position(|&x| x == v).unwrap();
        for v in 1..4 {
            assert!(pos(v) < pos(t.parent(v).unwrap()));
        }
    }

    #[test]
    fn euler_tour_star() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let t = RootedForest::bfs_spanning_tree(&g, 0);
        let tour = EulerTour::new(&t, 0, |v| t.children(v).to_vec());
        assert_eq!(tour.tour, vec![0, 1, 0, 2, 0, 3, 0]);
        assert_eq!(tour.visits[0], vec![0, 2, 4, 6]);
        assert_eq!(tour.visits[2], vec![3]);
    }

    #[test]
    fn euler_tour_from_child_lists_matches_new() {
        let g = Graph::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6)]);
        let t = RootedForest::bfs_spanning_tree(&g, 0);
        let children: Vec<Vec<NodeId>> = (0..7).map(|v| t.children(v).to_vec()).collect();
        let checked = EulerTour::new(&t, 0, |v| children[v].clone());
        let trusted = EulerTour::from_child_lists(0, &children);
        assert_eq!(checked, trusted);
    }

    #[test]
    fn euler_tour_respects_child_order() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let t = RootedForest::bfs_spanning_tree(&g, 0);
        let tour = EulerTour::new(&t, 0, |v| {
            let mut c = t.children(v).to_vec();
            c.reverse();
            c
        });
        assert_eq!(tour.tour, vec![0, 2, 0, 1, 0]);
    }

    #[test]
    fn euler_tour_length_invariant() {
        // |tour| = 2 * (#nodes) - 1 for a tree.
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (1, 3), (0, 4), (4, 5), (4, 6)]);
        let t = RootedForest::bfs_spanning_tree(&g, 0);
        let tour = EulerTour::new(&t, 0, |v| t.children(v).to_vec());
        assert_eq!(tour.tour.len(), 2 * 7 - 1);
        for v in 0..7 {
            assert_eq!(tour.visits[v].len(), t.children(v).len() + 1);
        }
    }
}
