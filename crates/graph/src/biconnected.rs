//! Biconnected components, cut nodes and the block–cut tree.
//!
//! The outerplanarity protocol (§6 of the paper) and the treewidth ≤ 2
//! protocol (§8) both decompose the graph into its biconnected components
//! and root the resulting block–cut tree at one component; the prover then
//! runs a per-component protocol. This module provides the decomposition
//! (iterative Hopcroft–Tarjan) and the rooted [`BlockCutTree`].

use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{reset_buf, with_thread_scratch, TraversalScratch};

/// Reusable work arrays of the Hopcroft–Tarjan decomposition, owned by
/// [`TraversalScratch`].
#[derive(Debug, Default)]
pub(crate) struct BiconArena {
    disc: Vec<usize>,
    low: Vec<usize>,
    edge_stack: Vec<EdgeId>,
    /// DFS frames: (node, parent edge id or `usize::MAX`, next port).
    stack: Vec<(NodeId, usize, usize)>,
}

/// The biconnected decomposition of a connected graph.
#[derive(Debug, Clone)]
pub struct BiconnectedComponents {
    /// Edge partition: `component_of_edge[e]` is the component index of edge `e`.
    pub component_of_edge: Vec<usize>,
    /// For each component, its edge ids.
    pub components: Vec<Vec<EdgeId>>,
    /// Whether each node is a cut node (articulation point).
    pub is_cut_node: Vec<bool>,
}

impl BiconnectedComponents {
    /// Computes the biconnected components of `g`.
    ///
    /// Isolated nodes belong to no component; a bridge edge forms its own
    /// component of size 1. Works on disconnected graphs too (components
    /// are computed per connected component).
    pub fn compute(g: &Graph) -> Self {
        with_thread_scratch(|s| Self::compute_with(g, s))
    }

    /// [`Self::compute`] with an explicit scratch: the DFS bookkeeping
    /// (discovery/low arrays, edge stack, frame stack) is reused across
    /// calls; only the decomposition itself is allocated.
    pub fn compute_with(g: &Graph, scratch: &mut TraversalScratch) -> Self {
        let n = g.n();
        let BiconArena { disc, low, edge_stack, stack } = &mut scratch.bicon;
        reset_buf(disc, n, usize::MAX);
        reset_buf(low, n, 0);
        edge_stack.clear();
        let mut timer = 0usize;
        let mut component_of_edge = vec![usize::MAX; g.m()];
        let mut components: Vec<Vec<EdgeId>> = Vec::new();
        let mut is_cut_node = vec![false; n];

        // Iterative DFS. Frame: (v, parent edge id or usize::MAX, next port).
        const NO_EDGE: usize = usize::MAX;
        for start in 0..n {
            if disc[start] != usize::MAX {
                continue;
            }
            stack.clear();
            stack.push((start, NO_EDGE, 0));
            disc[start] = timer;
            low[start] = timer;
            timer += 1;
            let mut root_children = 0usize;
            while !stack.is_empty() {
                let frame = stack.len() - 1;
                let (v, pe, port) = stack[frame];
                if port < g.degree(v) {
                    stack[frame].2 += 1;
                    let (u, e) = g.neighbors(v)[port];
                    if e == pe {
                        continue;
                    }
                    if disc[u] == usize::MAX {
                        // Tree edge.
                        edge_stack.push(e);
                        disc[u] = timer;
                        low[u] = timer;
                        timer += 1;
                        if v == start {
                            root_children += 1;
                        }
                        stack.push((u, e, 0));
                    } else if disc[u] < disc[v] {
                        // Back edge (to an ancestor).
                        edge_stack.push(e);
                        low[v] = low[v].min(disc[u]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        low[p] = low[p].min(low[v]);
                        if low[v] >= disc[p] {
                            // p separates v's subtree: pop a component.
                            if p != start {
                                is_cut_node[p] = true;
                            }
                            let idx = components.len();
                            let mut comp = Vec::new();
                            while let Some(&top) = edge_stack.last() {
                                let te = g.edge(top);
                                // Pop until (and including) the tree edge (p, v).
                                let is_boundary =
                                    (te.u == p && te.v == v) || (te.u == v && te.v == p);
                                edge_stack.pop();
                                component_of_edge[top] = idx;
                                comp.push(top);
                                if is_boundary {
                                    break;
                                }
                            }
                            components.push(comp);
                        }
                    }
                }
            }
            // Root is a cut node iff it has >= 2 DFS children.
            if root_children >= 2 {
                is_cut_node[start] = true;
            }
        }
        BiconnectedComponents { component_of_edge, components, is_cut_node }
    }

    /// Number of biconnected components.
    pub fn count(&self) -> usize {
        self.components.len()
    }

    /// The distinct node ids appearing in component `c`, ascending.
    pub fn component_nodes(&self, g: &Graph, c: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.components[c]
            .iter()
            .flat_map(|&e| {
                let edge = g.edge(e);
                [edge.u, edge.v]
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Component indices that contain node `v`, ascending.
    pub fn components_of_node(&self, g: &Graph, v: NodeId) -> Vec<usize> {
        let mut cs: Vec<usize> = g.incident_edges(v).map(|e| self.component_of_edge[e]).collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

/// The block–cut tree of a connected graph, rooted at a chosen component.
///
/// Tree nodes are either biconnected components ("blocks") or cut nodes;
/// a cut node is adjacent to every block containing it. Following §6 of the
/// paper, for each non-root block `C` the cut node that is its parent in the
/// tree is the *C-separating node*.
#[derive(Debug, Clone)]
pub struct BlockCutTree {
    /// The underlying decomposition.
    pub bcc: BiconnectedComponents,
    /// Index of the root block.
    pub root_block: usize,
    /// For each block: the separating (parent) cut node, or `None` for the root block.
    pub separating_node: Vec<Option<NodeId>>,
    /// For each block: its depth in the block–cut tree counted in blocks
    /// (root block = 0). This is the `d(C)` of §6 before the mod-3 reduction.
    pub block_depth: Vec<usize>,
}

impl BlockCutTree {
    /// Builds the rooted block–cut tree of connected `g`, rooted at the
    /// block containing edge 0 (or the only block).
    ///
    /// # Panics
    /// Panics if `g` is not connected or has no edges.
    pub fn rooted(g: &Graph) -> Self {
        assert!(g.is_connected(), "block-cut tree requires a connected graph");
        assert!(g.m() > 0, "block-cut tree requires at least one edge");
        let bcc = BiconnectedComponents::compute(g);
        let root_block = bcc.component_of_edge[0];
        let k = bcc.count();
        let mut separating_node = vec![None; k];
        let mut block_depth = vec![usize::MAX; k];
        block_depth[root_block] = 0;

        // BFS over the block-cut tree: alternate blocks and cut nodes.
        let mut block_queue = std::collections::VecDeque::new();
        block_queue.push_back(root_block);
        let mut visited_block = vec![false; k];
        visited_block[root_block] = true;
        while let Some(b) = block_queue.pop_front() {
            for v in bcc.component_nodes(g, b) {
                if !bcc.is_cut_node[v] {
                    continue;
                }
                for c in bcc.components_of_node(g, v) {
                    if !visited_block[c] {
                        visited_block[c] = true;
                        separating_node[c] = Some(v);
                        block_depth[c] = block_depth[b] + 1;
                        block_queue.push_back(c);
                    }
                }
            }
        }
        BlockCutTree { bcc, root_block, separating_node, block_depth }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.bcc.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_is_one_component() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 1);
        assert!(!bcc.is_cut_node[0] && !bcc.is_cut_node[1]);
    }

    #[test]
    fn cycle_is_biconnected() {
        let g = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 1);
        assert!(bcc.is_cut_node.iter().all(|&c| !c));
    }

    #[test]
    fn two_triangles_sharing_a_node() {
        // Triangles {0,1,2} and {2,3,4} share cut node 2.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 2);
        assert!(bcc.is_cut_node[2]);
        assert_eq!(bcc.is_cut_node.iter().filter(|&&c| c).count(), 1);
        let mut sizes: Vec<usize> = bcc.components.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
        assert_eq!(bcc.components_of_node(&g, 2).len(), 2);
    }

    #[test]
    fn path_every_edge_is_a_block() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 3);
        assert!(!bcc.is_cut_node[0]);
        assert!(bcc.is_cut_node[1]);
        assert!(bcc.is_cut_node[2]);
        assert!(!bcc.is_cut_node[3]);
    }

    #[test]
    fn bridge_plus_cycles() {
        // cycle {0,1,2} - bridge (2,3) - cycle {3,4,5}
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 3);
        assert!(bcc.is_cut_node[2] && bcc.is_cut_node[3]);
        // The bridge forms a singleton component.
        assert!(bcc.components.iter().any(|c| c.len() == 1));
    }

    #[test]
    fn block_cut_tree_depths() {
        // blocks: B0={0,1,2} (root contains edge 0), bridge {2,3}, B2={3,4,5}
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]);
        let t = BlockCutTree::rooted(&g);
        assert_eq!(t.block_count(), 3);
        assert_eq!(t.block_depth[t.root_block], 0);
        assert_eq!(t.separating_node[t.root_block], None);
        // The bridge's separating node is 2; the far cycle's is 3.
        let bridge = (0..3).find(|&c| t.bcc.components[c].len() == 1).unwrap();
        assert_eq!(t.separating_node[bridge], Some(2));
        assert_eq!(t.block_depth[bridge], 1);
        let far = (0..3).find(|&c| c != t.root_block && t.bcc.components[c].len() == 3).unwrap();
        assert_eq!(t.separating_node[far], Some(3));
        assert_eq!(t.block_depth[far], 2);
    }

    #[test]
    fn component_nodes_sorted_unique() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]);
        let bcc = BiconnectedComponents::compute(&g);
        let tri = (0..bcc.count()).find(|&c| bcc.components[c].len() == 3).unwrap();
        assert_eq!(bcc.component_nodes(&g, tri), vec![0, 1, 2]);
    }

    #[test]
    fn star_center_is_cut_node() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let bcc = BiconnectedComponents::compute(&g);
        assert_eq!(bcc.count(), 3);
        assert!(bcc.is_cut_node[0]);
        assert!(!bcc.is_cut_node[1]);
    }

    #[test]
    fn all_edges_assigned_components() {
        let g = Graph::from_edges(
            8,
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5), (5, 6), (6, 7), (7, 5)],
        );
        let bcc = BiconnectedComponents::compute(&g);
        assert!(bcc.component_of_edge.iter().all(|&c| c != usize::MAX));
        let total: usize = bcc.components.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.m());
    }
}
