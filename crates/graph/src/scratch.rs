//! Reusable, allocation-free traversal scratch.
//!
//! Every traversal in this crate (BFS/DFS orders, spanning trees,
//! biconnected components, the LR planarity test, face tracing) needs the
//! same transient state: visited marks, an explicit stack or queue, and a
//! few per-node/per-edge arrays. [`TraversalScratch`] owns all of it so a
//! caller that runs many traversals — the sweep engine's worker loop above
//! all — pays for the buffers once and then runs allocation-free.
//!
//! Two mechanisms make reuse cheap:
//!
//! * **Epoch-stamped marks.** Visited flags are `u32` stamps, not bools: a
//!   node is visited iff `mark[v] == current_stamp`, and starting a new
//!   traversal just increments the stamp instead of clearing the array
//!   (arrays are zeroed only on the one-in-4-billion stamp wraparound).
//! * **`clear` + `resize` buffers.** Work arrays are reset by value, never
//!   reallocated once grown to the largest graph seen.
//!
//! The `*_with`/`*_into` entry points scattered through the crate take an
//! explicit `&mut TraversalScratch`; the classic free functions
//! ([`crate::bfs_order`], [`crate::is_planar`], ...) keep their signatures
//! and borrow a per-thread scratch internally, so every existing call site
//! warms up for free.

use crate::graph::{Graph, NodeId};
use std::cell::RefCell;

/// Bumps a stamp/mark pair to a fresh epoch covering `len` slots.
fn begin_epoch(mark: &mut Vec<u32>, stamp: &mut u32, len: usize) {
    if mark.len() < len {
        mark.resize(len, 0);
    }
    if *stamp == u32::MAX {
        mark.fill(0);
        *stamp = 0;
    }
    *stamp += 1;
}

/// Clears and re-fills a work array without shrinking its capacity.
pub(crate) fn reset_buf<T: Copy>(buf: &mut Vec<T>, len: usize, val: T) {
    buf.clear();
    buf.resize(len, val);
}

/// A recycling arena of `usize` work buffers — the zero-copy backing for
/// per-node *label tables*: flat `(offsets, data)` pairs whose per-node
/// views are slices, where naive code would allocate one `Vec` per node.
///
/// [`SliceArena::take`] hands out a cleared buffer that keeps the
/// capacity it grew on a previous round; [`SliceArena::give`] returns it.
/// After one warm-up round every `take` is a pop — no heap traffic — so
/// the counting-allocator harness can pin the round's steady state at
/// zero allocations. Buffers are plain `Vec<usize>`: node ids, edge ids,
/// offsets and small counters all fit, and a buffer taken for one role in
/// one round may serve another role in the next.
#[derive(Debug, Default)]
pub struct SliceArena {
    free: Vec<Vec<usize>>,
}

impl SliceArena {
    /// Borrows a cleared buffer (recycled capacity if available).
    pub fn take(&mut self) -> Vec<usize> {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a buffer to the arena for the next taker.
    pub fn give(&mut self, buf: Vec<usize>) {
        self.free.push(buf);
    }

    /// Number of buffers currently parked in the arena.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

/// Reusable state for graph traversals. See the module docs.
///
/// A single scratch may be used on graphs of any (varying) size; buffers
/// grow monotonically to the largest graph seen. All methods leave the
/// scratch reusable regardless of outcome.
#[derive(Debug, Default)]
pub struct TraversalScratch {
    node_mark: Vec<u32>,
    node_stamp: u32,
    dart_mark: Vec<u32>,
    dart_stamp: u32,
    edge_mark: Vec<u32>,
    edge_stamp: u32,
    /// Recycled flat label buffers (see [`SliceArena`]).
    arena: SliceArena,
    /// BFS frontier / generic node queue.
    pub(crate) queue: Vec<NodeId>,
    /// DFS stack of (node, next port index).
    pub(crate) dfs_stack: Vec<(NodeId, usize)>,
    /// Hopcroft–Tarjan work arrays (biconnected components).
    pub(crate) bicon: crate::biconnected::BiconArena,
    /// LR planarity-test work arrays.
    pub(crate) lr: crate::planarity::LrArena,
}

impl TraversalScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all retained capacity (mainly useful for measuring cold-start
    /// cost; warm reuse is the point of this type).
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Starts a new node-visited epoch able to mark nodes `0..n`.
    pub(crate) fn begin_nodes(&mut self, n: usize) {
        begin_epoch(&mut self.node_mark, &mut self.node_stamp, n);
    }

    /// Marks node `v`; returns `true` iff it was unvisited this epoch.
    #[inline]
    pub(crate) fn visit_node(&mut self, v: NodeId) -> bool {
        if self.node_mark[v] == self.node_stamp {
            false
        } else {
            self.node_mark[v] = self.node_stamp;
            true
        }
    }

    /// Starts a new dart-visited epoch able to mark darts `0..two_m`.
    pub(crate) fn begin_darts(&mut self, two_m: usize) {
        begin_epoch(&mut self.dart_mark, &mut self.dart_stamp, two_m);
    }

    /// Starts a new edge-mark epoch able to mark edges `0..m`.
    ///
    /// Edge marks are the epoch-stamped replacement for a per-call
    /// `vec![false; m]` (tree-edge bitmaps and the like): starting an
    /// epoch is O(1) on a warm scratch, and the array is allocated once
    /// for the largest graph seen. Public — unlike the node/dart marks —
    /// because round code in higher crates consumes it directly.
    pub fn begin_edges(&mut self, m: usize) {
        begin_epoch(&mut self.edge_mark, &mut self.edge_stamp, m);
    }

    /// Marks edge `e` in the current edge epoch.
    #[inline]
    pub fn mark_edge(&mut self, e: usize) {
        self.edge_mark[e] = self.edge_stamp;
    }

    /// Whether edge `e` is marked in the current edge epoch.
    #[inline]
    pub fn edge_marked(&self, e: usize) -> bool {
        self.edge_mark[e] == self.edge_stamp
    }

    /// The recycled flat-buffer arena (see [`SliceArena`]).
    pub fn arena(&mut self) -> &mut SliceArena {
        &mut self.arena
    }

    /// Marks dart `d`; returns `true` iff it was unvisited this epoch.
    #[inline]
    pub(crate) fn visit_dart(&mut self, d: usize) -> bool {
        if self.dart_mark[d] == self.dart_stamp {
            false
        } else {
            self.dart_mark[d] = self.dart_stamp;
            true
        }
    }

    /// BFS visit order from `root` into `out` (cleared first). The output
    /// vector doubles as the queue, so a warm call allocates nothing once
    /// `out` has capacity for the reachable component.
    pub fn bfs_order_into(&mut self, g: &Graph, root: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.begin_nodes(g.n());
        self.visit_node(root);
        out.push(root);
        let mut head = 0;
        while head < out.len() {
            let v = out[head];
            head += 1;
            for &(u, _) in g.neighbors(v) {
                if self.visit_node(u) {
                    out.push(u);
                }
            }
        }
    }

    /// Iterative DFS preorder from `root` into `out` (cleared first),
    /// visiting neighbors in port order.
    pub fn dfs_order_into(&mut self, g: &Graph, root: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        self.begin_nodes(g.n());
        self.visit_node(root);
        self.dfs_stack.clear();
        self.dfs_stack.push((root, 0));
        out.push(root);
        while let Some(&mut (v, ref mut port)) = self.dfs_stack.last_mut() {
            let row = g.neighbors(v);
            if *port < row.len() {
                let (u, _) = row[*port];
                *port += 1;
                if self.visit_node(u) {
                    out.push(u);
                    self.dfs_stack.push((u, 0));
                }
            } else {
                self.dfs_stack.pop();
            }
        }
    }

    /// Number of nodes reachable from `root` (BFS over an internal buffer).
    pub fn reach_count(&mut self, g: &Graph, root: NodeId) -> usize {
        self.begin_nodes(g.n());
        self.visit_node(root);
        self.queue.clear();
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let v = self.queue[head];
            head += 1;
            for &(u, _) in g.neighbors(v) {
                if self.visit_node(u) {
                    self.queue.push(u);
                }
            }
        }
        self.queue.len()
    }

    /// `(connected components, edgeless components)` of `g`, without
    /// materializing the component node lists.
    pub(crate) fn component_summary(&mut self, g: &Graph) -> (usize, usize) {
        self.begin_nodes(g.n());
        let mut comps = 0;
        let mut edgeless = 0;
        for s in 0..g.n() {
            if !self.visit_node(s) {
                continue;
            }
            comps += 1;
            if g.degree(s) == 0 {
                // A component is edgeless iff it is an isolated node.
                edgeless += 1;
                continue;
            }
            self.queue.clear();
            self.queue.push(s);
            let mut head = 0;
            while head < self.queue.len() {
                let v = self.queue[head];
                head += 1;
                for &(u, _) in g.neighbors(v) {
                    if self.visit_node(u) {
                        self.queue.push(u);
                    }
                }
            }
        }
        (comps, edgeless)
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<TraversalScratch> = RefCell::new(TraversalScratch::new());
}

/// Runs `f` with this thread's shared [`TraversalScratch`].
///
/// This is what keeps the classic free-function entry points
/// allocation-free after warmup without changing their signatures. If the
/// thread scratch is already borrowed (a re-entrant call from inside a
/// traversal callback), `f` gets a fresh temporary scratch instead —
/// slower, never wrong.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut TraversalScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut TraversalScratch::new()),
    })
}

/// Drops the retained capacity of this thread's shared scratch. Exists so
/// benchmarks can measure cold-start cost; normal code never needs it.
pub fn reset_thread_scratch() {
    THREAD_SCRATCH.with(|cell| {
        if let Ok(mut scratch) = cell.try_borrow_mut() {
            scratch.reset();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_into_matches_free_function() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut s = TraversalScratch::new();
        let mut out = Vec::new();
        s.bfs_order_into(&g, 2, &mut out);
        assert_eq!(out, crate::traversal::bfs_order(&g, 2));
    }

    #[test]
    fn scratch_survives_shrinking_and_growing_graphs() {
        let mut s = TraversalScratch::new();
        let mut out = Vec::new();
        for n in [10usize, 3, 25, 1] {
            let g = Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)));
            s.bfs_order_into(&g, 0, &mut out);
            assert_eq!(out.len(), n);
            s.dfs_order_into(&g, 0, &mut out);
            assert_eq!(out.len(), n);
            assert_eq!(s.reach_count(&g, 0), n);
        }
    }

    #[test]
    fn epoch_wraparound_clears_marks() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut s = TraversalScratch::new();
        s.node_stamp = u32::MAX - 1;
        assert_eq!(s.reach_count(&g, 0), 3); // stamp becomes u32::MAX
        assert_eq!(s.reach_count(&g, 0), 3); // wraparound path
        assert_eq!(s.node_stamp, 1);
        assert_eq!(s.reach_count(&g, 2), 3);
    }

    #[test]
    fn component_summary_counts() {
        // Path (0-1-2), isolated 3, edge (4-5).
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let mut s = TraversalScratch::new();
        assert_eq!(s.component_summary(&g), (3, 1));
    }

    #[test]
    fn slice_arena_recycles_capacity() {
        let mut arena = SliceArena::default();
        let mut a = arena.take();
        a.extend(0..1000);
        let cap = a.capacity();
        arena.give(a);
        assert_eq!(arena.parked(), 1);
        let b = arena.take();
        assert!(b.is_empty(), "recycled buffers come back cleared");
        assert_eq!(b.capacity(), cap, "recycled buffers keep their capacity");
        assert_eq!(arena.parked(), 0);
        // An empty arena still hands out (fresh) buffers.
        let c = arena.take();
        assert!(c.is_empty());
    }

    #[test]
    fn edge_marks_reset_per_epoch() {
        let mut s = TraversalScratch::new();
        s.begin_edges(5);
        s.mark_edge(2);
        s.mark_edge(4);
        assert!(s.edge_marked(2) && s.edge_marked(4) && !s.edge_marked(0));
        s.begin_edges(5);
        assert!(!s.edge_marked(2) && !s.edge_marked(4), "new epoch clears marks");
        // Epochs interleave freely with node/dart epochs and grow.
        s.begin_edges(9);
        s.mark_edge(8);
        assert!(s.edge_marked(8));
    }

    #[test]
    fn edge_mark_epoch_wraparound() {
        let mut s = TraversalScratch::new();
        s.edge_stamp = u32::MAX - 1;
        s.begin_edges(3);
        s.mark_edge(1);
        assert!(s.edge_marked(1));
        s.begin_edges(3); // wraparound path
        assert!(!s.edge_marked(1));
        assert_eq!(s.edge_stamp, 1);
    }

    #[test]
    fn reentrant_thread_scratch_falls_back() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let n = with_thread_scratch(|outer| {
            let inner = with_thread_scratch(|s| s.reach_count(&g, 0));
            outer.reach_count(&g, 0) + inner
        });
        assert_eq!(n, 6);
    }
}
