//! Planarity testing via the left–right criterion.
//!
//! This is an iterative implementation of the left–right planarity test
//! (de Fraysseix–Rosenstiehl criterion, in the formulation of Brandes'
//! *"The left-right planarity test"*). It decides planarity in
//! O((n + m) log n) time (the log from adjacency sorting) and never
//! recurses, so it is safe on very deep DFS trees.
//!
//! The recognizers for the paper's graph families build on it:
//! * `G` planar ⇔ this test accepts;
//! * `G` outerplanar ⇔ `G + apex` planar (see [`crate::outerplanar`]).

use crate::graph::{EdgeId, Graph, NodeId};

const NONE: usize = usize::MAX;

/// Whether `g` is planar.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, is_planar};
///
/// let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert!(is_planar(&k4));
///
/// let mut k5 = Graph::new(5);
/// for u in 0..5 { for v in (u+1)..5 { k5.add_edge(u, v); } }
/// assert!(!is_planar(&k5));
/// ```
pub fn is_planar(g: &Graph) -> bool {
    LeftRightTester::new(g).run()
}

/// Exact exponential-time planarity decision by exhausting rotation
/// systems: a graph is planar iff *some* rotation system has Euler-genus
/// defect 0. Only usable for small graphs (the search space is
/// `∏_v (deg(v) − 1)!`); it exists to cross-validate [`is_planar`] in
/// tests.
///
/// # Panics
/// Panics if the search space exceeds ~10⁷ rotation systems.
pub fn is_planar_bruteforce(g: &Graph) -> bool {
    use crate::embedding::RotationSystem;
    let n = g.n();
    // Search-space estimate.
    let mut space = 1f64;
    for v in 0..n {
        for k in 2..g.degree(v) {
            space *= k as f64;
        }
    }
    assert!(space <= 1e7, "brute-force planarity infeasible: ~{space:.0} rotations");
    // Enumerate rotations per node: fix the first incident edge, permute
    // the rest (cyclic orders).
    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let choices: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|v| {
            let inc: Vec<usize> = g.incident_edges(v).collect();
            if inc.len() <= 2 {
                return vec![inc];
            }
            permutations(&inc[1..])
                .into_iter()
                .map(|rest| {
                    let mut o = vec![inc[0]];
                    o.extend(rest);
                    o
                })
                .collect()
        })
        .collect();
    // Depth-first product over the per-node choices.
    let mut pick = vec![0usize; n];
    loop {
        let order: Vec<Vec<usize>> = (0..n).map(|v| choices[v][pick[v]].clone()).collect();
        let rho = RotationSystem::from_orders(g, order);
        if rho.is_planar_embedding(g) {
            return true;
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            pick[i] += 1;
            if pick[i] < choices[i].len() {
                break;
            }
            pick[i] = 0;
            i += 1;
        }
    }
}

/// An interval of back edges on the conflict-pair stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Interval {
    low: usize,  // EdgeId or NONE
    high: usize, // EdgeId or NONE
}

impl Interval {
    const EMPTY: Interval = Interval { low: NONE, high: NONE };
    fn is_empty(&self) -> bool {
        self.low == NONE && self.high == NONE
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ConflictPair {
    l: Interval,
    r: Interval,
}

struct LeftRightTester<'g> {
    g: &'g Graph,
    height: Vec<usize>,
    /// parent_edge[v] = edge id of tree edge into v, or NONE.
    parent_edge: Vec<usize>,
    /// For each oriented edge: its tail (source).
    source: Vec<usize>,
    oriented: Vec<bool>,
    lowpt: Vec<usize>,
    lowpt2: Vec<usize>,
    nesting_depth: Vec<usize>,
    /// Ordered outgoing adjacency (set before phase 2).
    ordered_adj: Vec<Vec<EdgeId>>,
    // phase-2 state
    s: Vec<ConflictPair>,
    stack_bottom: Vec<usize>,
    lowpt_edge: Vec<usize>,
    reference: Vec<usize>,
}

impl<'g> LeftRightTester<'g> {
    fn new(g: &'g Graph) -> Self {
        let n = g.n();
        let m = g.m();
        LeftRightTester {
            g,
            height: vec![NONE; n],
            parent_edge: vec![NONE; n],
            source: vec![NONE; m],
            oriented: vec![false; m],
            lowpt: vec![0; m],
            lowpt2: vec![0; m],
            nesting_depth: vec![0; m],
            ordered_adj: vec![Vec::new(); n],
            s: Vec::new(),
            stack_bottom: vec![0; m],
            lowpt_edge: vec![NONE; m],
            reference: vec![NONE; m],
        }
    }

    fn target(&self, e: EdgeId) -> NodeId {
        self.g.edge(e).other(self.source[e])
    }

    fn is_tree_edge(&self, e: EdgeId) -> bool {
        let t = self.target(e);
        self.parent_edge[t] == e
    }

    fn run(&mut self) -> bool {
        let (n, m) = (self.g.n(), self.g.m());
        if n <= 4 || m < 9 {
            return true; // every graph with < 5 nodes or < 9 edges is planar
        }
        if !self.g.satisfies_planar_edge_bound() {
            return false;
        }
        // Phase 1: orientation DFS from every root.
        for root in 0..n {
            if self.height[root] == NONE {
                self.height[root] = 0;
                self.dfs1(root);
            }
        }
        // Sort outgoing adjacency by nesting depth.
        for v in 0..n {
            let mut out: Vec<EdgeId> =
                self.g.incident_edges(v).filter(|&e| self.source[e] == v).collect();
            out.sort_by_key(|&e| self.nesting_depth[e]);
            self.ordered_adj[v] = out;
        }
        // Phase 2: testing DFS from every root.
        for root in 0..n {
            if self.parent_edge[root] == NONE && self.g.degree(root) > 0 && !self.dfs2(root) {
                return false;
            }
        }
        true
    }

    /// Iterative orientation DFS (phase 1).
    fn dfs1(&mut self, root: NodeId) {
        // Frame: (v, port index, edge we entered v by).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&(v, port)) = stack.last() {
            if port < self.g.degree(v) {
                stack.last_mut().unwrap().1 += 1;
                let (w, e) = self.g.neighbors(v)[port];
                if self.oriented[e] {
                    continue;
                }
                self.oriented[e] = true;
                self.source[e] = v;
                self.lowpt[e] = self.height[v];
                self.lowpt2[e] = self.height[v];
                if self.height[w] == NONE {
                    // Tree edge.
                    self.parent_edge[w] = e;
                    self.height[w] = self.height[v] + 1;
                    stack.push((w, 0));
                } else {
                    // Back edge.
                    self.lowpt[e] = self.height[w];
                    self.finish_edge(v, e);
                }
            } else {
                stack.pop();
                // Finish the tree edge into v, updating its parent's lowpts.
                let e = self.parent_edge[v];
                if e != NONE {
                    let u = self.source[e];
                    self.finish_edge(u, e);
                }
            }
        }
    }

    /// Sets the nesting depth of `e` (out-edge of `v`) and folds its
    /// lowpoints into `v`'s parent edge.
    fn finish_edge(&mut self, v: NodeId, e: EdgeId) {
        self.nesting_depth[e] = 2 * self.lowpt[e];
        if self.lowpt2[e] < self.height[v] {
            self.nesting_depth[e] += 1; // chordal
        }
        let pe = self.parent_edge[v];
        if pe != NONE {
            if self.lowpt[e] < self.lowpt[pe] {
                self.lowpt2[pe] = self.lowpt[pe].min(self.lowpt2[e]);
                self.lowpt[pe] = self.lowpt[e];
            } else if self.lowpt[e] > self.lowpt[pe] {
                self.lowpt2[pe] = self.lowpt2[pe].min(self.lowpt[e]);
            } else {
                self.lowpt2[pe] = self.lowpt2[pe].min(self.lowpt2[e]);
            }
        }
    }

    fn lowest(&self, p: &ConflictPair) -> usize {
        match (p.l.low, p.r.low) {
            (NONE, NONE) => NONE,
            (NONE, r) => self.lowpt[r],
            (l, NONE) => self.lowpt[l],
            (l, r) => self.lowpt[l].min(self.lowpt[r]),
        }
    }

    fn conflicting(&self, i: &Interval, b: EdgeId) -> bool {
        !i.is_empty() && self.lowpt[i.high] > self.lowpt[b]
    }

    /// Iterative testing DFS (phase 2). Returns false on a planarity
    /// violation.
    fn dfs2(&mut self, root: NodeId) -> bool {
        // Frame: (v, next out-edge index, edge awaiting post-processing).
        struct Frame {
            v: NodeId,
            idx: usize,
            pending: usize, // out-edge whose subtree just finished, or NONE
        }
        let mut stack = vec![Frame { v: root, idx: 0, pending: NONE }];
        while let Some(frame) = stack.last_mut() {
            let v = frame.v;
            if frame.pending != NONE {
                let ei = frame.pending;
                frame.pending = NONE;
                if !self.integrate_out_edge(v, ei) {
                    return false;
                }
            }
            if frame.idx < self.ordered_adj[v].len() {
                let ei = self.ordered_adj[v][frame.idx];
                frame.idx += 1;
                self.stack_bottom[ei] = self.s.len();
                if self.is_tree_edge(ei) {
                    let w = self.target(ei);
                    stack.last_mut().unwrap().pending = ei;
                    stack.push(Frame { v: w, idx: 0, pending: NONE });
                } else {
                    // Back edge.
                    self.lowpt_edge[ei] = ei;
                    self.s.push(ConflictPair {
                        l: Interval::EMPTY,
                        r: Interval { low: ei, high: ei },
                    });
                    if !self.integrate_out_edge(v, ei) {
                        return false;
                    }
                }
            } else {
                // Leaving v.
                let e = self.parent_edge[v];
                stack.pop();
                if e != NONE && !stack.is_empty() {
                    let u = self.source[e];
                    self.trim_back_edges(u);
                    if self.lowpt[e] < self.height[u] {
                        // e has a return edge: set its reference.
                        let top = *self.s.last().expect("return edge requires a conflict pair");
                        let hl = top.l.high;
                        let hr = top.r.high;
                        self.reference[e] =
                            if hl != NONE && (hr == NONE || self.lowpt[hl] > self.lowpt[hr]) {
                                hl
                            } else {
                                hr
                            };
                    }
                }
            }
        }
        true
    }

    /// The post-processing of out-edge `ei` of `v`: propagate the lowpoint
    /// edge or add the left/right constraints. Returns false on violation.
    fn integrate_out_edge(&mut self, v: NodeId, ei: EdgeId) -> bool {
        if self.lowpt[ei] < self.height[v] {
            // ei has a return edge below v.
            if ei == self.ordered_adj[v][0] {
                let pe = self.parent_edge[v];
                if pe != NONE {
                    self.lowpt_edge[pe] = self.lowpt_edge[ei];
                }
            } else if !self.add_constraints(v, ei) {
                return false;
            }
        }
        true
    }

    fn add_constraints(&mut self, v: NodeId, ei: EdgeId) -> bool {
        let e = self.parent_edge[v];
        debug_assert_ne!(e, NONE);
        let mut p = ConflictPair { l: Interval::EMPTY, r: Interval::EMPTY };
        // Merge return edges of ei into p.r.
        while self.s.len() > self.stack_bottom[ei] {
            let mut q = self.s.pop().expect("stack bottom bookkeeping");
            if !q.l.is_empty() {
                std::mem::swap(&mut q.l, &mut q.r);
            }
            if !q.l.is_empty() {
                return false; // not planar
            }
            debug_assert!(!q.r.is_empty());
            if self.lowpt[q.r.low] > self.lowpt[e] {
                // Merge intervals.
                if p.r.is_empty() {
                    p.r.high = q.r.high;
                } else {
                    self.reference[p.r.low] = q.r.high;
                }
                p.r.low = q.r.low;
            } else {
                // Align.
                self.reference[q.r.low] = self.lowpt_edge[e];
            }
        }
        // Merge conflicting return edges of earlier out-edges into p.l.
        while let Some(top) = self.s.last() {
            let conflict_l = self.conflicting(&top.l, ei);
            let conflict_r = self.conflicting(&top.r, ei);
            if !conflict_l && !conflict_r {
                break;
            }
            let mut q = self.s.pop().unwrap();
            if self.conflicting(&q.r, ei) {
                std::mem::swap(&mut q.l, &mut q.r);
            }
            if self.conflicting(&q.r, ei) {
                return false; // not planar
            }
            // Merge interval below lowpt(ei) into p.r.
            if p.r.low != NONE {
                self.reference[p.r.low] = q.r.high;
            }
            if q.r.low != NONE {
                p.r.low = q.r.low;
            }
            // Merge q.l into p.l.
            if p.l.is_empty() {
                p.l.high = q.l.high;
            } else {
                self.reference[p.l.low] = q.l.high;
            }
            p.l.low = q.l.low;
        }
        if !(p.l.is_empty() && p.r.is_empty()) {
            self.s.push(p);
        }
        true
    }

    /// Removes back edges ending at the parent `u` when leaving its child.
    fn trim_back_edges(&mut self, u: NodeId) {
        // Drop entire conflict pairs returning only to u.
        while let Some(top) = self.s.last() {
            if self.lowest(top) == self.height[u] {
                self.s.pop();
            } else {
                break;
            }
        }
        if let Some(mut p) = self.s.pop() {
            // Trim left interval.
            while p.l.high != NONE && self.target(p.l.high) == u {
                p.l.high = self.reference[p.l.high];
            }
            if p.l.high == NONE && p.l.low != NONE {
                // Just emptied.
                self.reference[p.l.low] = p.r.low;
                p.l.low = NONE;
            }
            // Trim right interval.
            while p.r.high != NONE && self.target(p.r.high) == u {
                p.r.high = self.reference[p.r.high];
            }
            if p.r.high == NONE && p.r.low != NONE {
                self.reference[p.r.low] = p.l.low;
                p.r.low = NONE;
            }
            self.s.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut g = Graph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v);
            }
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Subdivides every edge of `g` `k` times.
    fn subdivide(g: &Graph, k: usize) -> Graph {
        let mut h = Graph::new(g.n());
        for e in g.edges() {
            let mut prev = e.u;
            for _ in 0..k {
                let mid = h.add_node();
                h.add_edge(prev, mid);
                prev = mid;
            }
            h.add_edge(prev, e.v);
        }
        h
    }

    #[test]
    fn small_graphs_planar() {
        assert!(is_planar(&Graph::new(0)));
        assert!(is_planar(&Graph::new(1)));
        assert!(is_planar(&complete(4)));
        assert!(is_planar(&cycle(10)));
    }

    #[test]
    fn k5_not_planar() {
        assert!(!is_planar(&complete(5)));
    }

    #[test]
    fn k33_not_planar() {
        assert!(!is_planar(&complete_bipartite(3, 3)));
    }

    #[test]
    fn k6_k7_not_planar() {
        assert!(!is_planar(&complete(6)));
        assert!(!is_planar(&complete(7)));
    }

    #[test]
    fn k5_subdivisions_not_planar() {
        for k in 1..=4 {
            assert!(!is_planar(&subdivide(&complete(5), k)), "k = {k}");
        }
    }

    #[test]
    fn k33_subdivisions_not_planar() {
        for k in 1..=4 {
            assert!(!is_planar(&subdivide(&complete_bipartite(3, 3), k)), "k = {k}");
        }
    }

    #[test]
    fn k24_planar_k34_not() {
        assert!(is_planar(&complete_bipartite(2, 4)));
        assert!(!is_planar(&complete_bipartite(3, 4)));
    }

    #[test]
    fn petersen_graph_not_planar() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -> i+5.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn grid_graphs_planar() {
        for (rows, cols) in [(3usize, 3usize), (4, 7), (10, 10)] {
            let mut g = Graph::new(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    let v = r * cols + c;
                    if c + 1 < cols {
                        g.add_edge(v, v + 1);
                    }
                    if r + 1 < rows {
                        g.add_edge(v, v + cols);
                    }
                }
            }
            assert!(is_planar(&g), "{rows}x{cols} grid");
        }
    }

    #[test]
    fn wheel_graphs_planar() {
        for n in 4..20 {
            let mut g = cycle(n);
            let hub = g.add_node();
            for v in 0..n {
                g.add_edge(v, hub);
            }
            assert!(is_planar(&g), "wheel W{n}");
        }
    }

    #[test]
    fn maximal_planar_plus_edge_not_planar() {
        // Octahedron K2,2,2 = maximal planar on 6 nodes (12 edges = 3n-6).
        let mut g = Graph::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                if v != u + 3 {
                    // u and u+3 are the antipodal non-adjacent pairs
                    g.add_edge(u, v);
                }
            }
        }
        assert_eq!(g.m(), 12);
        assert!(is_planar(&g));
        // Adding any antipodal edge exceeds 3n-6 and must be non-planar.
        let mut h = g.clone();
        h.add_edge(0, 3);
        assert!(!is_planar(&h));
    }

    #[test]
    fn disconnected_planarity() {
        // Two K4's and one K5: non-planar overall.
        let mut g = Graph::new(13);
        let add_clique = |g: &mut Graph, base: usize, k: usize| {
            for u in 0..k {
                for v in (u + 1)..k {
                    g.add_edge(base + u, base + v);
                }
            }
        };
        add_clique(&mut g, 0, 4);
        add_clique(&mut g, 4, 4);
        assert!(is_planar(&g));
        add_clique(&mut g, 8, 5);
        assert!(!is_planar(&g));
    }

    #[test]
    fn dense_planar_triangulation_strip() {
        // A triangulated strip: nodes 0..n, edges (i, i+1), (i, i+2).
        let n = 50;
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        for i in 0..n - 2 {
            g.add_edge(i, i + 2);
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn bruteforce_oracle_agrees_on_small_graphs() {
        // All graphs on 5 nodes (sampled), plus K5 and K3,3 directly.
        assert!(!is_planar_bruteforce(&complete(5)));
        assert!(is_planar_bruteforce(&complete(4)));
        let all_pairs: Vec<(usize, usize)> =
            (0..5).flat_map(|u| ((u + 1)..5).map(move |v| (u, v))).collect();
        let mut checked = 0;
        for mask in 0u32..(1 << all_pairs.len()) {
            if mask % 13 != 0 {
                continue; // subsample for speed
            }
            let edges: Vec<(usize, usize)> = all_pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let g = Graph::from_edges(5, edges);
            assert_eq!(is_planar(&g), is_planar_bruteforce(&g), "mask {mask:b}");
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn k5_with_planar_padding_not_planar() {
        // K5 on nodes 0..5 plus a long path attached: still non-planar.
        let mut g = complete(5);
        let mut prev = 0;
        for _ in 0..30 {
            let v = g.add_node();
            g.add_edge(prev, v);
            prev = v;
        }
        assert!(!is_planar(&g));
    }
}
