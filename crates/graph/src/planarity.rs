//! Planarity testing via the left–right criterion.
//!
//! This is an iterative implementation of the left–right planarity test
//! (de Fraysseix–Rosenstiehl criterion, in the formulation of Brandes'
//! *"The left-right planarity test"*). It decides planarity in
//! O((n + m) log n) time (the log from adjacency sorting) and never
//! recurses, so it is safe on very deep DFS trees.
//!
//! The recognizers for the paper's graph families build on it:
//! * `G` planar ⇔ this test accepts;
//! * `G` outerplanar ⇔ `G + apex` planar (see [`crate::outerplanar`]).

use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{reset_buf, with_thread_scratch, TraversalScratch};

const NONE: usize = usize::MAX;

/// Whether `g` is planar.
///
/// Uses the per-thread [`TraversalScratch`]; see [`is_planar_with`] for
/// the explicit-scratch variant.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, is_planar};
///
/// let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert!(is_planar(&k4));
///
/// let mut k5 = Graph::new(5);
/// for u in 0..5 { for v in (u+1)..5 { k5.add_edge(u, v); } }
/// assert!(!is_planar(&k5));
/// ```
pub fn is_planar(g: &Graph) -> bool {
    with_thread_scratch(|s| is_planar_with(g, s))
}

/// [`is_planar`] with an explicit scratch: all tester state (per-node and
/// per-edge arrays, both DFS stacks, the conflict-pair stack, the
/// nesting-ordered adjacency) lives in `scratch` and is reused across
/// calls, so a warm call performs no heap allocation.
pub fn is_planar_with(g: &Graph, scratch: &mut TraversalScratch) -> bool {
    LeftRightTester { g, a: &mut scratch.lr }.run()
}

/// Exact exponential-time planarity decision by exhausting rotation
/// systems: a graph is planar iff *some* rotation system has Euler-genus
/// defect 0. Only usable for small graphs (the search space is
/// `∏_v (deg(v) − 1)!`); it exists to cross-validate [`is_planar`] in
/// tests.
///
/// # Panics
/// Panics if the search space exceeds ~10⁷ rotation systems.
pub fn is_planar_bruteforce(g: &Graph) -> bool {
    use crate::embedding::RotationSystem;
    let n = g.n();
    // Search-space estimate.
    let mut space = 1f64;
    for v in 0..n {
        for k in 2..g.degree(v) {
            space *= k as f64;
        }
    }
    assert!(space <= 1e7, "brute-force planarity infeasible: ~{space:.0} rotations");
    // Enumerate rotations per node: fix the first incident edge, permute
    // the rest (cyclic orders).
    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }
    let choices: Vec<Vec<Vec<usize>>> = (0..n)
        .map(|v| {
            let inc: Vec<usize> = g.incident_edges(v).collect();
            if inc.len() <= 2 {
                return vec![inc];
            }
            permutations(&inc[1..])
                .into_iter()
                .map(|rest| {
                    let mut o = vec![inc[0]];
                    o.extend(rest);
                    o
                })
                .collect()
        })
        .collect();
    // Depth-first product over the per-node choices.
    let mut pick = vec![0usize; n];
    loop {
        let order: Vec<Vec<usize>> = (0..n).map(|v| choices[v][pick[v]].clone()).collect();
        let rho = RotationSystem::from_orders(g, order);
        if rho.is_planar_embedding(g) {
            return true;
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == n {
                return false;
            }
            pick[i] += 1;
            if pick[i] < choices[i].len() {
                break;
            }
            pick[i] = 0;
            i += 1;
        }
    }
}

/// An interval of back edges on the conflict-pair stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Interval {
    low: usize,  // EdgeId or NONE
    high: usize, // EdgeId or NONE
}

impl Interval {
    const EMPTY: Interval = Interval { low: NONE, high: NONE };
    fn is_empty(&self) -> bool {
        self.low == NONE && self.high == NONE
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ConflictPair {
    l: Interval,
    r: Interval,
}

/// DFS-2 frame: (node, next out-edge index, out-edge awaiting
/// post-processing or `NONE`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Frame {
    v: NodeId,
    idx: usize,
    pending: usize,
}

/// Reusable work arrays of the LR tester, owned by
/// [`TraversalScratch`]. All buffers are reset by value on each run and
/// grow monotonically to the largest (n, m) seen.
#[derive(Debug, Default)]
pub(crate) struct LrArena {
    height: Vec<usize>,
    /// parent_edge[v] = edge id of tree edge into v, or NONE.
    parent_edge: Vec<usize>,
    /// For each oriented edge: its tail (source).
    source: Vec<usize>,
    oriented: Vec<bool>,
    lowpt: Vec<usize>,
    lowpt2: Vec<usize>,
    nesting_depth: Vec<usize>,
    /// Flat outgoing adjacency grouped by source node and sorted by
    /// nesting depth within each group (replaces the seed's per-node
    /// `Vec<Vec<EdgeId>>`, built once per run before phase 2).
    adj: Vec<EdgeId>,
    /// Group offsets into `adj` (length n + 1).
    adj_off: Vec<u32>,
    /// Scatter cursor for the counting sort that fills `adj`.
    cursor: Vec<u32>,
    // phase-2 state
    s: Vec<ConflictPair>,
    stack_bottom: Vec<usize>,
    lowpt_edge: Vec<usize>,
    reference: Vec<usize>,
    dfs1_stack: Vec<(NodeId, usize)>,
    dfs2_stack: Vec<Frame>,
}

impl LrArena {
    fn reset(&mut self, n: usize, m: usize) {
        reset_buf(&mut self.height, n, NONE);
        reset_buf(&mut self.parent_edge, n, NONE);
        reset_buf(&mut self.source, m, NONE);
        reset_buf(&mut self.oriented, m, false);
        reset_buf(&mut self.lowpt, m, 0);
        reset_buf(&mut self.lowpt2, m, 0);
        reset_buf(&mut self.nesting_depth, m, 0);
        reset_buf(&mut self.adj, m, 0);
        reset_buf(&mut self.adj_off, n + 1, 0);
        self.cursor.clear();
        self.s.clear();
        reset_buf(&mut self.stack_bottom, m, 0);
        reset_buf(&mut self.lowpt_edge, m, NONE);
        reset_buf(&mut self.reference, m, NONE);
        self.dfs1_stack.clear();
        self.dfs2_stack.clear();
    }
}

struct LeftRightTester<'g, 'a> {
    g: &'g Graph,
    a: &'a mut LrArena,
}

impl LeftRightTester<'_, '_> {
    fn target(&self, e: EdgeId) -> NodeId {
        self.g.edge(e).other(self.a.source[e])
    }

    fn is_tree_edge(&self, e: EdgeId) -> bool {
        let t = self.target(e);
        self.a.parent_edge[t] == e
    }

    /// The out-edges of `v`, by nesting depth (valid after phase 1).
    #[inline]
    fn out_adj(&self, v: NodeId) -> &[EdgeId] {
        &self.a.adj[self.a.adj_off[v] as usize..self.a.adj_off[v + 1] as usize]
    }

    fn run(&mut self) -> bool {
        let (n, m) = (self.g.n(), self.g.m());
        if n <= 4 || m < 9 {
            return true; // every graph with < 5 nodes or < 9 edges is planar
        }
        if !self.g.satisfies_planar_edge_bound() {
            return false;
        }
        self.a.reset(n, m);
        // Phase 1: orientation DFS from every root.
        for root in 0..n {
            if self.a.height[root] == NONE {
                self.a.height[root] = 0;
                self.dfs1(root);
            }
        }
        // Group out-edges by source (counting sort preserves nothing we
        // need ordered), then sort each group by nesting depth.
        {
            let LrArena { source, nesting_depth, adj, adj_off, cursor, .. } = &mut *self.a;
            for &s in source.iter() {
                adj_off[s + 1] += 1;
            }
            for v in 0..n {
                adj_off[v + 1] += adj_off[v];
            }
            cursor.extend_from_slice(&adj_off[..n]);
            for (e, &s) in source.iter().enumerate() {
                adj[cursor[s] as usize] = e;
                cursor[s] += 1;
            }
            for v in 0..n {
                adj[adj_off[v] as usize..adj_off[v + 1] as usize]
                    .sort_unstable_by_key(|&e| nesting_depth[e]);
            }
        }
        // Phase 2: testing DFS from every root.
        for root in 0..n {
            if self.a.parent_edge[root] == NONE && self.g.degree(root) > 0 && !self.dfs2(root) {
                return false;
            }
        }
        true
    }

    /// Iterative orientation DFS (phase 1).
    fn dfs1(&mut self, root: NodeId) {
        // Frame: (v, port index).
        self.a.dfs1_stack.clear();
        self.a.dfs1_stack.push((root, 0));
        while let Some(&(v, port)) = self.a.dfs1_stack.last() {
            if port < self.g.degree(v) {
                self.a.dfs1_stack.last_mut().unwrap().1 += 1;
                let (w, e) = self.g.neighbors(v)[port];
                if self.a.oriented[e] {
                    continue;
                }
                self.a.oriented[e] = true;
                self.a.source[e] = v;
                self.a.lowpt[e] = self.a.height[v];
                self.a.lowpt2[e] = self.a.height[v];
                if self.a.height[w] == NONE {
                    // Tree edge.
                    self.a.parent_edge[w] = e;
                    self.a.height[w] = self.a.height[v] + 1;
                    self.a.dfs1_stack.push((w, 0));
                } else {
                    // Back edge.
                    self.a.lowpt[e] = self.a.height[w];
                    self.finish_edge(v, e);
                }
            } else {
                self.a.dfs1_stack.pop();
                // Finish the tree edge into v, updating its parent's lowpts.
                let e = self.a.parent_edge[v];
                if e != NONE {
                    let u = self.a.source[e];
                    self.finish_edge(u, e);
                }
            }
        }
    }

    /// Sets the nesting depth of `e` (out-edge of `v`) and folds its
    /// lowpoints into `v`'s parent edge.
    fn finish_edge(&mut self, v: NodeId, e: EdgeId) {
        let a = &mut *self.a;
        a.nesting_depth[e] = 2 * a.lowpt[e];
        if a.lowpt2[e] < a.height[v] {
            a.nesting_depth[e] += 1; // chordal
        }
        let pe = a.parent_edge[v];
        if pe != NONE {
            if a.lowpt[e] < a.lowpt[pe] {
                a.lowpt2[pe] = a.lowpt[pe].min(a.lowpt2[e]);
                a.lowpt[pe] = a.lowpt[e];
            } else if a.lowpt[e] > a.lowpt[pe] {
                a.lowpt2[pe] = a.lowpt2[pe].min(a.lowpt[e]);
            } else {
                a.lowpt2[pe] = a.lowpt2[pe].min(a.lowpt2[e]);
            }
        }
    }

    fn lowest(&self, p: &ConflictPair) -> usize {
        match (p.l.low, p.r.low) {
            (NONE, NONE) => NONE,
            (NONE, r) => self.a.lowpt[r],
            (l, NONE) => self.a.lowpt[l],
            (l, r) => self.a.lowpt[l].min(self.a.lowpt[r]),
        }
    }

    fn conflicting(&self, i: &Interval, b: EdgeId) -> bool {
        !i.is_empty() && self.a.lowpt[i.high] > self.a.lowpt[b]
    }

    /// Iterative testing DFS (phase 2). Returns false on a planarity
    /// violation.
    fn dfs2(&mut self, root: NodeId) -> bool {
        self.a.dfs2_stack.clear();
        self.a.dfs2_stack.push(Frame { v: root, idx: 0, pending: NONE });
        while let Some(&Frame { v, idx, pending }) = self.a.dfs2_stack.last() {
            if pending != NONE {
                self.a.dfs2_stack.last_mut().unwrap().pending = NONE;
                if !self.integrate_out_edge(v, pending) {
                    return false;
                }
            }
            if idx < self.out_adj(v).len() {
                let ei = self.out_adj(v)[idx];
                self.a.dfs2_stack.last_mut().unwrap().idx += 1;
                self.a.stack_bottom[ei] = self.a.s.len();
                if self.is_tree_edge(ei) {
                    let w = self.target(ei);
                    self.a.dfs2_stack.last_mut().unwrap().pending = ei;
                    self.a.dfs2_stack.push(Frame { v: w, idx: 0, pending: NONE });
                } else {
                    // Back edge.
                    self.a.lowpt_edge[ei] = ei;
                    self.a.s.push(ConflictPair {
                        l: Interval::EMPTY,
                        r: Interval { low: ei, high: ei },
                    });
                    if !self.integrate_out_edge(v, ei) {
                        return false;
                    }
                }
            } else {
                // Leaving v.
                let e = self.a.parent_edge[v];
                self.a.dfs2_stack.pop();
                if e != NONE && !self.a.dfs2_stack.is_empty() {
                    let u = self.a.source[e];
                    self.trim_back_edges(u);
                    if self.a.lowpt[e] < self.a.height[u] {
                        // e has a return edge: set its reference.
                        let top = *self.a.s.last().expect("return edge requires a conflict pair");
                        let hl = top.l.high;
                        let hr = top.r.high;
                        self.a.reference[e] =
                            if hl != NONE && (hr == NONE || self.a.lowpt[hl] > self.a.lowpt[hr]) {
                                hl
                            } else {
                                hr
                            };
                    }
                }
            }
        }
        true
    }

    /// The post-processing of out-edge `ei` of `v`: propagate the lowpoint
    /// edge or add the left/right constraints. Returns false on violation.
    fn integrate_out_edge(&mut self, v: NodeId, ei: EdgeId) -> bool {
        if self.a.lowpt[ei] < self.a.height[v] {
            // ei has a return edge below v.
            if ei == self.out_adj(v)[0] {
                let pe = self.a.parent_edge[v];
                if pe != NONE {
                    self.a.lowpt_edge[pe] = self.a.lowpt_edge[ei];
                }
            } else if !self.add_constraints(v, ei) {
                return false;
            }
        }
        true
    }

    fn add_constraints(&mut self, v: NodeId, ei: EdgeId) -> bool {
        let e = self.a.parent_edge[v];
        debug_assert_ne!(e, NONE);
        let mut p = ConflictPair { l: Interval::EMPTY, r: Interval::EMPTY };
        // Merge return edges of ei into p.r.
        while self.a.s.len() > self.a.stack_bottom[ei] {
            let mut q = self.a.s.pop().expect("stack bottom bookkeeping");
            if !q.l.is_empty() {
                std::mem::swap(&mut q.l, &mut q.r);
            }
            if !q.l.is_empty() {
                return false; // not planar
            }
            debug_assert!(!q.r.is_empty());
            if self.a.lowpt[q.r.low] > self.a.lowpt[e] {
                // Merge intervals.
                if p.r.is_empty() {
                    p.r.high = q.r.high;
                } else {
                    self.a.reference[p.r.low] = q.r.high;
                }
                p.r.low = q.r.low;
            } else {
                // Align.
                self.a.reference[q.r.low] = self.a.lowpt_edge[e];
            }
        }
        // Merge conflicting return edges of earlier out-edges into p.l.
        while let Some(top) = self.a.s.last() {
            let conflict_l = self.conflicting(&top.l, ei);
            let conflict_r = self.conflicting(&top.r, ei);
            if !conflict_l && !conflict_r {
                break;
            }
            let mut q = self.a.s.pop().unwrap();
            if self.conflicting(&q.r, ei) {
                std::mem::swap(&mut q.l, &mut q.r);
            }
            if self.conflicting(&q.r, ei) {
                return false; // not planar
            }
            // Merge interval below lowpt(ei) into p.r.
            if p.r.low != NONE {
                self.a.reference[p.r.low] = q.r.high;
            }
            if q.r.low != NONE {
                p.r.low = q.r.low;
            }
            // Merge q.l into p.l.
            if p.l.is_empty() {
                p.l.high = q.l.high;
            } else {
                self.a.reference[p.l.low] = q.l.high;
            }
            p.l.low = q.l.low;
        }
        if !(p.l.is_empty() && p.r.is_empty()) {
            self.a.s.push(p);
        }
        true
    }

    /// Removes back edges ending at the parent `u` when leaving its child.
    fn trim_back_edges(&mut self, u: NodeId) {
        // Drop entire conflict pairs returning only to u.
        while let Some(top) = self.a.s.last() {
            if self.lowest(top) == self.a.height[u] {
                self.a.s.pop();
            } else {
                break;
            }
        }
        if let Some(mut p) = self.a.s.pop() {
            // Trim left interval.
            while p.l.high != NONE && self.target(p.l.high) == u {
                p.l.high = self.a.reference[p.l.high];
            }
            if p.l.high == NONE && p.l.low != NONE {
                // Just emptied.
                self.a.reference[p.l.low] = p.r.low;
                p.l.low = NONE;
            }
            // Trim right interval.
            while p.r.high != NONE && self.target(p.r.high) == u {
                p.r.high = self.a.reference[p.r.high];
            }
            if p.r.high == NONE && p.r.low != NONE {
                self.a.reference[p.r.low] = p.l.low;
                p.r.low = NONE;
            }
            self.a.s.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    fn complete_bipartite(a: usize, b: usize) -> Graph {
        let mut g = Graph::new(a + b);
        for u in 0..a {
            for v in 0..b {
                g.add_edge(u, a + v);
            }
        }
        g
    }

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// Subdivides every edge of `g` `k` times.
    fn subdivide(g: &Graph, k: usize) -> Graph {
        let mut h = Graph::new(g.n());
        for e in g.edges() {
            let mut prev = e.u;
            for _ in 0..k {
                let mid = h.add_node();
                h.add_edge(prev, mid);
                prev = mid;
            }
            h.add_edge(prev, e.v);
        }
        h
    }

    #[test]
    fn small_graphs_planar() {
        assert!(is_planar(&Graph::new(0)));
        assert!(is_planar(&Graph::new(1)));
        assert!(is_planar(&complete(4)));
        assert!(is_planar(&cycle(10)));
    }

    #[test]
    fn k5_not_planar() {
        assert!(!is_planar(&complete(5)));
    }

    #[test]
    fn k33_not_planar() {
        assert!(!is_planar(&complete_bipartite(3, 3)));
    }

    #[test]
    fn k6_k7_not_planar() {
        assert!(!is_planar(&complete(6)));
        assert!(!is_planar(&complete(7)));
    }

    #[test]
    fn k5_subdivisions_not_planar() {
        for k in 1..=4 {
            assert!(!is_planar(&subdivide(&complete(5), k)), "k = {k}");
        }
    }

    #[test]
    fn k33_subdivisions_not_planar() {
        for k in 1..=4 {
            assert!(!is_planar(&subdivide(&complete_bipartite(3, 3), k)), "k = {k}");
        }
    }

    #[test]
    fn k24_planar_k34_not() {
        assert!(is_planar(&complete_bipartite(2, 4)));
        assert!(!is_planar(&complete_bipartite(3, 4)));
    }

    #[test]
    fn petersen_graph_not_planar() {
        // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -> i+5.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        assert!(!is_planar(&g));
    }

    #[test]
    fn grid_graphs_planar() {
        for (rows, cols) in [(3usize, 3usize), (4, 7), (10, 10)] {
            let mut g = Graph::new(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    let v = r * cols + c;
                    if c + 1 < cols {
                        g.add_edge(v, v + 1);
                    }
                    if r + 1 < rows {
                        g.add_edge(v, v + cols);
                    }
                }
            }
            assert!(is_planar(&g), "{rows}x{cols} grid");
        }
    }

    #[test]
    fn wheel_graphs_planar() {
        for n in 4..20 {
            let mut g = cycle(n);
            let hub = g.add_node();
            for v in 0..n {
                g.add_edge(v, hub);
            }
            assert!(is_planar(&g), "wheel W{n}");
        }
    }

    #[test]
    fn maximal_planar_plus_edge_not_planar() {
        // Octahedron K2,2,2 = maximal planar on 6 nodes (12 edges = 3n-6).
        let mut g = Graph::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                if v != u + 3 {
                    // u and u+3 are the antipodal non-adjacent pairs
                    g.add_edge(u, v);
                }
            }
        }
        assert_eq!(g.m(), 12);
        assert!(is_planar(&g));
        // Adding any antipodal edge exceeds 3n-6 and must be non-planar.
        let mut h = g.clone();
        h.add_edge(0, 3);
        assert!(!is_planar(&h));
    }

    #[test]
    fn disconnected_planarity() {
        // Two K4's and one K5: non-planar overall.
        let mut g = Graph::new(13);
        let add_clique = |g: &mut Graph, base: usize, k: usize| {
            for u in 0..k {
                for v in (u + 1)..k {
                    g.add_edge(base + u, base + v);
                }
            }
        };
        add_clique(&mut g, 0, 4);
        add_clique(&mut g, 4, 4);
        assert!(is_planar(&g));
        add_clique(&mut g, 8, 5);
        assert!(!is_planar(&g));
    }

    #[test]
    fn dense_planar_triangulation_strip() {
        // A triangulated strip: nodes 0..n, edges (i, i+1), (i, i+2).
        let n = 50;
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        for i in 0..n - 2 {
            g.add_edge(i, i + 2);
        }
        assert!(is_planar(&g));
    }

    #[test]
    fn bruteforce_oracle_agrees_on_small_graphs() {
        // All graphs on 5 nodes (sampled), plus K5 and K3,3 directly.
        assert!(!is_planar_bruteforce(&complete(5)));
        assert!(is_planar_bruteforce(&complete(4)));
        let all_pairs: Vec<(usize, usize)> =
            (0..5).flat_map(|u| ((u + 1)..5).map(move |v| (u, v))).collect();
        let mut checked = 0;
        for mask in 0u32..(1 << all_pairs.len()) {
            if mask % 13 != 0 {
                continue; // subsample for speed
            }
            let edges: Vec<(usize, usize)> = all_pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let g = Graph::from_edges(5, edges);
            assert_eq!(is_planar(&g), is_planar_bruteforce(&g), "mask {mask:b}");
            checked += 1;
        }
        assert!(checked > 50);
    }

    #[test]
    fn k5_with_planar_padding_not_planar() {
        // K5 on nodes 0..5 plus a long path attached: still non-planar.
        let mut g = complete(5);
        let mut prev = 0;
        for _ in 0..30 {
            let v = g.add_node();
            g.add_edge(prev, v);
            prev = v;
        }
        assert!(!is_planar(&g));
    }
}
