//! Nested ear decompositions of series-parallel graphs (Eppstein).
//!
//! A *nested ear decomposition* (§8 of the paper, after \[Epp92\]) partitions
//! the edge set into simple paths ("ears") `P_1, ..., P_k` such that
//!
//! 1. both endpoints of each ear `P_j ≠ P_1` lie on some ear `P_i`, `i < j`;
//! 2. the interior nodes of `P_j` appear in no earlier ear;
//! 3. the ears attached to the same host ear are properly nested within it.
//!
//! Lemma 8.1: a graph is series-parallel iff it has a nested ear
//! decomposition. [`EarDecomposition::from_sp_tree`] constructs one from an
//! SP decomposition tree: the spine of the root becomes `P_1` and every
//! non-first branch of a parallel composition becomes a new ear hosted on
//! the ear its terminals live in. [`EarDecomposition::validate`] checks the
//! three conditions from scratch (used by tests and by instance
//! classification).

use crate::graph::{Graph, NodeId};
use crate::series_parallel::{SpNode, SpTree};

/// One ear: a simple path given by its vertex sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ear {
    /// The vertex sequence of the path (length ≥ 2).
    pub path: Vec<NodeId>,
    /// Index of the host ear both endpoints lie on (`None` for `P_1`).
    pub host: Option<usize>,
}

impl Ear {
    /// The two endpoints of the ear.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (*self.path.first().unwrap(), *self.path.last().unwrap())
    }

    /// The interior nodes of the ear.
    pub fn interior(&self) -> &[NodeId] {
        &self.path[1..self.path.len() - 1]
    }
}

/// A nested ear decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EarDecomposition {
    /// Ears in host-before-guest order (`ears[0]` is `P_1`).
    pub ears: Vec<Ear>,
}

impl EarDecomposition {
    /// Builds a nested ear decomposition from an SP decomposition tree.
    ///
    /// The spines of first parallel branches stay inside their host ear;
    /// each further branch becomes its own ear. Ears are emitted in
    /// DFS preorder, so hosts always precede guests.
    pub fn from_sp_tree(tree: &SpTree) -> Self {
        let mut ears: Vec<Ear> = Vec::new();
        let (root_s, _) = tree.terminals(tree.root);
        ears.push(Ear { path: tree.spine(tree.root, root_s), host: None });
        // Stack of (node, ear the node's spine belongs to, orientation start).
        let mut stack: Vec<(usize, usize, NodeId)> = vec![(tree.root, 0, root_s)];
        while let Some((i, ear, from)) = stack.pop() {
            let entry = &tree.nodes[i];
            let to = if from == entry.s { entry.t } else { entry.s };
            match entry.node {
                SpNode::Leaf { .. } => {}
                SpNode::Series { mid, children } => {
                    let (c0s, c0t) = tree.terminals(children.0);
                    let (first, second) = if c0s == from || c0t == from {
                        (children.0, children.1)
                    } else {
                        (children.1, children.0)
                    };
                    stack.push((first, ear, from));
                    stack.push((second, ear, mid));
                }
                SpNode::Parallel { .. } => {
                    // Flatten the whole chain of nested parallels over the
                    // same terminal pair into one n-ary composition: the
                    // first branch continues the current ear's spine, every
                    // other branch becomes an ear hosted on the *current*
                    // ear (never on a sibling, so no ear is ever hosted on
                    // a single-edge ear).
                    let mut branches = Vec::new();
                    collect_parallel_branches(tree, i, &mut branches);
                    stack.push((branches[0], ear, from));
                    for &b in &branches[1..] {
                        let new_ear = ears.len();
                        ears.push(Ear { path: tree.spine(b, from), host: Some(ear) });
                        stack.push((b, new_ear, from));
                    }
                    let _ = to;
                }
            }
        }
        EarDecomposition { ears }
    }

    /// Number of ears.
    pub fn len(&self) -> usize {
        self.ears.len()
    }

    /// Whether the decomposition has no ears.
    pub fn is_empty(&self) -> bool {
        self.ears.is_empty()
    }

    /// Checks that this is a valid nested ear decomposition of `g`:
    /// the ears are simple paths partitioning `E(g)`, condition (1)
    /// (endpoints on an earlier host ear), condition (2) (fresh interiors)
    /// and condition (3) (ears properly nested within their host).
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.ears.is_empty() {
            return Err("no ears".into());
        }
        if self.ears[0].host.is_some() {
            return Err("P_1 must not have a host".into());
        }
        // Paths are simple and use real edges; edge partition.
        let mut edge_used = vec![false; g.m()];
        let mut node_first_seen: Vec<Option<usize>> = vec![None; g.n()];
        for (j, ear) in self.ears.iter().enumerate() {
            if ear.path.len() < 2 {
                return Err(format!("ear {j} is too short"));
            }
            let mut seen = std::collections::HashSet::new();
            for &v in &ear.path {
                if !seen.insert(v) {
                    return Err(format!("ear {j} repeats node {v}"));
                }
            }
            for w in ear.path.windows(2) {
                let e = g
                    .edge_between(w[0], w[1])
                    .ok_or_else(|| format!("ear {j} uses non-edge ({}, {})", w[0], w[1]))?;
                if edge_used[e] {
                    return Err(format!("edge ({}, {}) used twice", w[0], w[1]));
                }
                edge_used[e] = true;
            }
            // Condition (2): interiors unseen so far; record first sightings.
            for &v in ear.interior() {
                if node_first_seen[v].is_some() {
                    return Err(format!("interior node {v} of ear {j} appeared earlier"));
                }
            }
            // Condition (1): endpoints lie on the host ear.
            if j > 0 {
                let host = ear.host.ok_or_else(|| format!("ear {j} has no host"))?;
                if host >= j {
                    return Err(format!("ear {j} hosted on later ear {host}"));
                }
                let (a, b) = ear.endpoints();
                let hp = &self.ears[host].path;
                if !hp.contains(&a) || !hp.contains(&b) {
                    return Err(format!("endpoints of ear {j} not on host ear {host}"));
                }
            }
            for &v in &ear.path {
                node_first_seen[v].get_or_insert(j);
            }
        }
        if !edge_used.iter().all(|&u| u) {
            return Err("ears do not cover all edges".into());
        }
        // Condition (3): ears on the same host are properly nested.
        for i in 0..self.ears.len() {
            let hp = &self.ears[i].path;
            let pos: std::collections::HashMap<NodeId, usize> =
                hp.iter().enumerate().map(|(k, &v)| (v, k)).collect();
            // Collect intervals of guests of ear i (as host-path positions).
            let mut intervals: Vec<(usize, usize)> = Vec::new();
            for ear in self.ears.iter().filter(|e| e.host == Some(i)) {
                let (a, b) = ear.endpoints();
                let (pa, pb) = (pos[&a], pos[&b]);
                intervals.push((pa.min(pb), pa.max(pb)));
            }
            // Enclosing intervals first: left ascending, right descending.
            intervals.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            // Check pairwise properly-nested (no interleaving).
            let mut stack: Vec<(usize, usize)> = Vec::new();
            for &(lo, hi) in &intervals {
                while let Some(&(slo, shi)) = stack.last() {
                    if shi <= lo {
                        stack.pop();
                    } else if lo >= slo && hi <= shi {
                        break;
                    } else {
                        return Err(format!(
                            "ears on host {i} interleave: [{slo},{shi}] vs [{lo},{hi}]"
                        ));
                    }
                }
                stack.push((lo, hi));
            }
        }
        Ok(())
    }
}

/// Expands a maximal chain of nested parallel compositions (all over the
/// same terminal pair) into its non-parallel branches, in spine-first
/// order.
fn collect_parallel_branches(tree: &SpTree, i: usize, out: &mut Vec<usize>) {
    match tree.nodes[i].node {
        SpNode::Parallel { children } => {
            collect_parallel_branches(tree, children.0, out);
            collect_parallel_branches(tree, children.1, out);
        }
        _ => out.push(i),
    }
}

/// Convenience: the nested ear decomposition of a series-parallel graph,
/// if it is one.
pub fn nested_ear_decomposition(g: &Graph) -> Option<EarDecomposition> {
    crate::series_parallel::sp_tree(g).map(|t| EarDecomposition::from_sp_tree(&t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn check(g: &Graph) -> EarDecomposition {
        let d = nested_ear_decomposition(g).expect("graph should be series-parallel");
        d.validate(g).unwrap();
        d
    }

    #[test]
    fn single_edge() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let d = check(&g);
        assert_eq!(d.len(), 1);
        assert_eq!(d.ears[0].path, vec![0, 1]);
    }

    #[test]
    fn path_is_one_ear() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let d = check(&g);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn cycle_is_two_ears() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = check(&g);
        assert_eq!(d.len(), 2);
        assert_eq!(d.ears[1].host, Some(0));
    }

    #[test]
    fn theta_graph_ears() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)]);
        let d = check(&g);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn nested_thetas() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let mut frontier = vec![(0usize, 1usize)];
        for _ in 0..4 {
            let mut next = Vec::new();
            for (u, v) in frontier {
                let a = g.add_node();
                g.add_edge(u, a);
                g.add_edge(a, v);
                next.push((u, a));
                next.push((a, v));
            }
            frontier = next;
        }
        let d = check(&g);
        assert!(d.len() > 4);
    }

    #[test]
    fn two_blocks_share_cut_node() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        check(&g);
    }

    #[test]
    fn validate_rejects_crossing_ears() {
        // Path 0-1-2-3 with arcs (0,2) and (1,3): a crossing, not SP-nested.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2), (1, 3)]);
        let bad = EarDecomposition {
            ears: vec![
                Ear { path: vec![0, 1, 2, 3], host: None },
                Ear { path: vec![0, 2], host: Some(0) },
                Ear { path: vec![1, 3], host: Some(0) },
            ],
        };
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn validate_rejects_missing_edges() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let partial = EarDecomposition { ears: vec![Ear { path: vec![0, 1, 2], host: None }] };
        assert!(partial.validate(&g).is_err());
    }

    #[test]
    fn validate_rejects_reused_interior() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)]);
        let bad = EarDecomposition {
            ears: vec![
                Ear { path: vec![0, 1, 2, 3], host: None },
                Ear { path: vec![0, 3], host: Some(0) },
                Ear { path: vec![1, 3], host: Some(0) },
            ],
        };
        // This one is actually valid nesting; tamper: make ear 2's interior
        // reuse node 2 via a fake path. Instead check a direct violation:
        let worse = EarDecomposition {
            ears: vec![
                Ear { path: vec![0, 1, 2], host: None },
                Ear { path: vec![0, 3, 2], host: Some(0) },
                Ear { path: vec![1, 3], host: Some(0) },
            ],
        };
        // node 3 is interior of ear 1 and endpoint of ear 2, fine; but edge
        // (1,3)'s endpoint 3 is NOT on ear 0 -> condition (1) violation.
        assert!(worse.validate(&g).is_err());
        let _ = bad;
    }

    #[test]
    fn sibling_ears_share_endpoints_ok() {
        // Four parallel 2-paths between 0 and 1.
        let mut g = Graph::new(2);
        for _ in 0..4 {
            let a = g.add_node();
            g.add_edge(0, a);
            g.add_edge(a, 1);
        }
        let d = check(&g);
        assert_eq!(d.len(), 4);
    }
}
