//! Degeneracy orderings, greedy colorings and forest decompositions.
//!
//! Two of the paper's building blocks reduce to classical sparse-graph
//! machinery:
//!
//! * **Lemma 2.3** (spanning-forest encoding) colors the contracted graphs
//!   `G_odd` / `G_even` with O(1) colors. Contractions of planar graphs are
//!   planar, planar graphs are 5-degenerate, so a greedy coloring along a
//!   degeneracy ordering uses ≤ 6 colors — the documented substitution for
//!   the paper's 4-coloring (constant label size either way).
//! * **Lemma 2.4** (edge-label simulation) partitions the edge set of a
//!   planar graph into O(1) forests. We orient each edge towards the earlier
//!   endpoint in a degeneracy ordering (an *acyclic* orientation with
//!   out-degree ≤ degeneracy) and split the out-edges of every node by rank;
//!   with an acyclic orientation each rank class is a forest.

use crate::graph::{EdgeId, Graph, NodeId, Orientation};

/// A degeneracy ordering: repeatedly remove a minimum-degree node.
///
/// Returns `(order, degeneracy)` where `order[i]` is the i-th removed node
/// and `degeneracy` is the maximum degree seen at removal time.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, degeneracy_ordering};
///
/// // A tree is 1-degenerate.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
/// let (_, d) = degeneracy_ordering(&g);
/// assert_eq!(d, 1);
/// ```
pub fn degeneracy_ordering(g: &Graph) -> (Vec<NodeId>, usize) {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    // Bucket queue keyed by current degree.
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[deg[v]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket, tolerating stale entries.
        cursor = cursor.min(max_deg);
        let v = loop {
            while cursor <= max_deg && buckets[cursor].is_empty() {
                cursor += 1;
            }
            let cand = buckets[cursor].pop().expect("bucket queue exhausted early");
            if !removed[cand] && deg[cand] == cursor {
                break cand;
            }
            // stale entry: skip; cursor may need to go back down later but
            // stale entries only ever sit in buckets >= true degree, so the
            // loop is safe.
        };
        removed[v] = true;
        degeneracy = degeneracy.max(deg[v]);
        order.push(v);
        for u in g.neighbor_nodes(v) {
            if !removed[u] {
                deg[u] -= 1;
                buckets[deg[u]].push(u);
                if deg[u] < cursor {
                    cursor = deg[u];
                }
            }
        }
    }
    (order, degeneracy)
}

/// Greedy proper coloring along the *reverse* of a degeneracy ordering,
/// guaranteeing at most `degeneracy + 1` colors.
///
/// Returns `(colors, color_count)`.
pub fn greedy_coloring(g: &Graph) -> (Vec<usize>, usize) {
    let (order, d) = degeneracy_ordering(g);
    let mut color = vec![usize::MAX; g.n()];
    let mut used = vec![false; d + 2];
    for &v in order.iter().rev() {
        for slot in used.iter_mut() {
            *slot = false;
        }
        for u in g.neighbor_nodes(v) {
            if color[u] != usize::MAX && color[u] < used.len() {
                used[color[u]] = true;
            }
        }
        color[v] = used.iter().position(|&b| !b).expect("d+1 colors always suffice");
    }
    let count = color.iter().copied().max().map_or(0, |c| c + 1);
    (color, count)
}

/// Verifies that `colors` is a proper coloring of `g`.
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    g.edges().iter().all(|e| colors[e.u] != colors[e.v])
}

/// An acyclic orientation of `g` in which every node has out-degree at most
/// the degeneracy: each edge points from the endpoint removed *earlier* in
/// the degeneracy ordering to the one removed later (when a node is
/// removed, at most `d` neighbors remain, and those are exactly the heads
/// of its out-edges).
pub fn degeneracy_orientation(g: &Graph) -> (Orientation, usize) {
    let (order, d) = degeneracy_ordering(g);
    let mut rank = vec![0usize; g.n()];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    // Edge (u, v): orient from the earlier-removed endpoint to the later.
    let o = Orientation::by(g, |u, v| rank[u] < rank[v]);
    (o, d)
}

/// A partition of the edges of `g` into rooted forests, each given as a
/// parent-pointer map, produced from a degeneracy orientation.
///
/// `forest_of_edge[e]` is the forest index of edge `e`;
/// `parent[f][v] = Some((p, e))` means edge `e` connects `v` to its parent
/// `p` in forest `f`. The number of forests equals the degeneracy (≤ 5 for
/// planar graphs, ≤ 2 for outerplanar graphs).
#[derive(Debug, Clone)]
pub struct ForestDecomposition {
    /// Forest index of every edge.
    pub forest_of_edge: Vec<usize>,
    /// `parents[f][v]`: parent pointer of `v` within forest `f`.
    pub parents: Vec<Vec<Option<(NodeId, EdgeId)>>>,
}

impl ForestDecomposition {
    /// Decomposes the edges of `g` into forests along a degeneracy
    /// orientation. Every node has at most one *parent* per forest (the head
    /// of its k-th out-edge), and because the orientation is acyclic every
    /// class is a forest.
    pub fn compute(g: &Graph) -> Self {
        let (o, d) = degeneracy_orientation(g);
        let k = d.max(1);
        let mut forest_of_edge = vec![usize::MAX; g.m()];
        let mut parents = vec![vec![None; g.n()]; k];
        for v in 0..g.n() {
            for (i, e) in o.out_edges(g, v).enumerate() {
                forest_of_edge[e] = i;
                parents[i][v] = Some((o.head(g, e), e));
            }
        }
        ForestDecomposition { forest_of_edge, parents }
    }

    /// Number of forests.
    pub fn count(&self) -> usize {
        self.parents.len()
    }

    /// The node accountable for edge `e` (the tail in the orientation:
    /// the node whose label carries `e`'s simulated edge-label, Lemma 2.4).
    pub fn accountable_endpoint(&self, g: &Graph, e: EdgeId) -> NodeId {
        let f = self.forest_of_edge[e];
        let edge = g.edge(e);
        // The accountable endpoint is the child: its parent pointer in
        // forest f is exactly e.
        if self.parents[f][edge.u].map(|(_, pe)| pe) == Some(e) {
            edge.u
        } else {
            debug_assert_eq!(self.parents[f][edge.v].map(|(_, pe)| pe), Some(e));
            edge.v
        }
    }

    /// Checks the forest property of every class (acyclic parent pointers)
    /// and that the classes partition the edges.
    pub fn validate(&self, g: &Graph) -> bool {
        if self.forest_of_edge.contains(&usize::MAX) {
            return false;
        }
        for f in 0..self.count() {
            // Parent pointers acyclic: walk up with a step bound.
            for start in 0..g.n() {
                let mut cur = start;
                let mut steps = 0usize;
                while let Some((p, _)) = self.parents[f][cur] {
                    cur = p;
                    steps += 1;
                    if steps > g.n() {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn tree_degeneracy_is_one() {
        let g = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        let (order, d) = degeneracy_ordering(&g);
        assert_eq!(d, 1);
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn cycle_degeneracy_is_two() {
        let (_, d) = degeneracy_ordering(&cycle(7));
        assert_eq!(d, 2);
    }

    #[test]
    fn complete_graph_degeneracy() {
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        let (_, d) = degeneracy_ordering(&g);
        assert_eq!(d, 4);
    }

    #[test]
    fn greedy_coloring_is_proper_and_small() {
        let g = cycle(8);
        let (colors, k) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert!(k <= 3);
    }

    #[test]
    fn odd_cycle_needs_three_colors() {
        let g = cycle(5);
        let (colors, k) = greedy_coloring(&g);
        assert!(is_proper_coloring(&g, &colors));
        assert_eq!(k, 3);
    }

    #[test]
    fn orientation_is_acyclic_and_bounded() {
        let g = cycle(6);
        let (o, d) = degeneracy_orientation(&g);
        assert!(o.is_acyclic(&g));
        for v in 0..6 {
            assert!(o.out_degree(&g, v) <= d);
        }
    }

    #[test]
    fn forest_decomposition_partitions_and_validates() {
        // K4: 3-degenerate, decomposes into 3 forests.
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        let fd = ForestDecomposition::compute(&g);
        assert!(fd.validate(&g));
        assert!(fd.count() <= 3);
        for e in 0..g.m() {
            let acc = fd.accountable_endpoint(&g, e);
            assert!(g.edge(e).is_incident(acc));
        }
    }

    #[test]
    fn forest_decomposition_on_tree_single_forest() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let fd = ForestDecomposition::compute(&g);
        assert!(fd.validate(&g));
        assert_eq!(fd.count(), 1);
    }

    #[test]
    fn each_node_one_parent_per_forest() {
        let g = cycle(9);
        let fd = ForestDecomposition::compute(&g);
        for f in 0..fd.count() {
            for v in 0..g.n() {
                // By construction at most one parent; check pointer sanity.
                if let Some((p, e)) = fd.parents[f][v] {
                    assert_eq!(g.edge(e).other(v), p);
                    assert_eq!(fd.forest_of_edge[e], f);
                }
            }
        }
    }
}
