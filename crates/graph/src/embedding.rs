//! Combinatorial embeddings (rotation systems) and their validity.
//!
//! The *planar embedding* task of §7 of the paper gives every node `v` a
//! clockwise ordering `ρ_v` of its incident edges and asks whether the
//! orderings induce a planar (genus-0) embedding. A [`RotationSystem`]
//! stores the orderings; [`RotationSystem::face_count`] traces the faces of
//! the induced embedding on an orientable surface, and the Euler formula
//! `n - m + f = 1 + c` (with `c` connected components) characterizes
//! genus 0.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{with_thread_scratch, TraversalScratch};

/// A dart: edge `e` traversed away from node `from`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dart {
    /// The edge being traversed.
    pub edge: EdgeId,
    /// The node the dart leaves.
    pub from: NodeId,
}

/// A rotation system: for every node, a cyclic clockwise ordering of its
/// incident edges.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, RotationSystem};
///
/// // A triangle: any rotation system of a triangle is planar.
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let rho = RotationSystem::port_order(&g);
/// assert!(rho.is_planar_embedding(&g));
/// assert_eq!(rho.face_count(&g), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationSystem {
    /// `order[v]` = incident edge ids of `v` in clockwise order.
    order: Vec<Vec<EdgeId>>,
}

impl RotationSystem {
    /// The rotation system that lists each node's edges in port order.
    pub fn port_order(g: &Graph) -> Self {
        RotationSystem { order: (0..g.n()).map(|v| g.incident_edges(v).collect()).collect() }
    }

    /// Builds a rotation system from explicit orderings.
    ///
    /// # Panics
    /// Panics if `order[v]` is not a permutation of the edges incident to `v`.
    pub fn from_orders(g: &Graph, order: Vec<Vec<EdgeId>>) -> Self {
        assert_eq!(order.len(), g.n());
        for v in 0..g.n() {
            let mut want: Vec<EdgeId> = g.incident_edges(v).collect();
            let mut got = order[v].clone();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got, "order[{v}] is not a permutation of incident edges");
        }
        RotationSystem { order }
    }

    /// Builds a rotation system from orderings that are permutations of
    /// the incident edges *by construction* (generator-internal fast
    /// path). Checks the invariant only in debug builds.
    pub(crate) fn from_orders_trusted(g: &Graph, order: Vec<Vec<EdgeId>>) -> Self {
        if cfg!(debug_assertions) {
            Self::from_orders(g, order)
        } else {
            RotationSystem { order }
        }
    }

    /// The clockwise ordering at `v`.
    pub fn order_at(&self, v: NodeId) -> &[EdgeId] {
        &self.order[v]
    }

    /// The clockwise position `ρ_v(e)` of edge `e` at node `v`.
    ///
    /// # Panics
    /// Panics if `e` is not incident to `v`.
    pub fn position(&self, v: NodeId, e: EdgeId) -> usize {
        self.order[v]
            .iter()
            .position(|&x| x == e)
            .unwrap_or_else(|| panic!("edge {e} not incident to node {v}"))
    }

    /// The edge that comes immediately after `e` in clockwise order at `v`.
    pub fn next_clockwise(&self, v: NodeId, e: EdgeId) -> EdgeId {
        let pos = self.position(v, e);
        self.order[v][(pos + 1) % self.order[v].len()]
    }

    /// The edge that comes immediately after `e` in *counterclockwise*
    /// order at `v`.
    pub fn next_counterclockwise(&self, v: NodeId, e: EdgeId) -> EdgeId {
        let pos = self.position(v, e);
        let d = self.order[v].len();
        self.order[v][(pos + d - 1) % d]
    }

    /// Swaps the rotation entries at positions `i` and `j` of node `v`
    /// (used to construct invalid-embedding no-instances).
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    pub fn swap_positions(&mut self, v: NodeId, i: usize, j: usize) {
        self.order[v].swap(i, j);
    }

    /// Successor dart in face tracing: arriving at the head of `dart`, the
    /// face continues along the next-clockwise edge there.
    pub fn face_successor(&self, g: &Graph, dart: Dart) -> Dart {
        let to = g.edge(dart.edge).other(dart.from);
        let e2 = self.next_clockwise(to, dart.edge);
        Dart { edge: e2, from: to }
    }

    /// Number of faces of the embedding induced by this rotation system
    /// (orbits of the face-successor permutation on darts).
    pub fn face_count(&self, g: &Graph) -> usize {
        with_thread_scratch(|s| self.face_count_with(g, s))
    }

    /// [`Self::face_count`] with an explicit scratch (epoch-stamped dart
    /// marks instead of a fresh `seen` array per call).
    pub fn face_count_with(&self, g: &Graph, scratch: &mut TraversalScratch) -> usize {
        let m = g.m();
        // Dart index: 2*e + (0 if from == edge.u else 1).
        let dart_index = |d: Dart| 2 * d.edge + usize::from(d.from != g.edge(d.edge).u);
        // Clockwise position of every dart at its `from` node, filled in
        // one pass over the rotation lists: the face walk then advances in
        // O(1) per dart where [`RotationSystem::face_successor`] would
        // rescan the rotation list on every step.
        let mut pos_of_dart = vec![0u32; 2 * m];
        for v in 0..self.order.len() {
            for (i, &e) in self.order[v].iter().enumerate() {
                pos_of_dart[2 * e + usize::from(v != g.edge(e).u)] = i as u32;
            }
        }
        scratch.begin_darts(2 * m);
        let mut faces = 0usize;
        for e in 0..m {
            for from in [g.edge(e).u, g.edge(e).v] {
                let start = Dart { edge: e, from };
                if !scratch.visit_dart(dart_index(start)) {
                    continue;
                }
                faces += 1;
                let mut d = start;
                loop {
                    let to = g.edge(d.edge).other(d.from);
                    let p = pos_of_dart[2 * d.edge + usize::from(to != g.edge(d.edge).u)] as usize;
                    let ord = &self.order[to];
                    d = Dart { edge: ord[(p + 1) % ord.len()], from: to };
                    if d == start {
                        break;
                    }
                    scratch.visit_dart(dart_index(d));
                }
            }
        }
        faces
    }

    /// The faces themselves, each as the cyclic dart sequence.
    pub fn faces(&self, g: &Graph) -> Vec<Vec<Dart>> {
        let m = g.m();
        let dart_index = |d: Dart| 2 * d.edge + usize::from(d.from != g.edge(d.edge).u);
        let mut seen = vec![false; 2 * m];
        let mut faces = Vec::new();
        for e in 0..m {
            for from in [g.edge(e).u, g.edge(e).v] {
                let start = Dart { edge: e, from };
                if seen[dart_index(start)] {
                    continue;
                }
                let mut face = Vec::new();
                let mut d = start;
                loop {
                    seen[dart_index(d)] = true;
                    face.push(d);
                    d = self.face_successor(g, d);
                    if d == start {
                        break;
                    }
                }
                faces.push(face);
            }
        }
        faces
    }

    /// The total Euler-genus defect of the embedding. For each connected
    /// component, Euler's formula gives `n_i - m_i + f_i = 2 - 2·genus_i`,
    /// so summing over `c` components the rotation system is planar iff
    /// `f = 2c + m - n`. Returns `(2c + m) - (n + f)` — zero exactly for
    /// planar embeddings, positive (twice the total genus) otherwise.
    pub fn euler_genus_defect(&self, g: &Graph) -> usize {
        with_thread_scratch(|s| self.euler_genus_defect_with(g, s))
    }

    /// [`Self::euler_genus_defect`] with an explicit scratch.
    pub fn euler_genus_defect_with(&self, g: &Graph, scratch: &mut TraversalScratch) -> usize {
        let (c, edgeless) = scratch.component_summary(g);
        // Edgeless components have one face each but no darts to trace.
        let f = self.face_count_with(g, scratch) + edgeless;
        let lhs = 2 * c + g.m();
        let rhs = g.n() + f;
        debug_assert!(lhs >= rhs, "face tracing produced too many faces");
        lhs - rhs
    }

    /// Whether the rotation system induces a planar (genus-0) embedding.
    pub fn is_planar_embedding(&self, g: &Graph) -> bool {
        self.euler_genus_defect(g) == 0
    }

    /// [`Self::is_planar_embedding`] with an explicit scratch.
    pub fn is_planar_embedding_with(&self, g: &Graph, scratch: &mut TraversalScratch) -> bool {
        self.euler_genus_defect_with(g, scratch) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_two_faces() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let rho = RotationSystem::port_order(&g);
        assert_eq!(rho.face_count(&g), 2);
        assert!(rho.is_planar_embedding(&g));
    }

    #[test]
    fn tree_has_one_face() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (3, 4)]);
        let rho = RotationSystem::port_order(&g);
        assert_eq!(rho.face_count(&g), 1);
        assert!(rho.is_planar_embedding(&g));
    }

    #[test]
    fn k4_planar_rotation() {
        // K4 embedded with vertex 3 inside triangle (0,1,2):
        // clockwise orders chosen so that f = 4 (Euler: 4 - 6 + 4 = 2).
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)]);
        // edges: 0=(0,1) 1=(1,2) 2=(2,0) 3=(0,3) 4=(1,3) 5=(2,3)
        let order = vec![
            vec![0, 3, 2], // at 0: (0,1), (0,3), (0,2)
            vec![1, 4, 0], // at 1: (1,2), (1,3), (1,0)
            vec![2, 5, 1], // at 2: (2,0), (2,3), (2,1)
            vec![3, 4, 5], // at 3
        ];
        let rho = RotationSystem::from_orders(&g, order);
        assert!(rho.is_planar_embedding(&g));
        assert_eq!(rho.face_count(&g), 4);
    }

    #[test]
    fn k4_nonplanar_rotation_detected() {
        // Scramble one rotation of the planar K4 embedding until the genus
        // defect is positive. (Not every swap breaks planarity, so check a
        // specific known-bad one: swapping two entries at node 3 of the
        // embedding above changes the face structure.)
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3)]);
        let order = vec![vec![0, 3, 2], vec![1, 4, 0], vec![2, 5, 1], vec![3, 5, 4]];
        let rho = RotationSystem::from_orders(&g, order);
        assert!(!rho.is_planar_embedding(&g));
        assert!(rho.euler_genus_defect(&g) > 0);
    }

    #[test]
    fn k5_any_rotation_nonplanar() {
        let mut g = Graph::new(5);
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        // K5 is non-planar, so *every* rotation system has positive defect.
        let rho = RotationSystem::port_order(&g);
        assert!(!rho.is_planar_embedding(&g));
    }

    #[test]
    fn face_darts_cover_all() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let rho = RotationSystem::port_order(&g);
        let faces = rho.faces(&g);
        let total: usize = faces.iter().map(|f| f.len()).sum();
        assert_eq!(total, 2 * g.m());
    }

    #[test]
    fn clockwise_navigation() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let rho = RotationSystem::port_order(&g);
        assert_eq!(rho.position(0, 1), 1);
        assert_eq!(rho.next_clockwise(0, 0), 1);
        assert_eq!(rho.next_clockwise(0, 2), 0);
        assert_eq!(rho.next_counterclockwise(0, 0), 2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_order_rejected() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        RotationSystem::from_orders(&g, vec![vec![0], vec![0, 0], vec![1]]);
    }

    #[test]
    fn disconnected_euler() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let rho = RotationSystem::port_order(&g);
        // Two triangles, each with its own pair of faces: f = 4 = 2c + m - n.
        assert_eq!(rho.face_count(&g), 4);
        assert!(rho.is_planar_embedding(&g));
    }
}
