//! Outerplanarity and path-outerplanarity recognition.
//!
//! * `G` is **outerplanar** iff the apex-augmented graph `G + v_all` is
//!   planar (the classical reduction; uses [`crate::planarity::is_planar`]).
//! * `G` is **path-outerplanar** (§2 of the paper) iff it has a Hamiltonian
//!   path `P` such that no two edges `(u,v), (u',v')` interleave as
//!   `u ≺ u' ≺ v ≺ v'`. [`is_properly_nested`] checks a witness path;
//!   [`is_path_outerplanar`] recognizes the property from scratch using the
//!   structure theorems behind §6: a biconnected outerplanar graph has a
//!   unique Hamiltonian cycle (its outer face), and every witness path of a
//!   biconnected block is that cycle minus one cycle edge.

use crate::biconnected::BlockCutTree;
use crate::graph::{Graph, NodeId};
use crate::planarity::is_planar;

/// Whether `g` is outerplanar (`g + apex` is planar).
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, is_outerplanar};
///
/// let c5 = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// assert!(is_outerplanar(&c5));
///
/// // K4 is planar but not outerplanar.
/// let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert!(!is_outerplanar(&k4));
/// ```
pub fn is_outerplanar(g: &Graph) -> bool {
    if g.n() >= 2 && g.m() > 2 * g.n() - 3 {
        return false; // outerplanar graphs have at most 2n - 3 edges
    }
    let (aug, _) = g.with_apex();
    is_planar(&aug)
}

/// Whether every edge of `g` is properly nested with respect to the node
/// order `path` (which must be a permutation of the nodes): no two edges
/// strictly interleave. Does **not** check that `path` is a Hamiltonian
/// path of `g`; combine with [`is_hamiltonian_path`].
pub fn is_properly_nested(g: &Graph, path: &[NodeId]) -> bool {
    assert_eq!(path.len(), g.n(), "path must order all nodes");
    let mut pos = vec![usize::MAX; g.n()];
    for (i, &v) in path.iter().enumerate() {
        assert!(pos[v] == usize::MAX, "duplicate node {v} in path");
        pos[v] = i;
    }
    let mut intervals: Vec<(usize, usize)> = g
        .edges()
        .iter()
        .map(|e| {
            let (a, b) = (pos[e.u], pos[e.v]);
            (a.min(b), a.max(b))
        })
        .collect();
    // Sort by left endpoint ascending, right endpoint descending, so an
    // enclosing interval is seen before the intervals it encloses.
    intervals.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for &(lo, hi) in &intervals {
        while let Some(&(_, shi)) = stack.last() {
            if shi <= lo {
                stack.pop(); // disjoint (sharing an endpoint is fine)
            } else {
                break;
            }
        }
        if let Some(&(slo, shi)) = stack.last() {
            // Must be nested inside the top interval.
            if !(lo >= slo && hi <= shi) {
                return false;
            }
        }
        stack.push((lo, hi));
    }
    true
}

/// Whether `path` is a Hamiltonian path of `g` (visits every node once,
/// along edges of `g`).
pub fn is_hamiltonian_path(g: &Graph, path: &[NodeId]) -> bool {
    if path.len() != g.n() {
        return false;
    }
    let mut seen = vec![false; g.n()];
    for &v in path {
        if v >= g.n() || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Whether `path` witnesses path-outerplanarity of `g`.
pub fn is_path_outerplanar_with(g: &Graph, path: &[NodeId]) -> bool {
    is_hamiltonian_path(g, path) && is_properly_nested(g, path)
}

/// The unique Hamiltonian cycle (outer face) of a biconnected outerplanar
/// graph with at least 3 nodes, or `None` if `g` is not one.
///
/// Uses the degree-2 peeling argument: every biconnected outerplanar graph
/// with ≥ 4 nodes has a degree-2 node `v`; `v` lies between its neighbors
/// on the cycle, and contracting it preserves the class.
pub fn outer_cycle(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.n();
    if n < 3 || !is_outerplanar(&g.clone()) {
        return None;
    }
    // Work on a mutable adjacency-set copy.
    let mut adj: Vec<std::collections::BTreeSet<NodeId>> =
        (0..n).map(|v| g.neighbor_nodes(v).collect()).collect();
    let mut alive = vec![true; n];
    let mut alive_count = n;
    // peeled: v removed with neighbors (x, y) — reinsert in reverse order.
    let mut peeled: Vec<(NodeId, NodeId, NodeId)> = Vec::new();
    while alive_count > 3 {
        let v = (0..n).find(|&v| alive[v] && adj[v].len() == 2)?;
        let mut it = adj[v].iter();
        let x = *it.next().unwrap();
        let y = *it.next().unwrap();
        adj[x].remove(&v);
        adj[y].remove(&v);
        adj[x].insert(y);
        adj[y].insert(x);
        adj[v].clear();
        alive[v] = false;
        alive_count -= 1;
        peeled.push((v, x, y));
    }
    // Base case: 3 alive nodes must form a triangle.
    let base: Vec<NodeId> = (0..n).filter(|&v| alive[v]).collect();
    if base.len() != 3 {
        return None;
    }
    for &v in &base {
        if adj[v].len() != 2 {
            return None;
        }
    }
    let mut cycle = base;
    // Reinsert peeled nodes.
    for &(v, x, y) in peeled.iter().rev() {
        let px = cycle.iter().position(|&w| w == x)?;
        let py = cycle.iter().position(|&w| w == y)?;
        let k = cycle.len();
        // x and y must be adjacent on the current cycle.
        if (px + 1) % k == py {
            cycle.insert(py, v);
        } else if (py + 1) % k == px {
            cycle.insert(px, v);
        } else {
            return None;
        }
    }
    // Verify the cycle edges exist in g.
    let k = cycle.len();
    for i in 0..k {
        if !g.has_edge(cycle[i], cycle[(i + 1) % k]) {
            return None;
        }
    }
    Some(cycle)
}

/// Whether `g` is biconnected (connected, ≥ 2 nodes, no cut node).
pub fn is_biconnected(g: &Graph) -> bool {
    if g.n() < 2 || !g.is_connected() {
        return false;
    }
    if g.n() == 2 {
        return g.m() == 1;
    }
    let bcc = crate::biconnected::BiconnectedComponents::compute(g);
    bcc.count() == 1
}

/// Recognizes path-outerplanarity and returns a witness Hamiltonian path.
///
/// Structure used (see module docs): `g` is path-outerplanar iff it is
/// outerplanar, its block–cut tree is a chain, and each middle block's two
/// cut nodes are adjacent on the block's outer cycle (end blocks only need
/// their single cut node, which always works). Within a block the witness
/// is the outer cycle minus one cycle edge.
pub fn path_outerplanar_witness(g: &Graph) -> Option<Vec<NodeId>> {
    if g.n() == 0 {
        return None;
    }
    if g.n() == 1 {
        return Some(vec![0]);
    }
    if !g.is_connected() || !is_outerplanar(g) {
        return None;
    }
    // Single block?
    if is_biconnected(g) {
        if g.n() == 2 {
            return Some(vec![0, 1]);
        }
        let mut cycle = outer_cycle(g)?;
        // Cut the cycle anywhere: path = cycle rotated.
        cycle.rotate_left(0);
        return Some(cycle);
    }
    // Chain of blocks: the block-cut tree must be a path.
    let bct = BlockCutTree::rooted(g);
    let k = bct.block_count();
    // Count blocks at each cut node; also build block adjacency via cuts.
    let bcc = &bct.bcc;
    for v in 0..g.n() {
        if bcc.is_cut_node[v] && bcc.components_of_node(g, v).len() > 2 {
            return None; // branching at a cut node
        }
    }
    // Build the chain: count cut nodes per block.
    let mut cuts_of_block: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for v in 0..g.n() {
        if bcc.is_cut_node[v] {
            for c in bcc.components_of_node(g, v) {
                cuts_of_block[c].push(v);
            }
        }
    }
    if cuts_of_block.iter().any(|c| c.len() > 2) {
        return None; // block touches 3+ cut nodes: tree branches
    }
    let ends: Vec<usize> = (0..k).filter(|&c| cuts_of_block[c].len() == 1).collect();
    if ends.len() != 2 && k > 1 {
        return None;
    }
    // Walk the chain from one end.
    let mut order = Vec::with_capacity(k);
    let mut prev_cut: Option<NodeId> = None;
    let mut cur = ends[0];
    let mut visited = vec![false; k];
    loop {
        visited[cur] = true;
        order.push((cur, prev_cut));
        let next_cut = cuts_of_block[cur].iter().copied().find(|&c| Some(c) != prev_cut);
        let Some(nc) = next_cut else { break };
        let next_block = bcc.components_of_node(g, nc).into_iter().find(|&c| !visited[c]);
        let Some(nb) = next_block else { break };
        prev_cut = Some(nc);
        cur = nb;
    }
    if order.len() != k {
        return None;
    }
    // Assemble the Hamiltonian path block by block.
    let mut path: Vec<NodeId> = Vec::with_capacity(g.n());
    for (idx, &(b, entry)) in order.iter().enumerate() {
        let exit = if idx + 1 < k { order[idx + 1].1 } else { None };
        let nodes = bcc.component_nodes(g, b);
        let segment = block_path(g, &nodes, entry, exit)?;
        // Splice, dropping the shared entry node (already at path's end).
        if entry.is_some() {
            debug_assert_eq!(path.last().copied(), segment.first().copied());
            path.extend_from_slice(&segment[1..]);
        } else {
            path.extend_from_slice(&segment);
        }
    }
    if is_path_outerplanar_with(g, &path) {
        Some(path)
    } else {
        None
    }
}

/// A Hamiltonian path of the block induced on `nodes`, starting at `entry`
/// (if given) and ending at `exit` (if given).
fn block_path(
    g: &Graph,
    nodes: &[NodeId],
    entry: Option<NodeId>,
    exit: Option<NodeId>,
) -> Option<Vec<NodeId>> {
    if nodes.len() == 1 {
        return Some(nodes.to_vec());
    }
    if nodes.len() == 2 {
        let (a, b) = (nodes[0], nodes[1]);
        let (s, t) = match (entry, exit) {
            (Some(e), Some(x)) => (e, x),
            (Some(e), None) => (e, if e == a { b } else { a }),
            (None, Some(x)) => (if x == a { b } else { a }, x),
            (None, None) => (a, b),
        };
        if (s == a && t == b) || (s == b && t == a) {
            return Some(vec![s, t]);
        }
        return None;
    }
    let (h, map) = g.induced_subgraph(nodes);
    let cycle_local = outer_cycle(&h)?;
    let cycle: Vec<NodeId> = cycle_local.iter().map(|&v| map[v]).collect();
    let k = cycle.len();
    // Find a cycle edge to cut so the path runs entry ... exit.
    for i in 0..k {
        // Candidate path: cycle[i+1], ..., cycle[i] (cutting edge (i, i+1)).
        let candidate: Vec<NodeId> = (0..k).map(|j| cycle[(i + 1 + j) % k]).collect();
        let first = candidate[0];
        let last = candidate[k - 1];
        let entry_ok = entry.is_none_or(|e| e == first || e == last);
        let exit_ok = exit.is_none_or(|x| x == first || x == last);
        // entry and exit must not claim the same endpoint.
        if let (Some(e), Some(x)) = (entry, exit) {
            if !((e == first && x == last) || (e == last && x == first)) {
                continue;
            }
        } else if !(entry_ok && exit_ok) {
            continue;
        }
        let mut path = candidate;
        if entry.is_some_and(|e| e == *path.last().unwrap()) || exit.is_some_and(|x| x == path[0]) {
            path.reverse();
        }
        return Some(path);
    }
    None
}

/// Whether `g` is path-outerplanar.
pub fn is_path_outerplanar(g: &Graph) -> bool {
    path_outerplanar_witness(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn cycles_outerplanar() {
        for n in 3..12 {
            assert!(is_outerplanar(&cycle_graph(n)));
        }
    }

    #[test]
    fn k4_and_k23_not_outerplanar() {
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(!is_outerplanar(&k4));
        let k23 = Graph::from_edges(5, [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        assert!(!is_outerplanar(&k23));
    }

    #[test]
    fn nesting_checker() {
        // Path 0-1-2-3 plus nested arcs.
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        g.add_edge(0, 3);
        g.add_edge(1, 3);
        assert!(is_properly_nested(&g, &[0, 1, 2, 3]));
        // Crossing arcs (0,2) and (1,3).
        let mut h = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        h.add_edge(0, 2);
        h.add_edge(1, 3);
        assert!(!is_properly_nested(&h, &[0, 1, 2, 3]));
    }

    #[test]
    fn shared_endpoints_do_not_cross() {
        let mut g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        assert!(is_properly_nested(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn hamiltonian_path_check() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert!(is_hamiltonian_path(&g, &[0, 1, 2, 3]));
        assert!(!is_hamiltonian_path(&g, &[0, 2, 1, 3]));
        assert!(!is_hamiltonian_path(&g, &[0, 1, 2]));
    }

    #[test]
    fn outer_cycle_of_polygon_with_chords() {
        let mut g = cycle_graph(6);
        g.add_edge(0, 2);
        g.add_edge(2, 5);
        let c = outer_cycle(&g).unwrap();
        assert_eq!(c.len(), 6);
        // The cycle visits 0..5 in circular order (up to rotation/reflection).
        let pos0 = c.iter().position(|&v| v == 0).unwrap();
        let fwd: Vec<NodeId> = (0..6).map(|i| c[(pos0 + i) % 6]).collect();
        let mut rev = fwd.clone();
        rev[1..].reverse();
        assert!(fwd == vec![0, 1, 2, 3, 4, 5] || rev == vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn outer_cycle_rejects_k4() {
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert!(outer_cycle(&k4).is_none());
    }

    #[test]
    fn biconnected_check() {
        assert!(is_biconnected(&cycle_graph(5)));
        let path = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!is_biconnected(&path));
        assert!(is_biconnected(&Graph::from_edges(2, [(0, 1)])));
    }

    #[test]
    fn biconnected_outerplanar_is_path_outerplanar() {
        let mut g = cycle_graph(8);
        g.add_edge(0, 2);
        g.add_edge(2, 7);
        g.add_edge(3, 5);
        let w = path_outerplanar_witness(&g).unwrap();
        assert!(is_path_outerplanar_with(&g, &w));
    }

    #[test]
    fn chain_of_blocks_path_outerplanar() {
        // Triangle {0,1,2} - shared 2 - triangle {2,3,4}.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let w = path_outerplanar_witness(&g).unwrap();
        assert!(is_path_outerplanar_with(&g, &w));
    }

    #[test]
    fn star_not_path_outerplanar() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert!(!is_path_outerplanar(&g));
    }

    #[test]
    fn simple_path_is_path_outerplanar() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let w = path_outerplanar_witness(&g).unwrap();
        assert!(is_path_outerplanar_with(&g, &w));
    }

    #[test]
    fn branching_blocks_not_path_outerplanar() {
        // Three triangles sharing node 6: Hamiltonian path impossible.
        let g = Graph::from_edges(
            7,
            [(0, 1), (1, 6), (6, 0), (2, 3), (3, 6), (6, 2), (4, 5), (5, 6), (6, 4)],
        );
        assert!(!is_path_outerplanar(&g));
    }

    #[test]
    fn exhaustive_small_cross_check() {
        // For all graphs on 5 labelled nodes with up to 7 edges that are
        // connected, compare the recognizer against brute force over all
        // Hamiltonian orders. (Subsampled via a stride to stay fast.)
        let all_pairs: Vec<(usize, usize)> =
            (0..5).flat_map(|u| ((u + 1)..5).map(move |v| (u, v))).collect();
        let mut tested = 0usize;
        for (iter, mask) in (0u32..1 << all_pairs.len()).enumerate() {
            if iter % 7 != 0 {
                continue;
            }
            if mask.count_ones() > 7 || mask.count_ones() < 4 {
                continue;
            }
            let edges: Vec<(usize, usize)> = all_pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &e)| e)
                .collect();
            let g = Graph::from_edges(5, edges);
            if !g.is_connected() {
                continue;
            }
            let brute = permutations(5).into_iter().any(|p| is_path_outerplanar_with(&g, &p));
            let fast = is_path_outerplanar(&g);
            assert_eq!(brute, fast, "mismatch on mask {mask:b}");
            tested += 1;
        }
        assert!(tested > 50);
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for p in permutations(n - 1) {
            for i in 0..=p.len() {
                let mut q = p.clone();
                q.insert(i, n - 1);
                out.push(q);
            }
        }
        out
    }
}
