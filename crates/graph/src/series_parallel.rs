//! Series-parallel recognition and SP decomposition trees.
//!
//! The paper (§8) treats *series-parallel* graphs in the two-terminal sense
//! of Eppstein's nested-ear-decomposition characterization: a connected
//! graph is series-parallel iff it can be built from single edges by series
//! and parallel compositions (for some choice of terminals), iff it admits a
//! nested ear decomposition (Lemma 8.1), and a graph has treewidth ≤ 2 iff
//! every biconnected component is series-parallel (Lemma 8.2).
//!
//! Recognition uses the classical confluent reduction system: repeatedly
//! merge parallel edges and contract degree-2 vertices; the graph is
//! series-parallel iff it reduces to a single edge. The reduction history is
//! recorded as an [`SpTree`] whose leaves are the original edges — the
//! honest prover derives its nested ear decomposition
//! ([`crate::ear::EarDecomposition`]) from this tree.

use crate::biconnected::BiconnectedComponents;
use crate::graph::{EdgeId, Graph, NodeId};

/// A node of an SP decomposition tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpNode {
    /// An original edge of the graph.
    Leaf {
        /// The original edge id.
        edge: EdgeId,
    },
    /// Series composition: `children.0` spans `s`–`mid`, `children.1` spans
    /// `mid`–`t`.
    Series {
        /// The merged middle terminal.
        mid: NodeId,
        /// The two composed subtrees (indices into [`SpTree::nodes`]).
        children: (usize, usize),
    },
    /// Parallel composition of two subtrees over the same terminal pair.
    Parallel {
        /// The two composed subtrees (indices into [`SpTree::nodes`]).
        children: (usize, usize),
    },
}

/// An SP decomposition tree of a connected series-parallel graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpTree {
    /// All tree nodes; children indices point into this vector.
    pub nodes: Vec<SpTreeEntry>,
    /// Index of the root node.
    pub root: usize,
}

/// A tree node together with its (unordered) terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpTreeEntry {
    /// The composition kind and children.
    pub node: SpNode,
    /// One terminal.
    pub s: NodeId,
    /// The other terminal.
    pub t: NodeId,
}

impl SpTree {
    /// The terminals of node `i`.
    pub fn terminals(&self, i: usize) -> (NodeId, NodeId) {
        (self.nodes[i].s, self.nodes[i].t)
    }

    /// The spine of node `i` starting from terminal `from`: the unique
    /// path from `from` to the other terminal that stays on the "first
    /// branch" of every parallel composition. Returns the vertex sequence.
    ///
    /// # Panics
    /// Panics if `from` is not a terminal of node `i`.
    pub fn spine(&self, i: usize, from: NodeId) -> Vec<NodeId> {
        let entry = &self.nodes[i];
        assert!(from == entry.s || from == entry.t, "{from} is not a terminal of node {i}");
        let to = if from == entry.s { entry.t } else { entry.s };
        match entry.node {
            SpNode::Leaf { .. } => vec![from, to],
            SpNode::Parallel { children } => self.spine(children.0, from),
            SpNode::Series { mid, children } => {
                // Find which child contains `from` as a terminal.
                let (c0s, c0t) = self.terminals(children.0);
                let (first, second) = if c0s == from || c0t == from {
                    (children.0, children.1)
                } else {
                    (children.1, children.0)
                };
                let mut path = self.spine(first, from);
                debug_assert_eq!(*path.last().unwrap(), mid);
                let rest = self.spine(second, mid);
                path.extend_from_slice(&rest[1..]);
                debug_assert_eq!(*path.last().unwrap(), to);
                path
            }
        }
    }

    /// The set of original edge ids in the subtree of node `i`.
    pub fn edges_in_subtree(&self, i: usize) -> Vec<EdgeId> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(j) = stack.pop() {
            match self.nodes[j].node {
                SpNode::Leaf { edge } => out.push(edge),
                SpNode::Series { children, .. } | SpNode::Parallel { children } => {
                    stack.push(children.0);
                    stack.push(children.1);
                }
            }
        }
        out
    }
}

/// Multigraph edge used during reduction.
#[derive(Debug, Clone, Copy)]
struct MEdge {
    u: NodeId,
    v: NodeId,
    sp: usize, // SP tree node index
    alive: bool,
}

/// Attempts to recognize connected `g` as a (two-terminal) series-parallel
/// graph, returning its SP decomposition tree on success.
///
/// Returns `None` if `g` is empty, disconnected, or not series-parallel.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, sp_tree};
///
/// let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert!(sp_tree(&triangle).is_some());
///
/// let k4 = Graph::from_edges(4, [(0,1),(0,2),(0,3),(1,2),(1,3),(2,3)]);
/// assert!(sp_tree(&k4).is_none());
/// ```
pub fn sp_tree(g: &Graph) -> Option<SpTree> {
    if g.m() == 0 || !g.is_connected() {
        return None;
    }
    let n = g.n();
    let mut nodes: Vec<SpTreeEntry> = Vec::with_capacity(2 * g.m());
    let mut medges: Vec<MEdge> = Vec::with_capacity(2 * g.m());
    // incidence[v] = medge ids (lazily cleaned).
    let mut incidence: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, e) in g.edges().iter().enumerate() {
        nodes.push(SpTreeEntry { node: SpNode::Leaf { edge: id }, s: e.u, t: e.v });
        medges.push(MEdge { u: e.u, v: e.v, sp: id, alive: true });
        incidence[e.u].push(id);
        incidence[e.v].push(id);
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut alive_edges = g.m();
    let mut worklist: Vec<NodeId> = (0..n).collect();

    let live = |incidence: &Vec<Vec<usize>>, medges: &Vec<MEdge>, v: NodeId| -> Vec<usize> {
        incidence[v].iter().copied().filter(|&e| medges[e].alive).collect()
    };

    while let Some(v) = worklist.pop() {
        // Compact the incidence list of v.
        let inc = live(&incidence, &medges, v);
        incidence[v] = inc.clone();
        // Parallel reductions: group by the other endpoint (BTreeMap keeps
        // the reduction order deterministic).
        let mut by_other: std::collections::BTreeMap<NodeId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &e in &inc {
            let other = if medges[e].u == v { medges[e].v } else { medges[e].u };
            by_other.entry(other).or_default().push(e);
        }
        let mut did_parallel = false;
        for (other, group) in by_other.iter() {
            if group.len() >= 2 {
                // Merge all edges of the group into one.
                let mut acc = group[0];
                for &e in &group[1..] {
                    let sp = nodes.len();
                    nodes.push(SpTreeEntry {
                        node: SpNode::Parallel { children: (medges[acc].sp, medges[e].sp) },
                        s: v,
                        t: *other,
                    });
                    medges[acc].alive = false;
                    medges[e].alive = false;
                    let id = medges.len();
                    medges.push(MEdge { u: v, v: *other, sp, alive: true });
                    incidence[v].push(id);
                    incidence[*other].push(id);
                    degree[v] -= 1;
                    degree[*other] -= 1;
                    alive_edges -= 1;
                    acc = id;
                }
                // The neighbor's degree dropped; it may now admit a series
                // reduction of its own.
                worklist.push(*other);
                did_parallel = true;
            }
        }
        if did_parallel {
            worklist.push(v);
            continue;
        }
        // Series reduction: v has exactly two live edges to distinct others.
        if degree[v] == 2 {
            let inc = live(&incidence, &medges, v);
            debug_assert_eq!(inc.len(), 2);
            let (e1, e2) = (inc[0], inc[1]);
            let x = if medges[e1].u == v { medges[e1].v } else { medges[e1].u };
            let y = if medges[e2].u == v { medges[e2].v } else { medges[e2].u };
            if x != y {
                let sp = nodes.len();
                nodes.push(SpTreeEntry {
                    node: SpNode::Series { mid: v, children: (medges[e1].sp, medges[e2].sp) },
                    s: x,
                    t: y,
                });
                medges[e1].alive = false;
                medges[e2].alive = false;
                let id = medges.len();
                medges.push(MEdge { u: x, v: y, sp, alive: true });
                incidence[x].push(id);
                incidence[y].push(id);
                degree[v] = 0;
                alive_edges -= 1;
                worklist.push(x);
                worklist.push(y);
            }
            // x == y is impossible here: parallel edges to the same
            // neighbor were merged above, leaving degree 1.
        }
    }
    if alive_edges != 1 {
        return None;
    }
    let last = medges.iter().rposition(|e| e.alive).expect("one live edge");
    let root = medges[last].sp;
    Some(SpTree { nodes, root })
}

/// Whether connected `g` is a (two-terminal) series-parallel graph.
pub fn is_series_parallel(g: &Graph) -> bool {
    sp_tree(g).is_some()
}

/// Whether `g` has treewidth at most 2, via Lemma 8.2 of the paper: every
/// biconnected component must be series-parallel. Forests (treewidth ≤ 1)
/// are accepted.
pub fn is_treewidth_at_most_2(g: &Graph) -> bool {
    if g.m() == 0 {
        return true;
    }
    let bcc = BiconnectedComponents::compute(g);
    for c in 0..bcc.count() {
        let nodes = bcc.component_nodes(g, c);
        if nodes.len() <= 2 {
            continue; // a single edge is series-parallel
        }
        // Build the component graph from its edges.
        let mut remap = std::collections::HashMap::new();
        for (i, &v) in nodes.iter().enumerate() {
            remap.insert(v, i);
        }
        let mut h = Graph::new(nodes.len());
        for &e in &bcc.components[c] {
            let edge = g.edge(e);
            h.add_edge(remap[&edge.u], remap[&edge.v]);
        }
        if !is_series_parallel(&h) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn single_edge_is_sp() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let t = sp_tree(&g).unwrap();
        assert!(matches!(t.nodes[t.root].node, SpNode::Leaf { edge: 0 }));
    }

    #[test]
    fn path_is_sp() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let t = sp_tree(&g).unwrap();
        let (s, tt) = t.terminals(t.root);
        let mut ends = [s, tt];
        ends.sort_unstable();
        assert_eq!(ends, [0, 4]);
        assert_eq!(t.spine(t.root, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cycle_is_sp() {
        for n in 3..10 {
            let g = Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
            assert!(is_series_parallel(&g), "C{n}");
        }
    }

    #[test]
    fn theta_graph_is_sp() {
        // Three internally disjoint paths between 0 and 1.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)]);
        assert!(is_series_parallel(&g));
    }

    #[test]
    fn k4_is_not_sp() {
        assert!(!is_series_parallel(&k4()));
    }

    #[test]
    fn k4_subdivision_is_not_sp() {
        let base = k4();
        let mut g = Graph::new(4);
        for e in base.edges() {
            let mid = g.add_node();
            g.add_edge(e.u, mid);
            g.add_edge(mid, e.v);
        }
        assert!(!is_series_parallel(&g));
        assert!(!is_treewidth_at_most_2(&g));
    }

    #[test]
    fn two_triangles_sharing_a_node_is_sp() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        assert!(is_series_parallel(&g));
    }

    #[test]
    fn three_triangles_at_one_node_not_ttsp_but_tw2() {
        let g = Graph::from_edges(
            7,
            [(0, 1), (1, 6), (6, 0), (2, 3), (3, 6), (6, 2), (4, 5), (5, 6), (6, 4)],
        );
        assert!(!is_series_parallel(&g));
        assert!(is_treewidth_at_most_2(&g));
    }

    #[test]
    fn star_is_not_ttsp_but_tw2() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert!(!is_series_parallel(&g));
        assert!(is_treewidth_at_most_2(&g));
    }

    #[test]
    fn k4_minus_edge_is_sp() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert!(is_series_parallel(&g));
        assert!(is_treewidth_at_most_2(&g));
    }

    #[test]
    fn disconnected_not_sp() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(sp_tree(&g).is_none());
    }

    #[test]
    fn sp_tree_covers_all_edges() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (2, 1), (0, 3), (3, 4), (4, 1)]);
        let t = sp_tree(&g).unwrap();
        let mut leaves = t.edges_in_subtree(t.root);
        leaves.sort_unstable();
        assert_eq!(leaves, (0..g.m()).collect::<Vec<_>>());
    }

    #[test]
    fn spine_is_a_real_path() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (0, 5), (5, 3)]);
        let t = sp_tree(&g).unwrap();
        let (s, _) = t.terminals(t.root);
        let spine = t.spine(t.root, s);
        for w in spine.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "spine step ({}, {})", w[0], w[1]);
        }
    }

    #[test]
    fn wheel_not_tw2() {
        // Wheel W5 contains K4 as a minor; treewidth 3.
        let mut g = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let hub = g.add_node();
        for v in 0..5 {
            g.add_edge(v, hub);
        }
        assert!(!is_treewidth_at_most_2(&g));
    }

    #[test]
    fn big_nested_sp_graph() {
        // Recursive theta construction: replace an edge by two parallel
        // 2-paths, several times.
        let mut g = Graph::new(2);
        let mut frontier = vec![(0usize, 1usize)];
        g.add_edge(0, 1);
        for _ in 0..6 {
            let mut next = Vec::new();
            for (u, v) in frontier {
                let a = g.add_node();
                let b = g.add_node();
                g.add_edge(u, a);
                g.add_edge(a, v);
                g.add_edge(u, b);
                g.add_edge(b, v);
                next.push((u, a));
                next.push((b, v));
            }
            frontier = next;
        }
        assert!(is_series_parallel(&g));
        assert!(is_treewidth_at_most_2(&g));
    }
}
