//! Core undirected graph representation.
//!
//! The distributed interactive proof (DIP) model operates on simple,
//! connected, undirected graphs whose nodes are anonymous: a node only sees
//! its incident edges through local *port numbers*. [`Graph`] stores a fixed
//! edge list and materializes a packed CSR (compressed sparse row) adjacency
//! on first query — see the crate docs for the build-then-freeze layout.
//! Port numbers are edge-insertion order per node, so the port number of an
//! incident edge is simply its index in the node's CSR row.
//!
//! Node and edge identifiers are plain indices ([`NodeId`], [`EdgeId`]).
//! They exist only on the "simulator side"; protocol verifiers never see
//! them (see `pdip-core::NodeView`).

use std::fmt;
use std::sync::OnceLock;

/// Index of a node in a [`Graph`] (simulator-side identifier).
pub type NodeId = usize;

/// Index of an edge in a [`Graph`] (simulator-side identifier).
pub type EdgeId = usize;

/// An undirected edge, stored as the ordered pair of its endpoints as given
/// at insertion time. The insertion order of endpoints is meaningless for
/// the graph structure but is preserved so directed overlays
/// ([`crate::Orientation`]) can refer to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint as inserted.
    pub u: NodeId,
    /// Second endpoint as inserted.
    pub v: NodeId,
}

impl Edge {
    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge ({}, {})", self.u, self.v)
        }
    }

    /// Whether `x` is one of the two endpoints.
    pub fn is_incident(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// Endpoints normalized so the smaller id comes first.
    pub fn normalized(&self) -> (NodeId, NodeId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// Sentinel for "no half-edge" in the construction-time intrusive lists.
const NO_HALF: u32 = u32::MAX;

/// Degree at or below which a frozen `edge_between` uses a linear scan of
/// the port-ordered row instead of binary search in the sorted row: for
/// tiny rows the scan wins on branch predictability and cache locality.
const SCAN_THRESHOLD: usize = 8;

/// Frozen CSR adjacency: one contiguous `(neighbor, edge)` array indexed by
/// `offsets`, in two orders (ports for iteration, sorted for lookups).
#[derive(Debug, Clone)]
struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes node `v`'s row (length n + 1).
    offsets: Vec<u32>,
    /// Rows in port order (edge-insertion order per node).
    pairs: Vec<(NodeId, EdgeId)>,
    /// Rows sorted by neighbor id, for binary-search lookups.
    sorted: Vec<(NodeId, EdgeId)>,
}

impl Csr {
    /// Counting-sort construction over the edge list: two passes, no
    /// per-node allocation. Port order falls out of scanning edges in
    /// insertion order.
    fn build(n: usize, edges: &[Edge]) -> Csr {
        let mut offsets = vec![0u32; n + 1];
        for e in edges {
            offsets[e.u + 1] += 1;
            offsets[e.v + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut pairs = vec![(0, 0); 2 * edges.len()];
        for (id, e) in edges.iter().enumerate() {
            pairs[cursor[e.u] as usize] = (e.v, id);
            cursor[e.u] += 1;
            pairs[cursor[e.v] as usize] = (e.u, id);
            cursor[e.v] += 1;
        }
        let mut sorted = pairs.clone();
        for v in 0..n {
            sorted[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        Csr { offsets, pairs, sorted }
    }

    #[inline]
    fn row(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.pairs[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    #[inline]
    fn sorted_row(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.sorted[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

/// A simple undirected graph with port-ordered adjacency.
///
/// Storage follows a *build-then-freeze* discipline: during construction the
/// graph keeps only the edge list plus per-node intrusive half-edge lists
/// (O(1) per `add_edge`, O(min-degree) membership checks). The packed CSR
/// rows are materialized lazily on the first full-adjacency query
/// ([`Graph::neighbors`] and friends) or explicitly via [`Graph::freeze`];
/// any later mutation simply discards them, so the frozen view can never go
/// stale.
///
/// # Examples
///
/// ```
/// use pdip_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// degree[v], maintained incrementally (valid frozen or not).
    degree: Vec<u32>,
    /// first[v] = most recently added half-edge at `v` (`NO_HALF` if none).
    /// Half-edge `2e` sits at `edges[e].u`, half-edge `2e + 1` at
    /// `edges[e].v`.
    first: Vec<u32>,
    /// next[h] = next half-edge at the same node (`NO_HALF` terminates).
    next: Vec<u32>,
    /// Lazily frozen CSR rows; invalidated by every mutation.
    csr: OnceLock<Csr>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            degree: vec![0; n],
            first: vec![NO_HALF; n],
            next: Vec::new(),
            csr: OnceLock::new(),
        }
    }

    /// Builds a graph from an explicit edge list over nodes `0..n`.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= n`, is a self-loop, or
    /// duplicates a previous edge.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.degree.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or parallel edges:
    /// DIP instances are simple graphs.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u < self.n() && v < self.n(), "edge ({u}, {v}) out of range (n = {})", self.n());
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(!self.has_edge(u, v), "parallel edge ({u}, {v})");
        let id = self.edges.len();
        assert!(2 * id + 1 < NO_HALF as usize, "graph too large for u32 half-edge ids");
        self.edges.push(Edge { u, v });
        self.next.push(self.first[u]);
        self.first[u] = (2 * id) as u32;
        self.next.push(self.first[v]);
        self.first[v] = (2 * id + 1) as u32;
        self.degree[u] += 1;
        self.degree[v] += 1;
        self.csr.take();
        id
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.degree.push(0);
        self.first.push(NO_HALF);
        self.csr.take();
        self.degree.len() - 1
    }

    /// Forces materialization of the frozen CSR rows now (they are built
    /// lazily on first query otherwise). Idempotent; `&self` because the
    /// frozen view is a cache, not a structural change.
    pub fn freeze(&self) {
        let _ = self.csr_rows();
    }

    /// Whether the CSR rows are currently materialized.
    pub fn is_frozen(&self) -> bool {
        self.csr.get().is_some()
    }

    #[inline]
    fn csr_rows(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(self.n(), &self.edges))
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    /// Panics if `e >= self.m()`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.degree[v] as usize
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.degree.iter().max().map_or(0, |&d| d as usize)
    }

    /// Neighbors of `v` with edge ids, in port order. Freezes the graph.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        self.csr_rows().row(v)
    }

    /// Iterator over the neighbor node ids of `v`, in port order.
    pub fn neighbor_nodes(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&(u, _)| u)
    }

    /// Iterator over the incident edge ids of `v`, in port order.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.neighbors(v).iter().map(|&(_, e)| e)
    }

    /// Returns the id of the edge between `u` and `v`, if present.
    ///
    /// Frozen: binary search in the sorted row of the lower-degree endpoint
    /// (linear scan below [`SCAN_THRESHOLD`]). Unfrozen: an O(min-degree)
    /// half-edge walk — querying during construction does *not* trigger a
    /// freeze, so generators can interleave `add_edge` and `has_edge`
    /// without rebuilding rows.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        if let Some(csr) = self.csr.get() {
            if self.degree(a) <= SCAN_THRESHOLD {
                return csr.row(a).iter().find(|&&(w, _)| w == b).map(|&(_, e)| e);
            }
            let row = csr.sorted_row(a);
            let i = row.partition_point(|&(w, _)| w < b);
            return match row.get(i) {
                Some(&(w, e)) if w == b => Some(e),
                _ => None,
            };
        }
        let mut h = self.first[a];
        while h != NO_HALF {
            let e = (h >> 1) as usize;
            let edge = self.edges[e];
            let w = if h & 1 == 0 { edge.v } else { edge.u };
            if w == b {
                return Some(e);
            }
            h = self.next[h as usize];
        }
        None
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Whether the graph is connected (the 0-node graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        crate::scratch::with_thread_scratch(|s| s.reach_count(self, 0)) == self.n()
    }

    /// Subgraph induced by `nodes`.
    ///
    /// Returns the induced graph together with the map from new ids to old
    /// ids (`new -> old`); nodes appear in the order given.
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut old_to_new = vec![usize::MAX; self.n()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.n(), "node {old} out of range");
            assert_eq!(old_to_new[old], usize::MAX, "duplicate node {old}");
            old_to_new[old] = new;
        }
        let mut g = Graph::new(nodes.len());
        for e in &self.edges {
            let (nu, nv) = (old_to_new[e.u], old_to_new[e.v]);
            if nu != usize::MAX && nv != usize::MAX {
                g.add_edge(nu, nv);
            }
        }
        (g, nodes.to_vec())
    }

    /// A copy of the graph with an extra apex node adjacent to every
    /// original node. Used by the outerplanarity recognizer: `G` is
    /// outerplanar iff `G + apex` is planar.
    pub fn with_apex(&self) -> (Graph, NodeId) {
        let mut g = self.clone();
        let apex = g.add_node();
        for v in 0..self.n() {
            g.add_edge(v, apex);
        }
        (g, apex)
    }

    /// Checks the necessary planarity edge bound `m <= 3n - 6` (for `n >= 3`).
    pub fn satisfies_planar_edge_bound(&self) -> bool {
        self.n() < 3 || self.m() <= 3 * self.n() - 6
    }
}

/// Structural equality: same node count and same edge list (the CSR rows
/// and half-edge lists are derived state and never compared).
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.n() == other.n() && self.edges == other.edges
    }
}

impl Eq for Graph {}

/// An edge orientation overlaid on a [`Graph`].
///
/// `forward[e] == true` means edge `e` is directed `edge.u -> edge.v`
/// (in insertion order of endpoints), `false` means `edge.v -> edge.u`.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, Orientation};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// // Orient everything from the smaller to the larger endpoint.
/// let o = Orientation::by(&g, |u, v| u < v);
/// assert_eq!(o.head(&g, 0), 1);
/// assert_eq!(o.tail(&g, 0), 0);
/// assert!(o.is_acyclic(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    forward: Vec<bool>,
}

impl Orientation {
    /// Orients every edge `(u, v)` in endpoint-insertion order
    /// (i.e. all-forward).
    pub fn all_forward(g: &Graph) -> Self {
        Orientation { forward: vec![true; g.m()] }
    }

    /// Orients each edge `e = {u, v}` from `u` to `v` when
    /// `decide(e.u, e.v)` is true, from `v` to `u` otherwise.
    pub fn by(g: &Graph, decide: impl Fn(NodeId, NodeId) -> bool) -> Self {
        Orientation { forward: g.edges().iter().map(|e| decide(e.u, e.v)).collect() }
    }

    /// Head (target) of directed edge `e`.
    pub fn head(&self, g: &Graph, e: EdgeId) -> NodeId {
        let edge = g.edge(e);
        if self.forward[e] {
            edge.v
        } else {
            edge.u
        }
    }

    /// Tail (source) of directed edge `e`.
    pub fn tail(&self, g: &Graph, e: EdgeId) -> NodeId {
        let edge = g.edge(e);
        if self.forward[e] {
            edge.u
        } else {
            edge.v
        }
    }

    /// Flips the direction of edge `e`.
    pub fn flip(&mut self, e: EdgeId) {
        self.forward[e] = !self.forward[e];
    }

    /// Whether the directed graph defined by this orientation is acyclic.
    pub fn is_acyclic(&self, g: &Graph) -> bool {
        // Kahn's algorithm on the oriented edges.
        let mut indeg = vec![0usize; g.n()];
        for e in 0..g.m() {
            indeg[self.head(g, e)] += 1;
        }
        let mut queue: Vec<NodeId> = (0..g.n()).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &(_, e) in g.neighbors(v) {
                if self.tail(g, e) == v {
                    let h = self.head(g, e);
                    indeg[h] -= 1;
                    if indeg[h] == 0 {
                        queue.push(h);
                    }
                }
            }
        }
        seen == g.n()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, g: &Graph, v: NodeId) -> usize {
        g.incident_edges(v).filter(|&e| self.tail(g, e) == v).count()
    }

    /// Out-edges of `v` in port order.
    pub fn out_edges<'g>(&'g self, g: &'g Graph, v: NodeId) -> impl Iterator<Item = EdgeId> + 'g {
        g.incident_edges(v).filter(move |&e| self.tail(g, e) == v)
    }

    /// In-edges of `v` in port order.
    pub fn in_edges<'g>(&'g self, g: &'g Graph, v: NodeId) -> impl Iterator<Item = EdgeId> + 'g {
        g.incident_edges(v).filter(move |&e| self.head(g, e) == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn ports_are_insertion_order() {
        let g = Graph::from_edges(4, [(1, 0), (1, 2), (1, 3)]);
        let nbrs: Vec<NodeId> = g.neighbor_nodes(1).collect();
        assert_eq!(nbrs, vec![0, 2, 3]);
        let edges: Vec<EdgeId> = g.incident_edges(1).collect();
        assert_eq!(edges, vec![0, 1, 2]);
    }

    #[test]
    fn freeze_is_lazy_and_mutation_thaws() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!g.is_frozen(), "queries so far should not have frozen");
        assert!(g.has_edge(0, 1)); // pre-freeze lookup path
        assert!(!g.is_frozen());
        assert_eq!(g.neighbors(1).len(), 2); // first row query freezes
        assert!(g.is_frozen());
        g.add_edge(0, 2);
        assert!(!g.is_frozen(), "mutation must discard the frozen rows");
        assert_eq!(g.neighbor_nodes(0).collect::<Vec<_>>(), vec![1, 2]);
        let w = g.add_node();
        assert!(!g.is_frozen());
        assert_eq!(g.degree(w), 0);
        assert!(g.neighbors(w).is_empty());
    }

    #[test]
    fn edge_between_on_high_degree_hub() {
        // Degree above SCAN_THRESHOLD exercises the binary-search path.
        let k = 3 * SCAN_THRESHOLD;
        let mut g = Graph::new(k + 1);
        let mut ids = Vec::new();
        for v in 1..=k {
            ids.push(g.add_edge(0, v));
        }
        // Pre-freeze half-edge walk.
        for v in 1..=k {
            assert_eq!(g.edge_between(0, v), Some(ids[v - 1]));
            assert_eq!(g.edge_between(v, 0), Some(ids[v - 1]));
        }
        g.freeze();
        for v in 1..=k {
            assert_eq!(g.edge_between(0, v), Some(ids[v - 1]));
            assert_eq!(g.edge_between(v, 0), Some(ids[v - 1]));
        }
        assert_eq!(g.edge_between(1, 2), None);
    }

    #[test]
    fn equality_ignores_freeze_state() {
        let a = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, [(0, 1), (1, 2)]);
        a.freeze();
        assert_eq!(a, b);
        assert_ne!(a, Graph::from_edges(4, [(0, 1), (1, 2)]));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge { u: 3, v: 7 };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
        assert!(e.is_incident(3));
        assert!(!e.is_incident(4));
        assert_eq!(e.normalized(), (3, 7));
        assert_eq!(Edge { u: 7, v: 3 }.normalized(), (3, 7));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics() {
        Edge { u: 0, v: 1 }.other(2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn no_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let (h, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 3); // (1,2), (2,3), (1,3)
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn apex_augmentation() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let (h, apex) = g.with_apex();
        assert_eq!(apex, 3);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 2 + 3);
        for v in 0..3 {
            assert!(h.has_edge(v, apex));
        }
    }

    #[test]
    fn orientation_heads_tails() {
        let g = Graph::from_edges(3, [(0, 1), (2, 1)]);
        let o = Orientation::all_forward(&g);
        assert_eq!(o.tail(&g, 0), 0);
        assert_eq!(o.head(&g, 0), 1);
        assert_eq!(o.tail(&g, 1), 2);
        assert_eq!(o.head(&g, 1), 1);
        let mut o2 = o.clone();
        o2.flip(1);
        assert_eq!(o2.tail(&g, 1), 1);
        assert_eq!(o2.head(&g, 1), 2);
    }

    #[test]
    fn orientation_acyclicity() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        // 0->1, 1->2, 2->0 is a directed cycle.
        let cyc = Orientation::all_forward(&g);
        assert!(!cyc.is_acyclic(&g));
        // Orient by node id: 0->1, 1->2, 0->2 is acyclic.
        let dag = Orientation::by(&g, |u, v| u < v);
        assert!(dag.is_acyclic(&g));
        assert_eq!(dag.out_degree(&g, 0), 2);
        assert_eq!(dag.out_degree(&g, 2), 0);
    }

    #[test]
    fn out_and_in_edges() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (3, 0)]);
        let o = Orientation::by(&g, |u, v| u < v);
        let outs: Vec<EdgeId> = o.out_edges(&g, 0).collect();
        assert_eq!(outs, vec![0, 1, 2]); // 0->1, 0->2, 0->3
        let ins: Vec<EdgeId> = o.in_edges(&g, 1).collect();
        assert_eq!(ins, vec![0]);
    }
}
