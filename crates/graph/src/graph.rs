//! Core undirected graph representation.
//!
//! The distributed interactive proof (DIP) model operates on simple,
//! connected, undirected graphs whose nodes are anonymous: a node only sees
//! its incident edges through local *port numbers*. [`Graph`] stores a fixed
//! edge list plus per-node adjacency in port order, so the port number of an
//! incident edge is simply its index in the node's adjacency list.
//!
//! Node and edge identifiers are plain indices ([`NodeId`], [`EdgeId`]).
//! They exist only on the "simulator side"; protocol verifiers never see
//! them (see `pdip-core::NodeView`).

use std::fmt;

/// Index of a node in a [`Graph`] (simulator-side identifier).
pub type NodeId = usize;

/// Index of an edge in a [`Graph`] (simulator-side identifier).
pub type EdgeId = usize;

/// An undirected edge, stored as the ordered pair of its endpoints as given
/// at insertion time. The insertion order of endpoints is meaningless for
/// the graph structure but is preserved so directed overlays
/// ([`crate::Orientation`]) can refer to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// First endpoint as inserted.
    pub u: NodeId,
    /// Second endpoint as inserted.
    pub v: NodeId,
}

impl Edge {
    /// The endpoint different from `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("node {x} is not an endpoint of edge ({}, {})", self.u, self.v)
        }
    }

    /// Whether `x` is one of the two endpoints.
    pub fn is_incident(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// Endpoints normalized so the smaller id comes first.
    pub fn normalized(&self) -> (NodeId, NodeId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// A simple undirected graph with port-ordered adjacency lists.
///
/// # Examples
///
/// ```
/// use pdip_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 3);
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency[v] = list of (neighbor, edge id) in port order.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph { edges: Vec::new(), adjacency: vec![Vec::new(); n] }
    }

    /// Builds a graph from an explicit edge list over nodes `0..n`.
    ///
    /// # Panics
    /// Panics if an edge references a node `>= n`, is a self-loop, or
    /// duplicates a previous edge.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge and returns its id.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or parallel edges:
    /// DIP instances are simple graphs.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u < self.n() && v < self.n(), "edge ({u}, {v}) out of range (n = {})", self.n());
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(!self.has_edge(u, v), "parallel edge ({u}, {v})");
        let id = self.edges.len();
        self.edges.push(Edge { u, v });
        self.adjacency[u].push((v, id));
        self.adjacency[v].push((u, id));
        id
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    /// Panics if `e >= self.m()`.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Neighbors of `v` with edge ids, in port order.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[v]
    }

    /// Iterator over the neighbor node ids of `v`, in port order.
    pub fn neighbor_nodes(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[v].iter().map(|&(u, _)| u)
    }

    /// Iterator over the incident edge ids of `v`, in port order.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adjacency[v].iter().map(|&(_, e)| e)
    }

    /// Returns the id of the edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adjacency[a].iter().find(|&&(w, _)| w == b).map(|&(_, e)| e)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Whether the graph is connected (the 0-node graph counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.n() == 0 {
            return true;
        }
        let order = crate::traversal::bfs_order(self, 0);
        order.len() == self.n()
    }

    /// Subgraph induced by `nodes`.
    ///
    /// Returns the induced graph together with the map from new ids to old
    /// ids (`new -> old`); nodes appear in the order given.
    ///
    /// # Panics
    /// Panics if `nodes` contains duplicates or out-of-range ids.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let mut old_to_new = vec![usize::MAX; self.n()];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.n(), "node {old} out of range");
            assert_eq!(old_to_new[old], usize::MAX, "duplicate node {old}");
            old_to_new[old] = new;
        }
        let mut g = Graph::new(nodes.len());
        for e in &self.edges {
            let (nu, nv) = (old_to_new[e.u], old_to_new[e.v]);
            if nu != usize::MAX && nv != usize::MAX {
                g.add_edge(nu, nv);
            }
        }
        (g, nodes.to_vec())
    }

    /// A copy of the graph with an extra apex node adjacent to every
    /// original node. Used by the outerplanarity recognizer: `G` is
    /// outerplanar iff `G + apex` is planar.
    pub fn with_apex(&self) -> (Graph, NodeId) {
        let mut g = self.clone();
        let apex = g.add_node();
        for v in 0..self.n() {
            g.add_edge(v, apex);
        }
        (g, apex)
    }

    /// Checks the necessary planarity edge bound `m <= 3n - 6` (for `n >= 3`).
    pub fn satisfies_planar_edge_bound(&self) -> bool {
        self.n() < 3 || self.m() <= 3 * self.n() - 6
    }
}

/// An edge orientation overlaid on a [`Graph`].
///
/// `forward[e] == true` means edge `e` is directed `edge.u -> edge.v`
/// (in insertion order of endpoints), `false` means `edge.v -> edge.u`.
///
/// # Examples
///
/// ```
/// use pdip_graph::{Graph, Orientation};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// // Orient everything from the smaller to the larger endpoint.
/// let o = Orientation::by(&g, |u, v| u < v);
/// assert_eq!(o.head(&g, 0), 1);
/// assert_eq!(o.tail(&g, 0), 0);
/// assert!(o.is_acyclic(&g));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    forward: Vec<bool>,
}

impl Orientation {
    /// Orients every edge `(u, v)` in endpoint-insertion order
    /// (i.e. all-forward).
    pub fn all_forward(g: &Graph) -> Self {
        Orientation { forward: vec![true; g.m()] }
    }

    /// Orients each edge `e = {u, v}` from `u` to `v` when
    /// `decide(e.u, e.v)` is true, from `v` to `u` otherwise.
    pub fn by(g: &Graph, decide: impl Fn(NodeId, NodeId) -> bool) -> Self {
        Orientation { forward: g.edges().iter().map(|e| decide(e.u, e.v)).collect() }
    }

    /// Head (target) of directed edge `e`.
    pub fn head(&self, g: &Graph, e: EdgeId) -> NodeId {
        let edge = g.edge(e);
        if self.forward[e] {
            edge.v
        } else {
            edge.u
        }
    }

    /// Tail (source) of directed edge `e`.
    pub fn tail(&self, g: &Graph, e: EdgeId) -> NodeId {
        let edge = g.edge(e);
        if self.forward[e] {
            edge.u
        } else {
            edge.v
        }
    }

    /// Flips the direction of edge `e`.
    pub fn flip(&mut self, e: EdgeId) {
        self.forward[e] = !self.forward[e];
    }

    /// Whether the directed graph defined by this orientation is acyclic.
    pub fn is_acyclic(&self, g: &Graph) -> bool {
        // Kahn's algorithm on the oriented edges.
        let mut indeg = vec![0usize; g.n()];
        for e in 0..g.m() {
            indeg[self.head(g, e)] += 1;
        }
        let mut queue: Vec<NodeId> = (0..g.n()).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            for &(_, e) in g.neighbors(v) {
                if self.tail(g, e) == v {
                    let h = self.head(g, e);
                    indeg[h] -= 1;
                    if indeg[h] == 0 {
                        queue.push(h);
                    }
                }
            }
        }
        seen == g.n()
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, g: &Graph, v: NodeId) -> usize {
        g.incident_edges(v).filter(|&e| self.tail(g, e) == v).count()
    }

    /// Out-edges of `v` in port order.
    pub fn out_edges<'g>(&'g self, g: &'g Graph, v: NodeId) -> impl Iterator<Item = EdgeId> + 'g {
        g.incident_edges(v).filter(move |&e| self.tail(g, e) == v)
    }

    /// In-edges of `v` in port order.
    pub fn in_edges<'g>(&'g self, g: &'g Graph, v: NodeId) -> impl Iterator<Item = EdgeId> + 'g {
        g.incident_edges(v).filter(move |&e| self.head(g, e) == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn ports_are_insertion_order() {
        let g = Graph::from_edges(4, [(1, 0), (1, 2), (1, 3)]);
        let nbrs: Vec<NodeId> = g.neighbor_nodes(1).collect();
        assert_eq!(nbrs, vec![0, 2, 3]);
        let edges: Vec<EdgeId> = g.incident_edges(1).collect();
        assert_eq!(edges, vec![0, 1, 2]);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge { u: 3, v: 7 };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
        assert!(e.is_incident(3));
        assert!(!e.is_incident(4));
        assert_eq!(e.normalized(), (3, 7));
        assert_eq!(Edge { u: 7, v: 3 }.normalized(), (3, 7));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics() {
        Edge { u: 0, v: 1 }.other(2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn no_self_loops() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn no_parallel_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let (h, map) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(h.n(), 3);
        assert_eq!(h.m(), 3); // (1,2), (2,3), (1,3)
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn apex_augmentation() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let (h, apex) = g.with_apex();
        assert_eq!(apex, 3);
        assert_eq!(h.n(), 4);
        assert_eq!(h.m(), 2 + 3);
        for v in 0..3 {
            assert!(h.has_edge(v, apex));
        }
    }

    #[test]
    fn orientation_heads_tails() {
        let g = Graph::from_edges(3, [(0, 1), (2, 1)]);
        let o = Orientation::all_forward(&g);
        assert_eq!(o.tail(&g, 0), 0);
        assert_eq!(o.head(&g, 0), 1);
        assert_eq!(o.tail(&g, 1), 2);
        assert_eq!(o.head(&g, 1), 1);
        let mut o2 = o.clone();
        o2.flip(1);
        assert_eq!(o2.tail(&g, 1), 1);
        assert_eq!(o2.head(&g, 1), 2);
    }

    #[test]
    fn orientation_acyclicity() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        // 0->1, 1->2, 2->0 is a directed cycle.
        let cyc = Orientation::all_forward(&g);
        assert!(!cyc.is_acyclic(&g));
        // Orient by node id: 0->1, 1->2, 0->2 is acyclic.
        let dag = Orientation::by(&g, |u, v| u < v);
        assert!(dag.is_acyclic(&g));
        assert_eq!(dag.out_degree(&g, 0), 2);
        assert_eq!(dag.out_degree(&g, 2), 0);
    }

    #[test]
    fn out_and_in_edges() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (3, 0)]);
        let o = Orientation::by(&g, |u, v| u < v);
        let outs: Vec<EdgeId> = o.out_edges(&g, 0).collect();
        assert_eq!(outs, vec![0, 1, 2]); // 0->1, 0->2, 0->3
        let ins: Vec<EdgeId> = o.in_edges(&g, 1).collect();
        assert_eq!(ins, vec![0]);
    }
}
