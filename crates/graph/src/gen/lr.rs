//! Generators for LR-sorting instances (§4 of the paper).
//!
//! An LR-sorting instance is a directed graph with a directed Hamiltonian
//! path `P` known to the nodes; yes-instances direct every non-path edge
//! from left to right (so the graph is a DAG whose unique topological
//! order is `P`), no-instances reverse at least one edge.

use super::{laminar_arcs, random_permutation, relabel, relabel_nodes};
use crate::graph::{EdgeId, Graph, NodeId, Orientation};
use rand::Rng;

/// An LR-sorting instance.
#[derive(Debug, Clone)]
pub struct LrInstance {
    /// The underlying undirected graph.
    pub graph: Graph,
    /// Edge directions.
    pub orientation: Orientation,
    /// The Hamiltonian path, left to right (node ids).
    pub path: Vec<NodeId>,
    /// Edge ids of the path edges (in path order).
    pub path_edges: Vec<EdgeId>,
    /// Whether this is a yes-instance (every edge directed left→right).
    pub is_yes: bool,
}

impl LrInstance {
    /// Position of each node on the path (`pos[v]` = index).
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![usize::MAX; self.graph.n()];
        for (i, &v) in self.path.iter().enumerate() {
            pos[v] = i;
        }
        pos
    }

    /// Ground truth check: does the orientation direct every edge
    /// left→right along the path?
    pub fn all_edges_forward(&self) -> bool {
        let pos = self.positions();
        (0..self.graph.m()).all(|e| {
            pos[self.orientation.tail(&self.graph, e)] < pos[self.orientation.head(&self.graph, e)]
        })
    }
}

/// A random yes-instance of LR-sorting on `n` nodes.
///
/// With `planar = true` the non-path arcs form a laminar family, so the
/// instance is path-outerplanar (hence planar) and suitable for the
/// node-label variant (Lemma 4.2). With `planar = false`, arbitrary
/// forward arcs are added — suitable only for the edge-label variant
/// (Lemma 4.1). `extra` scales the number of non-path arcs.
pub fn random_lr_yes(n: usize, extra: usize, planar: bool, rng: &mut impl Rng) -> LrInstance {
    assert!(n >= 2);
    let mut g = Graph::new(n);
    let mut path_edges = Vec::with_capacity(n - 1);
    for i in 0..n - 1 {
        path_edges.push(g.add_edge(i, i + 1));
    }
    if planar {
        let mut arcs = Vec::new();
        let density = (extra as f64 / n.max(1) as f64).clamp(0.05, 0.95);
        if n >= 3 {
            laminar_arcs(0, n - 1, density, rng, &mut arcs);
        }
        for (a, b) in arcs {
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
    } else {
        for _ in 0..extra {
            let a = rng.gen_range(0..n - 1);
            let b = rng.gen_range(a + 1..n);
            if b > a + 1 && !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
    }
    // All edges run from the smaller position to the larger (positions are
    // identities before relabeling).
    let orientation = Orientation::by(&g, |u, v| u < v);
    let perm = random_permutation(n, rng);
    let graph = relabel(&g, &perm);
    // relabel preserves edge ids and endpoint insertion order, so the
    // orientation vector carries over unchanged.
    let path = relabel_nodes(&(0..n).collect::<Vec<_>>(), &perm);
    LrInstance { graph, orientation, path, path_edges, is_yes: true }
}

/// A no-instance: a yes-instance with `flips ≥ 1` random non-path edges
/// reversed. Returns `None` if the yes-instance has no non-path edge to
/// flip (regenerate with larger `extra`).
pub fn random_lr_no(
    n: usize,
    extra: usize,
    planar: bool,
    flips: usize,
    rng: &mut impl Rng,
) -> Option<LrInstance> {
    let mut inst = random_lr_yes(n, extra, planar, rng);
    let non_path: Vec<EdgeId> =
        (0..inst.graph.m()).filter(|e| !inst.path_edges.contains(e)).collect();
    if non_path.is_empty() {
        return None;
    }
    for _ in 0..flips.max(1) {
        let e = non_path[rng.gen_range(0..non_path.len())];
        inst.orientation.flip(e);
    }
    inst.is_yes = inst.all_edges_forward();
    if inst.is_yes {
        return None; // flips cancelled out (even number on same edge)
    }
    Some(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn yes_instances_are_forward_dags() {
        let mut rng = SmallRng::seed_from_u64(31);
        for n in [2usize, 3, 10, 64, 200] {
            for planar in [true, false] {
                let inst = random_lr_yes(n, n / 2, planar, &mut rng);
                assert!(inst.all_edges_forward(), "n={n} planar={planar}");
                assert!(inst.orientation.is_acyclic(&inst.graph));
                assert!(crate::outerplanar::is_hamiltonian_path(&inst.graph, &inst.path));
            }
        }
    }

    #[test]
    fn planar_yes_instances_are_path_outerplanar() {
        let mut rng = SmallRng::seed_from_u64(32);
        for _ in 0..10 {
            let inst = random_lr_yes(50, 25, true, &mut rng);
            assert!(crate::outerplanar::is_path_outerplanar_with(&inst.graph, &inst.path));
        }
    }

    #[test]
    fn no_instances_have_backward_edge() {
        let mut rng = SmallRng::seed_from_u64(33);
        let mut made = 0;
        for _ in 0..20 {
            if let Some(inst) = random_lr_no(40, 20, true, 1, &mut rng) {
                assert!(!inst.all_edges_forward());
                assert!(!inst.is_yes);
                made += 1;
            }
        }
        assert!(made > 10);
    }

    #[test]
    fn path_edges_are_consistent() {
        let mut rng = SmallRng::seed_from_u64(34);
        let inst = random_lr_yes(30, 10, true, &mut rng);
        for (i, &e) in inst.path_edges.iter().enumerate() {
            let edge = inst.graph.edge(e);
            let (a, b) = (inst.path[i], inst.path[i + 1]);
            assert!(edge.is_incident(a) && edge.is_incident(b));
        }
    }
}
