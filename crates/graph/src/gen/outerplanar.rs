//! Generators for path-outerplanar and general outerplanar instances.

use super::{laminar_arcs, random_permutation, relabel, relabel_nodes};
use crate::graph::{Graph, NodeId};
use rand::Rng;

/// A path-outerplanar instance: the graph plus the witness Hamiltonian path
/// (in order from the leftmost node).
#[derive(Debug, Clone)]
pub struct PathOuterplanarInstance {
    /// The instance graph.
    pub graph: Graph,
    /// The witness Hamiltonian path (node ids left to right).
    pub path: Vec<NodeId>,
}

/// A random path-outerplanar graph on `n` nodes: a Hamiltonian path plus a
/// random laminar family of non-path arcs, with node labels shuffled so
/// node ids carry no positional information.
///
/// `density` in `[0, 1]` controls the number of arcs.
///
/// # Panics
/// Panics if `n == 0`.
pub fn random_path_outerplanar(
    n: usize,
    density: f64,
    rng: &mut impl Rng,
) -> PathOuterplanarInstance {
    assert!(n > 0);
    let mut g = Graph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i, i + 1);
    }
    let mut arcs = Vec::new();
    if n >= 3 {
        laminar_arcs(0, n - 1, density, rng, &mut arcs);
    }
    for (a, b) in arcs {
        if !g.has_edge(a, b) {
            g.add_edge(a, b);
        }
    }
    let perm = random_permutation(n, rng);
    let graph = relabel(&g, &perm);
    let path = relabel_nodes(&(0..n).collect::<Vec<_>>(), &perm);
    PathOuterplanarInstance { graph, path }
}

/// The maximal path-outerplanar "fan": path `0..n` plus all arcs `(0, j)`
/// for `j ≥ 2`, reaching the outerplanar edge bound `2n - 3`. Labels are
/// shuffled.
pub fn fan_path_outerplanar(n: usize, rng: &mut impl Rng) -> PathOuterplanarInstance {
    assert!(n >= 2);
    let mut g = Graph::new(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1);
    }
    for j in 2..n {
        g.add_edge(0, j);
    }
    let perm = random_permutation(n, rng);
    PathOuterplanarInstance {
        graph: relabel(&g, &perm),
        path: relabel_nodes(&(0..n).collect::<Vec<_>>(), &perm),
    }
}

/// An outerplanar instance: the graph plus, for each biconnected block,
/// nothing extra — the honest prover recomputes structure via the
/// recognizers. Kept as a struct for symmetry/extension.
#[derive(Debug, Clone)]
pub struct OuterplanarInstance {
    /// The instance graph.
    pub graph: Graph,
}

/// A random biconnected outerplanar block: a cycle on `k` nodes (`k ≥ 3`)
/// with a random laminar family of chords. Returns the block as edges over
/// local ids `0..k` (the outer cycle is `0,1,…,k-1`).
fn random_block(k: usize, density: f64, rng: &mut impl Rng) -> Vec<(usize, usize)> {
    let mut edges: Vec<(usize, usize)> = (0..k).map(|i| (i, (i + 1) % k)).collect();
    if k >= 4 {
        let mut arcs = Vec::new();
        laminar_arcs(0, k - 1, density, rng, &mut arcs);
        for (a, b) in arcs {
            // Skip the closing edge (0, k-1), it is already on the cycle.
            if !(a == 0 && b == k - 1) {
                edges.push((a, b));
            }
        }
    }
    edges
}

/// A random connected outerplanar graph built as a *tree* of biconnected
/// blocks glued at cut nodes: `blocks` random polygon blocks with laminar
/// chords, each attached at a uniformly random existing node. Labels
/// shuffled.
pub fn random_outerplanar(
    n: usize,
    blocks: usize,
    density: f64,
    rng: &mut impl Rng,
) -> OuterplanarInstance {
    assert!(n >= 3 && blocks >= 1);
    // Decide the number of *fresh* nodes per block up front: the first
    // block needs >= 3, later blocks reuse an attachment node so they need
    // >= 2 fresh nodes each. Trailing blocks are dropped if n is too small.
    let mut fresh_counts = vec![3usize];
    let mut used = 3usize;
    for _ in 1..blocks {
        if used + 2 > n {
            break;
        }
        fresh_counts.push(2);
        used += 2;
    }
    // Distribute the leftover nodes uniformly.
    for _ in used..n {
        let i = rng.gen_range(0..fresh_counts.len());
        fresh_counts[i] += 1;
    }
    let mut g = Graph::new(0);
    for (b, &fresh) in fresh_counts.iter().enumerate() {
        let attach = if b == 0 { None } else { Some(rng.gen_range(0..g.n())) };
        let k = fresh + usize::from(attach.is_some()); // block size
        let base = g.n();
        for _ in 0..fresh {
            g.add_node();
        }
        // Local block id -> global id (local 0 is the attachment node).
        let to_global = |local: usize| -> usize {
            match attach {
                None => base + local,
                Some(a) => {
                    if local == 0 {
                        a
                    } else {
                        base + local - 1
                    }
                }
            }
        };
        for (a, b) in random_block(k, density, rng) {
            let (ga, gb) = (to_global(a), to_global(b));
            if !g.has_edge(ga, gb) {
                g.add_edge(ga, gb);
            }
        }
    }
    let perm = random_permutation(g.n(), rng);
    OuterplanarInstance { graph: relabel(&g, &perm) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outerplanar::{is_outerplanar, is_path_outerplanar_with};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn path_outerplanar_instances_are_valid() {
        let mut rng = SmallRng::seed_from_u64(1);
        for n in [1usize, 2, 3, 5, 17, 64, 200] {
            for _ in 0..5 {
                let inst = random_path_outerplanar(n, 0.7, &mut rng);
                assert!(is_path_outerplanar_with(&inst.graph, &inst.path), "n = {n}");
            }
        }
    }

    #[test]
    fn fan_is_maximal() {
        let mut rng = SmallRng::seed_from_u64(2);
        let inst = fan_path_outerplanar(20, &mut rng);
        assert_eq!(inst.graph.m(), 2 * 20 - 3);
        assert!(is_path_outerplanar_with(&inst.graph, &inst.path));
    }

    #[test]
    fn outerplanar_instances_are_outerplanar_and_connected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for (n, blocks) in [(6usize, 2usize), (20, 4), (50, 7), (30, 1)] {
            for _ in 0..5 {
                let inst = random_outerplanar(n, blocks, 0.5, &mut rng);
                assert!(inst.graph.is_connected(), "n={n} blocks={blocks}");
                assert!(is_outerplanar(&inst.graph), "n={n} blocks={blocks}");
            }
        }
    }
}
