//! Generators for planar instances with combinatorial embeddings.
//!
//! Planar instances are grown as *stacked triangulations* (Apollonian
//! networks): starting from a triangle, a fresh node is repeatedly inserted
//! into a randomly chosen face and joined to its three corners. Both the
//! graph and its rotation system are maintained exactly, so every generated
//! instance carries a valid combinatorial planar embedding (the witness the
//! honest prover of Theorem 1.5 needs). Sparser planar graphs are obtained
//! by deleting non-spanning-tree edges and restricting the embedding.

use super::{random_permutation, relabel};
use crate::embedding::RotationSystem;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{with_thread_scratch, TraversalScratch};
use crate::traversal::RootedForest;
use rand::Rng;

/// Initial capacity for per-node rotation orders: the average degree of a
/// planar graph is below 6, so most orders never reallocate.
const ORDER_CAP: usize = 6;

/// A planar instance: the graph plus a valid combinatorial planar
/// embedding.
#[derive(Debug, Clone)]
pub struct PlanarInstance {
    /// The instance graph.
    pub graph: Graph,
    /// A rotation system inducing a planar (genus-0) embedding.
    pub rho: RotationSystem,
}

/// Builder maintaining a triangulation with exact rotations and faces.
struct TriangulationBuilder {
    g: Graph,
    /// rotation orders (clockwise) as edge ids per node.
    order: Vec<Vec<EdgeId>>,
    /// faces as oriented dart triples ((a,b),(b,c),(c,a)) stored as node triples.
    faces: Vec<(NodeId, NodeId, NodeId)>,
}

impl TriangulationBuilder {
    fn new() -> Self {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        // Rotation at v: any order; pick port order and read off the two
        // induced faces by tracing the resulting embedding.
        let order: Vec<Vec<EdgeId>> = (0..3)
            .map(|v| {
                let mut o = Vec::with_capacity(ORDER_CAP);
                o.extend(g.incident_edges(v));
                o
            })
            .collect();
        let rho = RotationSystem::from_orders(&g, order.clone());
        let faces = rho
            .faces(&g)
            .into_iter()
            .map(|darts| {
                let a = darts[0].from;
                let b = g.edge(darts[0].edge).other(a);
                let c = g.edge(darts[1].edge).other(b);
                (a, b, c)
            })
            .collect();
        TriangulationBuilder { g, order, faces }
    }

    /// Inserts a fresh node into face `f`, keeping rotations and faces exact.
    fn insert_into_face(&mut self, f: usize) -> NodeId {
        let (a, b, c) = self.faces.swap_remove(f);
        let w = self.g.add_node();
        let ea = self.g.add_edge(a, w);
        let eb = self.g.add_edge(b, w);
        let ec = self.g.add_edge(c, w);
        // Rotation at w so that the three sub-faces trace correctly:
        // clockwise cycle aw -> cw -> bw.
        let mut ow = Vec::with_capacity(ORDER_CAP);
        ow.extend([ea, ec, eb]);
        self.order.push(ow);
        // At each face corner y with incoming dart (x -> y) and outgoing
        // (y -> z), insert edge (y, w) immediately after edge (x, y).
        for (x, y, e_new) in [(c, a, ea), (a, b, eb), (b, c, ec)] {
            let e_xy = self.g.edge_between(x, y).expect("face edge");
            let pos = self.order[y].iter().position(|&e| e == e_xy).expect("edge in rotation");
            self.order[y].insert(pos + 1, e_new);
        }
        self.faces.push((a, b, w));
        self.faces.push((b, c, w));
        self.faces.push((c, a, w));
        w
    }
}

/// A random maximal planar graph (stacked triangulation) on `n ≥ 3` nodes
/// with its exact embedding. Labels shuffled.
pub fn random_triangulation(n: usize, rng: &mut impl Rng) -> PlanarInstance {
    assert!(n >= 3);
    let mut b = TriangulationBuilder::new();
    while b.g.n() < n {
        let f = rng.gen_range(0..b.faces.len());
        b.insert_into_face(f);
    }
    finish(b.g, b.order, rng)
}

/// A random triangulation with a *planted* high-degree node: face choices
/// are biased so one node reaches degree ≥ `target_degree` (used by the
/// Δ-dependence experiment E6).
pub fn triangulation_with_degree(
    n: usize,
    target_degree: usize,
    rng: &mut impl Rng,
) -> PlanarInstance {
    assert!(n >= 3 && target_degree >= 3 && target_degree < n);
    let mut b = TriangulationBuilder::new();
    let hub: NodeId = 0;
    while b.g.n() < n {
        let need_more = b.g.degree(hub) < target_degree;
        let f = if need_more {
            // Insert into a face incident to the hub: increases deg(hub).
            (0..b.faces.len())
                .filter(|&i| {
                    let (a, bb, c) = b.faces[i];
                    a == hub || bb == hub || c == hub
                })
                .max_by_key(|_| rng.gen_range(0..1_000_000u32))
                .expect("hub always lies on some face")
        } else {
            // Avoid hub faces so the max degree stays planted.
            let non_hub: Vec<usize> = (0..b.faces.len())
                .filter(|&i| {
                    let (a, bb, c) = b.faces[i];
                    a != hub && bb != hub && c != hub
                })
                .collect();
            if non_hub.is_empty() {
                rng.gen_range(0..b.faces.len())
            } else {
                non_hub[rng.gen_range(0..non_hub.len())]
            }
        };
        b.insert_into_face(f);
    }
    finish(b.g, b.order, rng)
}

/// A random connected planar graph: a triangulation whose non-tree edges
/// are kept with probability `keep`, with the embedding restricted
/// accordingly. Labels shuffled.
pub fn random_planar(n: usize, keep: f64, rng: &mut impl Rng) -> PlanarInstance {
    with_thread_scratch(|s| random_planar_with(n, keep, rng, s))
}

/// [`random_planar`] with an explicit [`TraversalScratch`], so repeated
/// generation (engine sweeps, benches) reuses traversal buffers. Draws the
/// same RNG sequence as [`random_planar`] for any given seed.
pub fn random_planar_with(
    n: usize,
    keep: f64,
    rng: &mut impl Rng,
    scratch: &mut TraversalScratch,
) -> PlanarInstance {
    let full = random_triangulation_unshuffled(n, rng);
    let tree = RootedForest::bfs_spanning_tree_with(&full.graph, 0, scratch);
    // Mark tree edges in one O(n) pass; the old per-edge `contains_edge`
    // probe was an O(n·m) scan. The RNG is still consulted exactly once per
    // non-tree edge, in edge-id order, so instances are seed-stable.
    let mut keep_edge = vec![false; full.graph.m()];
    for e in tree.edge_set() {
        keep_edge[e] = true;
    }
    for flag in keep_edge.iter_mut() {
        if !*flag {
            *flag = rng.gen_bool(keep);
        }
    }
    let (g, rho) = restrict_embedding(&full.graph, &full.rho, &keep_edge);
    finish_pair(g, rho, rng)
}

fn random_triangulation_unshuffled(n: usize, rng: &mut impl Rng) -> PlanarInstance {
    assert!(n >= 3);
    let mut b = TriangulationBuilder::new();
    while b.g.n() < n {
        let f = rng.gen_range(0..b.faces.len());
        b.insert_into_face(f);
    }
    let rho = RotationSystem::from_orders_trusted(&b.g, b.order);
    PlanarInstance { graph: b.g, rho }
}

/// Restricts `g` and its rotation system to the edges with
/// `keep_edge[e] == true`. Node set unchanged.
pub fn restrict_embedding(
    g: &Graph,
    rho: &RotationSystem,
    keep_edge: &[bool],
) -> (Graph, RotationSystem) {
    let mut h = Graph::new(g.n());
    let mut new_id = vec![usize::MAX; g.m()];
    for (e, edge) in g.edges().iter().enumerate() {
        if keep_edge[e] {
            new_id[e] = h.add_edge(edge.u, edge.v);
        }
    }
    let order: Vec<Vec<EdgeId>> = (0..g.n())
        .map(|v| rho.order_at(v).iter().filter(|&&e| keep_edge[e]).map(|&e| new_id[e]).collect())
        .collect();
    let rho2 = RotationSystem::from_orders_trusted(&h, order);
    (h, rho2)
}

fn finish(g: Graph, order: Vec<Vec<EdgeId>>, rng: &mut impl Rng) -> PlanarInstance {
    let rho = RotationSystem::from_orders_trusted(&g, order);
    finish_pair(g, rho, rng)
}

/// Shuffles node labels of an embedded instance.
fn finish_pair(g: Graph, rho: RotationSystem, rng: &mut impl Rng) -> PlanarInstance {
    let perm = random_permutation(g.n(), rng);
    let h = relabel(&g, &perm);
    // Edge ids are preserved by relabel; move each node's order to its new id.
    let mut order = vec![Vec::new(); h.n()];
    for v in 0..g.n() {
        order[perm[v]] = rho.order_at(v).to_vec();
    }
    let rho2 = RotationSystem::from_orders_trusted(&h, order);
    PlanarInstance { graph: h, rho: rho2 }
}

/// A planar instance with an *exact* maximum degree: a fan (hub joined to
/// a path of `delta` nodes, triangulating the polygon) padded with a tail
/// path to reach `n` nodes. The hub has degree exactly `delta`; every
/// other node has degree ≤ 3. Labels shuffled.
///
/// # Panics
/// Panics if `delta < 2` or `n < delta + 2`.
pub fn fan_planar(n: usize, delta: usize, rng: &mut impl Rng) -> PlanarInstance {
    assert!(delta >= 2 && n >= delta + 2);
    let mut g = Graph::new(1 + delta);
    let hub: NodeId = 0;
    // Path 1..=delta under the hub.
    let mut path_edges = Vec::new();
    for i in 1..delta {
        path_edges.push(g.add_edge(i, i + 1));
    }
    let spokes: Vec<EdgeId> = (1..=delta).map(|i| g.add_edge(hub, i)).collect();
    // Tail path from node `delta` to pad the node count.
    let mut tail_edges = Vec::new();
    let mut prev = delta;
    while g.n() < n {
        let v = g.add_node();
        tail_edges.push(g.add_edge(prev, v));
        prev = v;
    }
    // Rotation: hub sees the spokes in path order; path node i sees
    // [spoke, left-path, right-path] — i.e. walking around each triangle
    // (hub, i, i+1) consistently.
    let mut order: Vec<Vec<EdgeId>> = vec![Vec::new(); g.n()];
    // The hub sees the spokes in reverse path order so each triangle
    // (hub, i, i+1) closes as a face orbit.
    order[hub] = spokes.iter().rev().copied().collect();
    for i in 1..=delta {
        let mut o = vec![spokes[i - 1]];
        if i > 1 {
            o.push(path_edges[i - 2]); // edge to i-1
        }
        if i < delta {
            o.insert(1, path_edges[i - 1]); // edge to i+1, right after the spoke
        }
        if i == delta && !tail_edges.is_empty() {
            o.push(tail_edges[0]);
        }
        order[i] = o;
    }
    for (k, &e) in tail_edges.iter().enumerate() {
        let v = delta + 1 + k;
        order[v].push(e);
        if k + 1 < tail_edges.len() {
            order[v].push(tail_edges[k + 1]);
        }
    }
    let rho = RotationSystem::from_orders_trusted(&g, order);
    debug_assert!(rho.is_planar_embedding(&g), "fan rotation must be planar");
    finish_pair(g, rho, rng)
}

/// An *invalid-embedding* instance: a valid planar embedding with one
/// node's rotation scrambled until the Euler-genus defect is positive.
/// The graph itself remains planar — only the given embedding is wrong —
/// which is exactly the no-instance family of the planar-embedding task.
pub fn scrambled_embedding(n: usize, rng: &mut impl Rng) -> PlanarInstance {
    loop {
        let mut inst = random_triangulation(n.max(5), rng);
        for _attempt in 0..50 {
            let v = rng.gen_range(0..inst.graph.n());
            let d = inst.graph.degree(v);
            if d < 4 {
                continue;
            }
            let i = rng.gen_range(0..d);
            let j = rng.gen_range(0..d);
            if i == j {
                continue;
            }
            let mut rho = inst.rho.clone();
            rho.swap_positions(v, i, j);
            if !rho.is_planar_embedding(&inst.graph) {
                inst.rho = rho;
                return inst;
            }
        }
        // Extremely unlikely: retry with a fresh triangulation.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planarity::is_planar;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn triangulations_are_maximal_planar_with_valid_embedding() {
        let mut rng = SmallRng::seed_from_u64(11);
        for n in [3usize, 4, 5, 10, 50, 200] {
            let inst = random_triangulation(n, &mut rng);
            assert_eq!(inst.graph.n(), n);
            assert_eq!(inst.graph.m(), 3 * n - 6);
            assert!(inst.rho.is_planar_embedding(&inst.graph), "n = {n}");
            assert!(is_planar(&inst.graph));
        }
    }

    #[test]
    fn planted_degree_reached() {
        let mut rng = SmallRng::seed_from_u64(12);
        for target in [5usize, 12, 30] {
            let inst = triangulation_with_degree(80, target, &mut rng);
            assert!(inst.graph.max_degree() >= target, "target = {target}");
            assert!(inst.rho.is_planar_embedding(&inst.graph));
        }
    }

    #[test]
    fn random_planar_is_planar_connected_embedded() {
        let mut rng = SmallRng::seed_from_u64(13);
        for keep in [0.0, 0.3, 0.8] {
            let inst = random_planar(60, keep, &mut rng);
            assert!(inst.graph.is_connected());
            assert!(is_planar(&inst.graph));
            assert!(inst.rho.is_planar_embedding(&inst.graph), "keep = {keep}");
        }
    }

    #[test]
    fn scrambled_embedding_is_invalid_but_planar_graph() {
        let mut rng = SmallRng::seed_from_u64(14);
        let inst = scrambled_embedding(40, &mut rng);
        assert!(!inst.rho.is_planar_embedding(&inst.graph));
        assert!(is_planar(&inst.graph));
    }

    #[test]
    fn fan_has_exact_degree_and_valid_embedding() {
        let mut rng = SmallRng::seed_from_u64(16);
        for (n, delta) in [(10usize, 4usize), (50, 12), (300, 128)] {
            let inst = fan_planar(n, delta, &mut rng);
            assert_eq!(inst.graph.n(), n);
            assert_eq!(inst.graph.max_degree(), delta, "n={n} delta={delta}");
            assert!(inst.rho.is_planar_embedding(&inst.graph), "n={n} delta={delta}");
            assert!(inst.graph.is_connected());
        }
    }

    #[test]
    fn restriction_keeps_embedding_valid() {
        let mut rng = SmallRng::seed_from_u64(15);
        let inst = random_triangulation(30, &mut rng);
        // Keep every edge: identity restriction.
        let all = vec![true; inst.graph.m()];
        let (h, rho) = restrict_embedding(&inst.graph, &inst.rho, &all);
        assert_eq!(h.m(), inst.graph.m());
        assert!(rho.is_planar_embedding(&h));
    }
}
