//! Structured no-instances for each graph family.
//!
//! Each constructor plants the canonical obstruction of its family inside a
//! host graph that otherwise *belongs* to the family, so soundness
//! experiments exercise protocols on adversarially "almost-yes" inputs:
//!
//! * planarity — a `K5` or `K3,3` subdivision spliced into a planar host;
//! * outerplanarity — two crossing chords in a polygon (a `K4` minor) or a
//!   planted `K2,3` subdivision; the graph stays planar;
//! * path-outerplanarity — additionally graphs with no Hamiltonian path;
//! * series-parallel / treewidth ≤ 2 — a planted `K4` subdivision.

use super::{random_permutation, relabel};
use crate::graph::{Graph, NodeId};
use crate::scratch::{with_thread_scratch, TraversalScratch};
use rand::Rng;

/// Splices a subdivided `K5` (if `use_k5`) or `K3,3` into a random planar
/// host: the branch nodes are fresh, each branch path has `sub ≥ 0` inner
/// subdivision nodes, and the gadget is connected to the host by one edge.
/// The result is connected and non-planar.
pub fn nonplanar_with_gadget(host_n: usize, sub: usize, use_k5: bool, rng: &mut impl Rng) -> Graph {
    with_thread_scratch(|s| nonplanar_with_gadget_with(host_n, sub, use_k5, rng, s))
}

/// [`nonplanar_with_gadget`] with an explicit [`TraversalScratch`] for the
/// planar-host generation. Same RNG sequence, same instances.
pub fn nonplanar_with_gadget_with(
    host_n: usize,
    sub: usize,
    use_k5: bool,
    rng: &mut impl Rng,
    scratch: &mut TraversalScratch,
) -> Graph {
    let host = super::planar::random_planar_with(host_n.max(4), 0.4, rng, scratch).graph;
    let mut g = host.clone();
    let branch: Vec<NodeId> = (0..if use_k5 { 5 } else { 6 }).map(|_| g.add_node()).collect();
    let pairs: Vec<(usize, usize)> = if use_k5 {
        (0..5).flat_map(|u| ((u + 1)..5).map(move |v| (u, v))).collect()
    } else {
        (0..3).flat_map(|u| (3..6).map(move |v| (u, v))).collect()
    };
    for (a, b) in pairs {
        let mut prev = branch[a];
        for _ in 0..sub {
            let mid = g.add_node();
            g.add_edge(prev, mid);
            prev = mid;
        }
        g.add_edge(prev, branch[b]);
    }
    // Connect the gadget to the host.
    let hook = rng.gen_range(0..host.n());
    g.add_edge(hook, branch[0]);
    let perm = random_permutation(g.n(), rng);
    relabel(&g, &perm)
}

/// A planar but non-outerplanar graph: an outerplanar host whose largest
/// block gets two crossing chords (forming a `K4` minor on the block's
/// cycle). Stays planar.
pub fn planar_not_outerplanar(n: usize, rng: &mut impl Rng) -> Graph {
    assert!(n >= 6);
    // A single polygon block with two crossing chords.
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    // Crossing chords (a, c) and (b, d) with a < b < c < d.
    let a = 0;
    let b = rng.gen_range(1..n / 2);
    let c = rng.gen_range(b + 1..n - 1);
    let d = rng.gen_range(c + 1..n);
    for (x, y) in [(a, c), (b, d)] {
        if !g.has_edge(x, y) {
            g.add_edge(x, y);
        }
    }
    let perm = random_permutation(n, rng);
    relabel(&g, &perm)
}

/// An outerplanar graph with no Hamiltonian path: three polygon blocks
/// glued at one shared cut node (the block–cut tree branches).
pub fn outerplanar_no_hamiltonian_path(block: usize, rng: &mut impl Rng) -> Graph {
    assert!(block >= 3);
    let mut g = Graph::new(1); // node 0 is the shared cut node
    for _ in 0..3 {
        let base = g.n();
        for _ in 0..block - 1 {
            g.add_node();
        }
        // Cycle: 0, base, base+1, ..., base+block-2.
        let cyc: Vec<NodeId> = std::iter::once(0).chain(base..base + block - 1).collect();
        for i in 0..cyc.len() {
            g.add_edge(cyc[i], cyc[(i + 1) % cyc.len()]);
        }
    }
    let perm = random_permutation(g.n(), rng);
    relabel(&g, &perm)
}

/// A connected graph with a planted subdivided `K4` inside a treewidth ≤ 2
/// host: not series-parallel and treewidth ≥ 3.
pub fn tw2_violator(host_blocks: usize, sub: usize, rng: &mut impl Rng) -> Graph {
    let host = super::sp::random_treewidth2(host_blocks.max(1), 4, rng).graph;
    let mut g = host.clone();
    let branch: Vec<NodeId> = (0..4).map(|_| g.add_node()).collect();
    for a in 0..4 {
        for b in (a + 1)..4 {
            let mut prev = branch[a];
            for _ in 0..sub {
                let mid = g.add_node();
                g.add_edge(prev, mid);
                prev = mid;
            }
            g.add_edge(prev, branch[b]);
        }
    }
    let hook = rng.gen_range(0..host.n());
    g.add_edge(hook, branch[0]);
    let perm = random_permutation(g.n(), rng);
    relabel(&g, &perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outerplanar::{is_outerplanar, is_path_outerplanar};
    use crate::planarity::is_planar;
    use crate::series_parallel::{is_series_parallel, is_treewidth_at_most_2};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gadgets_are_nonplanar_connected() {
        let mut rng = SmallRng::seed_from_u64(41);
        for use_k5 in [true, false] {
            for sub in [0usize, 1, 3] {
                let g = nonplanar_with_gadget(20, sub, use_k5, &mut rng);
                assert!(g.is_connected());
                assert!(!is_planar(&g), "k5={use_k5} sub={sub}");
            }
        }
    }

    #[test]
    fn crossing_chords_not_outerplanar_but_planar() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            let g = planar_not_outerplanar(12, &mut rng);
            assert!(is_planar(&g));
            assert!(!is_outerplanar(&g));
        }
    }

    #[test]
    fn branching_blocks_kill_hamiltonian_path() {
        let mut rng = SmallRng::seed_from_u64(43);
        let g = outerplanar_no_hamiltonian_path(4, &mut rng);
        assert!(is_outerplanar(&g));
        assert!(!is_path_outerplanar(&g));
    }

    #[test]
    fn k4_gadget_breaks_tw2() {
        let mut rng = SmallRng::seed_from_u64(44);
        for sub in [0usize, 2] {
            let g = tw2_violator(3, sub, &mut rng);
            assert!(g.is_connected());
            assert!(!is_series_parallel(&g));
            assert!(!is_treewidth_at_most_2(&g), "sub={sub}");
        }
    }
}
