//! Random instance generators for the paper's six graph families, plus
//! structured no-instances.
//!
//! Every generator returns the instance together with the witness the
//! honest prover needs (Hamiltonian path, rotation system, outer cycle …).
//! Instance *classification* never trusts the witness: tests re-certify
//! generated yes-instances with the recognizers in this crate and certify
//! no-instances by their violated property.

pub mod lr;
pub mod no_instances;
pub mod outerplanar;
pub mod planar;
pub mod sp;
pub mod stream;

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, rng: &mut impl Rng) -> Vec<NodeId> {
    let mut p: Vec<NodeId> = (0..n).collect();
    p.shuffle(rng);
    p
}

/// Relabels the nodes of `g` through `perm` (`new_id = perm[old_id]`),
/// preserving edge ids and per-edge endpoint order.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..g.n()`.
pub fn relabel(g: &Graph, perm: &[NodeId]) -> Graph {
    assert_eq!(perm.len(), g.n());
    let mut seen = vec![false; g.n()];
    for &p in perm {
        assert!(p < g.n() && !seen[p], "perm is not a permutation");
        seen[p] = true;
    }
    let mut h = Graph::new(g.n());
    for e in g.edges() {
        h.add_edge(perm[e.u], perm[e.v]);
    }
    h
}

/// Applies `perm` to a node sequence (e.g. a witness path).
pub fn relabel_nodes(nodes: &[NodeId], perm: &[NodeId]) -> Vec<NodeId> {
    nodes.iter().map(|&v| perm[v]).collect()
}

/// A laminar (properly nested) family of arcs over positions `lo..hi` of a
/// path, generated recursively. Arcs are pairs `(i, j)` with `i + 1 < j`.
/// `density` in `[0, 1]` controls how many arcs appear.
pub fn laminar_arcs(
    lo: usize,
    hi: usize,
    density: f64,
    rng: &mut impl Rng,
    out: &mut Vec<(usize, usize)>,
) {
    if hi - lo < 2 {
        return;
    }
    if rng.gen_bool(density) {
        out.push((lo, hi));
    }
    let mid = rng.gen_range(lo + 1..hi);
    if rng.gen_bool(0.9) {
        laminar_arcs(lo, mid, density, rng, out);
    }
    if rng.gen_bool(0.9) {
        laminar_arcs(mid, hi, density, rng, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn permutation_is_valid() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = random_permutation(20, &mut rng);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn relabel_preserves_structure() {
        let mut rng = SmallRng::seed_from_u64(8);
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        let p = random_permutation(4, &mut rng);
        let h = relabel(&g, &p);
        assert_eq!(h.m(), g.m());
        for e in g.edges() {
            assert!(h.has_edge(p[e.u], p[e.v]));
        }
    }

    #[test]
    fn laminar_arcs_nest() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..50 {
            let mut arcs = Vec::new();
            laminar_arcs(0, 30, 0.8, &mut rng, &mut arcs);
            for (i, &(a, b)) in arcs.iter().enumerate() {
                for &(c, d) in &arcs[i + 1..] {
                    let cross = (a < c && c < b && b < d) || (c < a && a < d && d < b);
                    assert!(!cross, "arcs ({a},{b}) and ({c},{d}) cross");
                }
            }
        }
    }
}
