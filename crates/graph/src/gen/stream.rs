//! Streaming block-structured instance generation with bounded memory.
//!
//! The monolithic generators ([`super::planar::random_planar`],
//! [`super::no_instances::nonplanar_with_gadget`]) materialize the whole
//! instance, which caps experiments near n = 10⁵. This module grows the
//! instance as a tree of biconnected blocks glued at cut vertices — the
//! block–cut tree is *chosen by the generator* instead of recovered by
//! Hopcroft–Tarjan — and emits it one block ("shard") at a time:
//!
//! * **O(#blocks) skeleton.** [`StreamSkeleton`] holds one small
//!   [`BlockMeta`] per block (size, parent, attachment node, global base
//!   id), derived from a dedicated skeleton RNG stream. Nothing of size
//!   O(n) is ever allocated by the skeleton.
//! * **Pure shards.** [`StreamSkeleton::shard`] is a pure function of
//!   `(spec, i)`: shard `i` draws from its own seed
//!   `job_seed(sub_seed(seed, LABEL_SHARDS), i)`, so shards can be
//!   generated out of order, in parallel, or twice — byte-identically.
//!   Each planar shard *is* the monolithic [`random_planar_with`] output
//!   at its block seed; the gadget shard is the monolithic
//!   [`nonplanar_with_gadget_with`] output.
//! * **Concatenation = monolith.** [`StreamSkeleton::materialize`]
//!   assembles the full graph by appending each shard's edges in shard
//!   order, so the global edge-id space is the concatenation of the
//!   shards' local ones, and [`StreamSkeleton::extract_shard`] recovers
//!   every shard from the materialized instance byte-for-byte (the
//!   contract `extract_shard(materialize(spec), i) == shard(i)` is
//!   pinned by tests and audited by the E11 driver at overlapping
//!   sizes).
//!
//! Rotation systems glue soundly: at a cut vertex the global rotation is
//! the concatenation of the incident blocks' rotations, each kept
//! contiguous, which realizes the one-point union of the blocks'
//! embeddings — Euler genus adds over blocks, so the glued embedding is
//! planar iff every block's is.
//!
//! [`random_planar_with`]: super::planar::random_planar_with
//! [`nonplanar_with_gadget_with`]: super::no_instances::nonplanar_with_gadget_with

use super::no_instances::nonplanar_with_gadget_with;
use super::planar::random_planar_with;
use crate::embedding::RotationSystem;
use crate::graph::{EdgeId, Graph, NodeId};
use crate::scratch::{with_thread_scratch, TraversalScratch};
use crate::seed::{job_seed, sub_seed};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sub-seed label of the skeleton RNG stream.
const LABEL_SKELETON: u64 = 0x51;
/// Sub-seed label of the per-shard seed stream.
const LABEL_SHARDS: u64 = 0x52;

/// Smallest block the generator will emit (the planar block generator
/// needs ≥ 4 nodes; trailing remainders below this are folded into the
/// previous block).
const MIN_BLOCK: usize = 5;

/// Node overhead of the planted gadget at `sub = 1`: K5 adds 5 branch
/// nodes + 10 subdivision nodes, K3,3 adds 6 + 9 — fifteen either way,
/// so a gadget block's size is exact regardless of the obstruction.
const GADGET_OVERHEAD: usize = 15;

/// Smallest block that can host the gadget (host ≥ MIN_BLOCK).
const GADGET_MIN_BLOCK: usize = MIN_BLOCK + GADGET_OVERHEAD;

/// What the stream generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Every block is a random connected planar graph with witness
    /// embedding; the glued instance is planar.
    Planar,
    /// One skeleton-chosen block carries a planted `K5` (if `use_k5`)
    /// or `K3,3` subdivision; the glued instance is non-planar.
    NonplanarGadget {
        /// `K5` vs `K3,3` obstruction.
        use_k5: bool,
    },
}

/// Parameters of one streamed instance.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// Total node count (clamped up to one block minimum).
    pub n: usize,
    /// Target nodes per block (clamped to ≥ [`GADGET_MIN_BLOCK`] + 1 so
    /// every mode fits).
    pub shard_n: usize,
    /// Keep probability for non-tree edges inside each planar block.
    pub keep: f64,
    /// Base seed; skeleton and every shard derive labelled sub-streams.
    pub seed: u64,
    /// Planar vs planted-obstruction stream.
    pub mode: StreamMode,
}

/// Skeleton entry for one block: everything needed to place the block in
/// the global id space without looking at any other block's content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Local node count of the block.
    pub size: usize,
    /// Parent block index (self for block 0).
    pub parent: usize,
    /// Global id of the cut node shared with the parent (block 0: 0).
    pub attach: NodeId,
    /// Global id of local node 1 (local node 0 maps to `attach` for
    /// blocks > 0; block 0 maps local v to global v directly).
    pub base: NodeId,
}

/// One emitted shard: a block-local instance plus its gluing data.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Block index in the stream.
    pub index: usize,
    /// The block graph on local labels `0..size`.
    pub graph: Graph,
    /// The block's witness embedding (planar blocks only).
    pub rho: Option<RotationSystem>,
    /// Ground truth: whether this block is planar.
    pub planar: bool,
}

/// The materialized (monolithic) instance a stream concatenates to.
#[derive(Debug, Clone)]
pub struct StreamInstance {
    /// The glued graph.
    pub graph: Graph,
    /// The glued witness embedding (planar mode only).
    pub rho: Option<RotationSystem>,
    /// Ground truth of the glued instance.
    pub planar: bool,
}

/// The O(#blocks) block–cut tree skeleton of a streamed instance.
#[derive(Debug, Clone)]
pub struct StreamSkeleton {
    /// The generating parameters (with clamps applied).
    pub spec: StreamSpec,
    /// Per-block metadata, in stream order.
    pub blocks: Vec<BlockMeta>,
    /// Total node count of the glued instance (= `spec.n` after clamps).
    pub total_n: usize,
    /// Index of the gadget block (non-planar mode only).
    pub gadget_block: Option<usize>,
}

impl StreamSkeleton {
    /// Builds the skeleton: block sizes, tree shape and attachment nodes.
    /// Costs O(#blocks) time and memory; consults only the skeleton RNG
    /// stream (`sub_seed(seed, LABEL_SKELETON)`), never a shard's.
    pub fn new(spec: StreamSpec) -> Self {
        let mut spec = spec;
        spec.shard_n = spec.shard_n.max(GADGET_MIN_BLOCK + 1);
        spec.n = spec.n.max(spec.shard_n.min(GADGET_MIN_BLOCK + 1));
        let mut skel_rng = SmallRng::seed_from_u64(sub_seed(spec.seed, LABEL_SKELETON));

        // Block sizes: first block absorbs up to shard_n nodes, every
        // further block shares one node (its attachment) with the tree
        // built so far, so it contributes size - 1 fresh nodes.
        let mut sizes = vec![spec.n.min(spec.shard_n)];
        let mut remaining = spec.n - sizes[0];
        while remaining > 0 {
            let s = (remaining + 1).min(spec.shard_n);
            if s < MIN_BLOCK {
                // Fold a tiny trailing remainder into the previous block.
                *sizes.last_mut().expect("at least one block") += remaining;
                remaining = 0;
            } else {
                sizes.push(s);
                remaining -= s - 1;
            }
        }

        // Tree shape + global id layout. Global ids are dense: block 0
        // owns [0, size_0); block i > 0 owns [base_i, base_i + size_i - 1)
        // plus its attachment node, which lives in an earlier block.
        let mut blocks: Vec<BlockMeta> = Vec::with_capacity(sizes.len());
        let mut next_global = 0usize;
        for (i, &size) in sizes.iter().enumerate() {
            if i == 0 {
                blocks.push(BlockMeta { size, parent: 0, attach: 0, base: 1 });
                next_global = size;
                continue;
            }
            let parent = skel_rng.gen_range(0..i);
            let a = skel_rng.gen_range(0..blocks[parent].size);
            let attach = global_of(&blocks, parent, a);
            blocks.push(BlockMeta { size, parent, attach, base: next_global });
            next_global += size - 1;
        }
        debug_assert_eq!(next_global, spec.n);

        let gadget_block = match spec.mode {
            StreamMode::Planar => None,
            StreamMode::NonplanarGadget { .. } => {
                let eligible: Vec<usize> =
                    (0..blocks.len()).filter(|&i| blocks[i].size >= GADGET_MIN_BLOCK).collect();
                assert!(!eligible.is_empty(), "no block large enough for the gadget (n too small)");
                Some(eligible[skel_rng.gen_range(0..eligible.len())])
            }
        };
        StreamSkeleton { spec, blocks, total_n: spec.n, gadget_block }
    }

    /// Number of shards the stream emits.
    pub fn shard_count(&self) -> usize {
        self.blocks.len()
    }

    /// Maps local node `v` of block `i` to its global id.
    pub fn to_global(&self, i: usize, v: NodeId) -> NodeId {
        global_of(&self.blocks, i, v)
    }

    /// The global node ids of block `i`: attachment first (blocks > 0),
    /// then the block-owned range — i.e. `to_global(i, v)` for local
    /// `v = 0..size`.
    pub fn shard_globals(&self, i: usize) -> Vec<NodeId> {
        (0..self.blocks[i].size).map(|v| self.to_global(i, v)).collect()
    }

    /// Generates shard `i` — a pure function of `(spec, i)`.
    pub fn shard(&self, i: usize) -> Shard {
        with_thread_scratch(|s| self.shard_with(i, s))
    }

    /// [`StreamSkeleton::shard`] with an explicit scratch, for callers
    /// that stream many shards (the E11 driver, the materializer).
    pub fn shard_with(&self, i: usize, scratch: &mut TraversalScratch) -> Shard {
        let meta = self.blocks[i];
        let mut rng =
            SmallRng::seed_from_u64(job_seed(sub_seed(self.spec.seed, LABEL_SHARDS), i as u64));
        match (self.spec.mode, self.gadget_block) {
            (StreamMode::NonplanarGadget { use_k5 }, Some(g)) if g == i => {
                let graph = nonplanar_with_gadget_with(
                    meta.size - GADGET_OVERHEAD,
                    1,
                    use_k5,
                    &mut rng,
                    scratch,
                );
                debug_assert_eq!(graph.n(), meta.size);
                Shard { index: i, graph, rho: None, planar: false }
            }
            _ => {
                let inst = random_planar_with(meta.size, self.spec.keep, &mut rng, scratch);
                Shard { index: i, graph: inst.graph, rho: Some(inst.rho), planar: true }
            }
        }
    }

    /// Assembles the full instance by concatenating the shards in stream
    /// order: block `i`'s edges occupy a contiguous global edge-id range,
    /// and at every cut node the incident blocks' rotations are spliced
    /// as contiguous runs (block order). Memory is O(n) — this is the
    /// monolithic path, used at overlap sizes to certify the stream.
    pub fn materialize(&self) -> StreamInstance {
        with_thread_scratch(|s| self.materialize_with(s))
    }

    /// [`StreamSkeleton::materialize`] with an explicit scratch.
    pub fn materialize_with(&self, scratch: &mut TraversalScratch) -> StreamInstance {
        let mut g = Graph::new(self.total_n);
        let planar_mode = matches!(self.spec.mode, StreamMode::Planar);
        let mut order: Vec<Vec<EdgeId>> =
            if planar_mode { vec![Vec::new(); self.total_n] } else { Vec::new() };
        for i in 0..self.shard_count() {
            let shard = self.shard_with(i, scratch);
            let edge_base = g.m();
            for e in shard.graph.edges() {
                g.add_edge(self.to_global(i, e.u), self.to_global(i, e.v));
            }
            if planar_mode {
                let rho = shard.rho.as_ref().expect("planar mode shards carry a witness");
                for v in 0..shard.graph.n() {
                    let gv = self.to_global(i, v);
                    order[gv].extend(rho.order_at(v).iter().map(|&e| e + edge_base));
                }
            }
        }
        let rho =
            if planar_mode { Some(RotationSystem::from_orders_trusted(&g, order)) } else { None };
        StreamInstance { graph: g, rho, planar: planar_mode }
    }

    /// Recovers shard `i` from a materialized instance: its edges are
    /// exactly the global edges with both endpoints inside the block's
    /// node set (two blocks share at most one node, so no foreign edge
    /// qualifies), taken in ascending global edge id — which is the
    /// stream's local edge order. The shard's rotation is the global
    /// rotation filtered to block edges. Byte-identity with
    /// [`StreamSkeleton::shard`] is the streaming contract.
    pub fn extract_shard(&self, inst: &StreamInstance, i: usize) -> Shard {
        let meta = self.blocks[i];
        let size = meta.size;
        // local id of each block-global node, keyed by global id.
        let globals = self.shard_globals(i);
        let local_of = |gv: NodeId| -> Option<NodeId> {
            if i > 0 && gv == meta.attach {
                Some(0)
            } else {
                let lo = if i == 0 { meta.attach } else { meta.base };
                let shift = usize::from(i > 0);
                (gv >= lo && gv < lo + size - shift).then(|| gv - lo + shift)
            }
        };
        let mut graph = Graph::new(size);
        let mut block_edges: Vec<EdgeId> = Vec::new();
        for (ge, e) in inst.graph.edges().iter().enumerate() {
            if let (Some(u), Some(v)) = (local_of(e.u), local_of(e.v)) {
                graph.add_edge(u, v);
                block_edges.push(ge);
            }
        }
        let rho = inst.rho.as_ref().map(|rho| {
            let order: Vec<Vec<EdgeId>> = globals
                .iter()
                .map(|&gv| {
                    rho.order_at(gv)
                        .iter()
                        .filter_map(|ge| block_edges.binary_search(ge).ok())
                        .collect()
                })
                .collect();
            RotationSystem::from_orders_trusted(&graph, order)
        });
        let planar = self.gadget_block != Some(i);
        Shard { index: i, graph, rho, planar }
    }
}

/// Maps local node `v` of block `i` to its global id (see [`BlockMeta`]).
fn global_of(blocks: &[BlockMeta], i: usize, v: NodeId) -> NodeId {
    let meta = blocks[i];
    debug_assert!(v < meta.size);
    if i == 0 {
        v
    } else if v == 0 {
        meta.attach
    } else {
        meta.base + v - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planarity::is_planar;

    fn planar_spec(n: usize, shard_n: usize, seed: u64) -> StreamSpec {
        StreamSpec { n, shard_n, keep: 0.5, seed, mode: StreamMode::Planar }
    }

    /// Byte-identity check. `a` is the extracted shard, `b` the streamed
    /// one; in gadget mode the materialized instance carries no global
    /// rotation, so extraction yields `rho: None` for every shard and
    /// the rotation half of the contract applies to planar mode only.
    fn assert_shards_equal(a: &Shard, b: &Shard) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.graph.n(), b.graph.n(), "shard {}", a.index);
        assert_eq!(a.graph.edges(), b.graph.edges(), "shard {}", a.index);
        assert_eq!(a.planar, b.planar);
        if let (Some(x), Some(y)) = (&a.rho, &b.rho) {
            for v in 0..a.graph.n() {
                assert_eq!(x.order_at(v), y.order_at(v), "shard {} node {v}", a.index);
            }
        }
    }

    #[test]
    fn skeleton_is_small_and_covers_n() {
        let skel = StreamSkeleton::new(planar_spec(10_000, 64, 7));
        let fresh: usize =
            skel.blocks[0].size + skel.blocks[1..].iter().map(|b| b.size - 1).sum::<usize>();
        assert_eq!(fresh, 10_000);
        assert_eq!(skel.total_n, 10_000);
        assert!(skel.shard_count() > 100, "expected many blocks at shard_n=64");
        for (i, b) in skel.blocks.iter().enumerate().skip(1) {
            assert!(b.parent < i, "parent must precede child");
            assert!(b.attach < b.base, "attachment lives in an earlier block");
        }
    }

    #[test]
    fn shards_are_pure_and_order_independent() {
        let skel = StreamSkeleton::new(planar_spec(600, 64, 11));
        let forward: Vec<Shard> = (0..skel.shard_count()).map(|i| skel.shard(i)).collect();
        for i in (0..skel.shard_count()).rev() {
            assert_shards_equal(&skel.shard(i), &forward[i]);
        }
    }

    #[test]
    fn materialize_matches_extracted_shards_byte_for_byte() {
        for seed in [1u64, 2, 3] {
            let skel = StreamSkeleton::new(planar_spec(700, 96, seed));
            let inst = skel.materialize();
            assert_eq!(inst.graph.n(), skel.total_n);
            for i in 0..skel.shard_count() {
                let extracted = skel.extract_shard(&inst, i);
                assert!(extracted.rho.is_some(), "planar-mode extraction keeps the witness");
                assert_shards_equal(&extracted, &skel.shard(i));
            }
        }
    }

    #[test]
    fn glued_planar_instance_is_planar_connected_embedded() {
        let skel = StreamSkeleton::new(planar_spec(900, 80, 5));
        let inst = skel.materialize();
        assert!(inst.planar);
        assert!(inst.graph.is_connected());
        assert!(is_planar(&inst.graph));
        let rho = inst.rho.as_ref().expect("planar mode carries a witness");
        assert!(rho.is_planar_embedding(&inst.graph), "glued rotation must stay planar");
    }

    #[test]
    fn every_planar_shard_carries_a_valid_witness() {
        let skel = StreamSkeleton::new(planar_spec(500, 64, 9));
        for i in 0..skel.shard_count() {
            let s = skel.shard(i);
            assert!(s.planar);
            assert!(s.graph.is_connected());
            let rho = s.rho.as_ref().expect("planar shard witness");
            assert!(rho.is_planar_embedding(&s.graph), "shard {i}");
        }
    }

    #[test]
    fn gadget_mode_is_nonplanar_with_one_bad_block() {
        for use_k5 in [true, false] {
            let spec = StreamSpec {
                n: 800,
                shard_n: 64,
                keep: 0.5,
                seed: 13,
                mode: StreamMode::NonplanarGadget { use_k5 },
            };
            let skel = StreamSkeleton::new(spec);
            let g = skel.gadget_block.expect("gadget block chosen");
            assert!(skel.blocks[g].size >= GADGET_MIN_BLOCK);
            let inst = skel.materialize();
            assert!(!inst.planar);
            assert!(inst.graph.is_connected());
            assert!(!is_planar(&inst.graph), "use_k5={use_k5}");
            for i in 0..skel.shard_count() {
                let s = skel.shard(i);
                assert_eq!(s.planar, i != g);
                assert_eq!(is_planar(&s.graph), i != g, "shard {i}");
                // Extraction round-trips in gadget mode too.
                assert_shards_equal(&skel.extract_shard(&inst, i), &s);
            }
        }
    }

    #[test]
    fn shard_sizes_respect_target_and_minimum() {
        for n in [30usize, 97, 256, 1001] {
            let skel = StreamSkeleton::new(planar_spec(n, 40, 3));
            for b in &skel.blocks {
                assert!(b.size >= MIN_BLOCK.min(n), "n={n}: block too small ({})", b.size);
                // The fold-in of a tiny trailing remainder may exceed the
                // target by at most MIN_BLOCK - 1.
                assert!(b.size <= 40.max(GADGET_MIN_BLOCK + 1) + MIN_BLOCK, "n={n}");
            }
        }
    }

    #[test]
    fn global_ids_are_a_partition_plus_shared_cut_nodes() {
        let skel = StreamSkeleton::new(planar_spec(400, 48, 21));
        let mut owner = vec![usize::MAX; skel.total_n];
        for i in 0..skel.shard_count() {
            for v in 0..skel.blocks[i].size {
                let gv = skel.to_global(i, v);
                assert!(gv < skel.total_n);
                if i > 0 && v == 0 {
                    assert!(owner[gv] != usize::MAX, "attachment must already exist");
                } else {
                    assert_eq!(owner[gv], usize::MAX, "fresh node owned twice");
                    owner[gv] = i;
                }
            }
        }
        assert!(owner.iter().all(|&o| o != usize::MAX), "every global id owned");
    }
}
