//! Generators for series-parallel and treewidth ≤ 2 instances.

use super::{random_permutation, relabel};
use crate::graph::{Graph, NodeId};
use rand::Rng;

/// A series-parallel instance (two-terminal, connected).
#[derive(Debug, Clone)]
pub struct SpInstance {
    /// The instance graph.
    pub graph: Graph,
    /// The two terminals of the outermost composition.
    pub terminals: (NodeId, NodeId),
}

/// A random two-terminal series-parallel graph with roughly `size` edges,
/// grown by recursive random series/parallel composition. Simplicity is
/// guaranteed by never emitting two parallel unit edges over the same
/// terminal pair. Labels shuffled.
///
/// # Panics
/// Panics if `size == 0`.
pub fn random_series_parallel(size: usize, rng: &mut impl Rng) -> SpInstance {
    assert!(size > 0);
    let mut g = Graph::new(2);
    let mut used_pairs = std::collections::HashSet::new();
    build(&mut g, &mut used_pairs, 0, 1, size, rng);
    let perm = random_permutation(g.n(), rng);
    let graph = relabel(&g, &perm);
    SpInstance { graph, terminals: (perm[0], perm[1]) }
}

fn build(
    g: &mut Graph,
    used: &mut std::collections::HashSet<(NodeId, NodeId)>,
    s: NodeId,
    t: NodeId,
    size: usize,
    rng: &mut impl Rng,
) {
    if size <= 1 {
        let key = (s.min(t), s.max(t));
        if used.insert(key) {
            g.add_edge(s, t);
        } else {
            // The direct edge exists: emit a 2-path instead (still SP).
            let mid = g.add_node();
            g.add_edge(s, mid);
            g.add_edge(mid, t);
        }
        return;
    }
    let k = rng.gen_range(1..size);
    if rng.gen_bool(0.5) {
        // Series composition through a fresh middle node.
        let mid = g.add_node();
        build(g, used, s, mid, k, rng);
        build(g, used, mid, t, size - k, rng);
    } else {
        // Parallel composition over the same terminals.
        build(g, used, s, t, k, rng);
        build(g, used, s, t, size - k, rng);
    }
}

/// A treewidth ≤ 2 instance.
#[derive(Debug, Clone)]
pub struct Treewidth2Instance {
    /// The instance graph.
    pub graph: Graph,
}

/// A random connected treewidth ≤ 2 graph: a *tree* of series-parallel
/// blocks glued at cut nodes (branching allowed, so the result is usually
/// not two-terminal series-parallel itself). Labels shuffled.
pub fn random_treewidth2(
    blocks: usize,
    block_size: usize,
    rng: &mut impl Rng,
) -> Treewidth2Instance {
    assert!(blocks >= 1 && block_size >= 1);
    let mut g = Graph::new(0);
    for b in 0..blocks {
        let inst = random_series_parallel(block_size.max(1), rng);
        let attach = if b == 0 { None } else { Some(rng.gen_range(0..g.n())) };
        let base = g.n();
        // Glue terminal `terminals.0` of the block onto the attachment node.
        let glue_local = inst.terminals.0;
        let to_global = |local: NodeId| -> NodeId {
            match attach {
                None => base + local,
                Some(a) => {
                    if local == glue_local {
                        a
                    } else if local < glue_local {
                        base + local
                    } else {
                        base + local - 1
                    }
                }
            }
        };
        let fresh = inst.graph.n() - usize::from(attach.is_some());
        for _ in 0..fresh {
            g.add_node();
        }
        for e in inst.graph.edges() {
            let (a, b) = (to_global(e.u), to_global(e.v));
            if !g.has_edge(a, b) {
                g.add_edge(a, b);
            }
        }
    }
    let perm = random_permutation(g.n(), rng);
    Treewidth2Instance { graph: relabel(&g, &perm) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series_parallel::{is_series_parallel, is_treewidth_at_most_2};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sp_instances_are_sp() {
        let mut rng = SmallRng::seed_from_u64(21);
        for size in [1usize, 2, 3, 8, 40, 150] {
            for _ in 0..5 {
                let inst = random_series_parallel(size, &mut rng);
                assert!(inst.graph.is_connected());
                assert!(is_series_parallel(&inst.graph), "size = {size}");
            }
        }
    }

    #[test]
    fn tw2_instances_are_tw2() {
        let mut rng = SmallRng::seed_from_u64(22);
        for (blocks, bs) in [(1usize, 10usize), (3, 6), (8, 4), (5, 1)] {
            for _ in 0..5 {
                let inst = random_treewidth2(blocks, bs, &mut rng);
                assert!(inst.graph.is_connected());
                assert!(is_treewidth_at_most_2(&inst.graph), "{blocks} x {bs}");
            }
        }
    }

    #[test]
    fn branching_tw2_often_not_ttsp() {
        let mut rng = SmallRng::seed_from_u64(23);
        // With many blocks, at least one instance should not be TTSP.
        let mut saw_non_ttsp = false;
        for _ in 0..20 {
            let inst = random_treewidth2(6, 4, &mut rng);
            if !is_series_parallel(&inst.graph) {
                saw_non_ttsp = true;
            }
        }
        assert!(saw_non_ttsp);
    }
}
