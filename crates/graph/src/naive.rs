//! The seed's `Vec<Vec<_>>` adjacency, retained as a differential
//! reference.
//!
//! [`NaiveAdjacency`] is a faithful copy of the representation [`Graph`]
//! used before the CSR freeze (per-node growable vectors, O(deg) linear
//! membership scans). It exists so tests can compare the frozen CSR rows
//! against an independently maintained structure, and so benchmarks can
//! measure the old lookup cost on the same inputs. It is *not* used on any
//! hot path.

use crate::graph::{Edge, EdgeId, Graph, NodeId};

/// Reference adjacency structure with the pre-CSR seed layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NaiveAdjacency {
    edges: Vec<Edge>,
    /// adjacency[v] = list of (neighbor, edge id) in port order.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl NaiveAdjacency {
    /// Creates a reference graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        NaiveAdjacency { edges: Vec::new(), adjacency: vec![Vec::new(); n] }
    }

    /// Rebuilds the reference structure from a [`Graph`]'s edge list alone
    /// (deliberately not via [`Graph::neighbors`], so the two
    /// representations stay independent).
    pub fn from_graph(g: &Graph) -> Self {
        let mut naive = NaiveAdjacency::new(g.n());
        for e in g.edges() {
            naive.push_edge(e.u, e.v);
        }
        naive
    }

    /// Appends an edge without simplicity checks (construction mirror of
    /// the counting-sort CSR build, which also trusts the edge list).
    fn push_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        let id = self.edges.len();
        self.edges.push(Edge { u, v });
        self.adjacency[u].push((v, id));
        self.adjacency[v].push((u, id));
        id
    }

    /// Adds an undirected edge, enforcing the same simplicity rules as
    /// [`Graph::add_edge`].
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or parallel edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        assert!(u < self.n() && v < self.n(), "edge ({u}, {v}) out of range (n = {})", self.n());
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(!self.has_edge(u, v), "parallel edge ({u}, {v})");
        self.push_edge(u, v)
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.adjacency.len() - 1
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Neighbors of `v` with edge ids, in port order.
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adjacency[v]
    }

    /// Iterator over the incident edge ids of `v`, in port order.
    pub fn incident_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adjacency[v].iter().map(|&(_, e)| e)
    }

    /// The seed's O(deg) linear-scan lookup.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adjacency[a].iter().find(|&&(w, _)| w == b).map(|&(_, e)| e)
    }

    /// Whether `u` and `v` are adjacent (linear scan).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_graph_on_a_triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let naive = NaiveAdjacency::from_graph(&g);
        assert_eq!(naive.n(), 3);
        assert_eq!(naive.m(), 3);
        for v in 0..3 {
            assert_eq!(naive.neighbors(v), g.neighbors(v));
        }
        assert_eq!(naive.edge_between(2, 0), g.edge_between(2, 0));
        assert!(!naive.has_edge(0, 0));
    }

    #[test]
    #[should_panic(expected = "parallel edge")]
    fn rejects_parallel_edges() {
        let mut naive = NaiveAdjacency::new(2);
        naive.add_edge(0, 1);
        naive.add_edge(1, 0);
    }
}
