//! Deterministic seed-stream derivation (SplitMix64).
//!
//! Every layer that fans work out — the sweep engine across jobs, the
//! streaming generator across shards, the sharded verifier across blocks
//! — derives per-unit seeds from a SplitMix64-style stream keyed by
//! `(base_seed, index)`. The derivation depends only on those two values,
//! never on scheduling or on how many units were generated before, so
//! unit `i` can be (re)produced in isolation, out of order, and on any
//! worker, with byte-identical output.
//!
//! This module lives in `pdip-graph` (the bottom of the crate stack) so
//! generators, protocols and the engine all share one derivation;
//! `pdip-engine::seed` re-exports it.

/// SplitMix64's odd multiplicative constant (the golden-ratio increment).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The 64-bit finalizer of SplitMix64 (Stafford's Mix13 variant, as in
/// the reference implementation).
#[inline]
pub fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of unit `index` in the stream keyed by `base_seed`.
///
/// This is the SplitMix64 output sequence with seed `base_seed`, read at
/// position `index`: finalize(base + (index + 1) · γ). Distinct indices
/// give distinct pre-finalization states (γ is odd, so `i ↦ i·γ` is a
/// bijection mod 2⁶⁴), and the finalizer is itself a bijection — hence
/// two units of one stream can never collide.
#[inline]
pub fn job_seed(base_seed: u64, index: u64) -> u64 {
    splitmix_finalize(base_seed.wrapping_add(GAMMA.wrapping_mul(index.wrapping_add(1))))
}

/// Derives a labelled sub-seed from a seed (e.g. skeleton vs. shard
/// stream, instance generation vs. protocol run), again bijectively per
/// label.
#[inline]
pub fn sub_seed(seed: u64, label: u64) -> u64 {
    splitmix_finalize(seed ^ GAMMA.wrapping_mul(label.wrapping_add(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(job_seed(42, 7), job_seed(42, 7));
        assert_ne!(job_seed(42, 7), job_seed(42, 8));
        assert_ne!(job_seed(42, 7), job_seed(43, 7));
    }

    #[test]
    fn no_collisions_on_a_large_window() {
        let mut seen = HashSet::new();
        for base in [0u64, 1, 0xDEAD_BEEF] {
            seen.clear();
            for i in 0..100_000u64 {
                assert!(seen.insert(job_seed(base, i)), "collision at index {i}");
            }
        }
    }

    #[test]
    fn sub_seeds_are_distinct_per_label() {
        let s = job_seed(9, 3);
        let distinct: HashSet<u64> = (0..64).map(|l| sub_seed(s, l)).collect();
        assert_eq!(distinct.len(), 64);
    }
}
