//! All distributed interactive proofs of Gil & Parter, *"New Distributed
//! Interactive Proofs for Planarity: A Matter of Left and Right"*
//! (PODC 2025), implemented on the `pdip-core` DIP runtime and the
//! `pdip-graph` substrate.
//!
//! Building blocks (Lemmas 2.3–2.6): [`forest_code`], [`edge_labels`],
//! [`spanning_tree`], [`multiset_eq`]. The core contribution is the
//! 5-round [`lr_sorting`] protocol with O(log log n)-bit proofs
//! (Lemma 4.1/4.2), from which the family protocols derive.

#![warn(missing_docs)]
// Parallel-array index loops are idiomatic throughout this codebase.
#![allow(clippy::needless_range_loop)]

pub mod amplify;
pub mod edge_labels;
pub mod embedded_planarity;
pub mod forest_code;
pub mod lower_bound;
pub mod lr_sorting;
pub mod multiset_eq;
pub mod nesting;
pub mod outerplanar;
pub mod path_outerplanar;
pub mod planarity;
pub mod pls_baseline;
pub mod replay;
pub mod series_parallel;
pub mod sharded;
pub mod spanning_tree;
pub mod treewidth2;

pub use amplify::Amplified;
pub use edge_labels::EdgeLabelCarrier;
pub use embedded_planarity::{
    build_reduction, EmbCheat, EmbInstance, EmbeddedPlanarity, Reduction, EMB_CHEATS,
};
pub use forest_code::{decode_children, decode_parent, ForestCode, ForestCodeLabel};
pub use lr_sorting::{LrCheat, LrParams, LrSorting, Transport, LR_CHEATS};
pub use multiset_eq::{MsMsg, MultisetEq};
pub use outerplanar::{OpCheat, OpInstance, Outerplanarity, OP_CHEATS};
pub use path_outerplanar::{PathOuterplanarity, PopCheat, PopInstance, PopParams, POP_CHEATS};
pub use planarity::{PlCheat, PlInstance, Planarity, PL_CHEATS};
pub use replay::{capture_run, diff_transcripts, replay_verify, ReplayOutcome};
pub use series_parallel::{SeriesParallel, SpaCheat, SpaInstance, SPA_CHEATS};
pub use sharded::{BlockShard, ShardCombiner, ShardPlan};
pub use spanning_tree::{SpanningTreeVerification, StCoin, StMsg, StParams};
pub use treewidth2::{Treewidth2, Tw2Cheat, Tw2Instance, TW2_CHEATS};
