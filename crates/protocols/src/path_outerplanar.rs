//! The path-outerplanarity protocol (Theorem 1.2, §5 of the paper).
//!
//! Three stages run in parallel over 5 interaction rounds:
//!
//! 1. **Committing to a path** — the prover encodes a Hamiltonian path `P`
//!    (rooted at its leftmost node) with the Lemma 2.3 forest code; each
//!    node checks it has at most one child, and the Lemma 2.5
//!    spanning-tree verification (amplified by parallel repetition)
//!    certifies that `P` spans the graph.
//! 2. **LR-sorting** — the prover claims an orientation bit per edge
//!    (`u ≺ v` or `v ≺ u`); the LR-sorting protocol (§4) verifies the
//!    claims against `P`, after which every node knows its left and right
//!    arcs.
//! 3. **Nesting verification** — random per-node tags name the arcs and
//!    the `longest`/`succ`/`above`/`gap` labels certify proper nesting
//!    (see [`crate::nesting`]).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::forest_code::{decode_parent, ForestCode};
use crate::lr_sorting::{LrCheat, LrParams, LrSorting, Transport};
use crate::nesting::{self, NestingLabels};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{par, trace_stats, DipProtocol, Rejections, RunResult, SizeStats, Tag};
use pdip_graph::gen::lr::LrInstance;
use pdip_graph::{Graph, NodeId, Orientation, RootedForest};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId, Stopwatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A path-outerplanarity instance: the graph plus (when known) a witness
/// Hamiltonian path. No-instances may still carry a Hamiltonian path
/// (crossing instances) or none (non-Hamiltonian instances).
#[derive(Debug, Clone)]
pub struct PopInstance {
    /// The instance graph.
    pub graph: Graph,
    /// A Hamiltonian path, if one is known.
    pub witness: Option<Vec<NodeId>>,
    /// Ground truth.
    pub is_yes: bool,
}

/// Parameters of the composite protocol.
#[derive(Debug, Clone, Copy)]
pub struct PopParams {
    /// Soundness exponent (field sizes, tag widths, ST window).
    pub c: u32,
    /// Parallel repetitions of the spanning-tree verification.
    pub st_repetitions: usize,
}

impl Default for PopParams {
    fn default() -> Self {
        PopParams { c: 3, st_repetitions: 2 }
    }
}

/// Cheating strategies for path-outerplanarity no-instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopCheat {
    /// Commit a non-spanning path (greedy longest path) and flag the
    /// leftover nodes as roots of trivial trees — attacks the
    /// spanning-tree verification.
    FakePath,
    /// Lie about one crossing arc's orientation — attacks LR-sorting
    /// (runs the strongest LR sub-cheat).
    FlipOrientation,
    /// Honest sweep labels on a crossing instance (some arc violates
    /// Observation 2.1 and stays unmarked).
    NestingHonestSweep,
    /// Additionally force-mark a violating arc as longest — pushes the
    /// contradiction into the probabilistic `succ` chain.
    NestingForceMark,
}

/// Chunk grain for the intra-job parallel loops: coarse enough that a
/// chunk amortizes its thread hand-off, fine enough that n = 10⁵ still
/// splits across every worker. The grid depends only on `n` and this
/// constant, never on the worker count (see `pdip_core::par`).
const PAR_GRAIN: usize = 8192;

/// All cheats, in [`PathOuterplanarity::cheat_names`] order.
pub const POP_CHEATS: [PopCheat; 4] = [
    PopCheat::FakePath,
    PopCheat::FlipOrientation,
    PopCheat::NestingHonestSweep,
    PopCheat::NestingForceMark,
];

/// The path-outerplanarity DIP bound to an instance.
#[derive(Debug)]
pub struct PathOuterplanarity<'a> {
    inst: &'a PopInstance,
    params: PopParams,
    transport: Transport,
    tag_bits: usize,
}

impl<'a> PathOuterplanarity<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a PopInstance, params: PopParams, transport: Transport) -> Self {
        let n = inst.graph.n().max(4);
        let loglog = ((n as f64).log2()).log2().ceil() as usize;
        let tag_bits = ((params.c as usize) * loglog + 4).min(60);
        PathOuterplanarity { inst, params, transport, tag_bits }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// The claimed path for this run: the witness, or (for `FakePath`) a
    /// greedy longest path.
    fn claimed_path(&self, cheat: Option<PopCheat>) -> Vec<NodeId> {
        match (cheat, &self.inst.witness) {
            (Some(PopCheat::FakePath), _) | (_, None) => greedy_longest_path(self.g()),
            (_, Some(w)) => w.clone(),
        }
    }

    /// One full run.
    pub fn run(&self, cheat: Option<PopCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`PathOuterplanarity::run`] with instrumentation: stage spans
    /// (path commit / LR-sorting / nesting), Lemma 2.3/2.5 primitive
    /// spans, and per-round bit counters under span name
    /// `"path-outerplanarity"`. Identical RNG call order and result.
    pub fn run_with(&self, cheat: Option<PopCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "path-outerplanarity", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<PopCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };

        // ---- Stage 1: committing to a path ----
        let stage1 = span(rec, 0, SpanId::at("path-outerplanarity/stage", 1));
        let commit_watch = Stopwatch::start(rec, "round/path-commit");
        let path = self.claimed_path(cheat);
        // A corrupted witness can name unknown nodes, revisit a node
        // (which would put a cycle in the parent pointers), or traverse
        // non-edges; in the real protocol no prover can make a node read
        // a forest-code pointer over a port it does not have, so this is
        // a deterministic structural reject (never a panic).
        let mut seen = vec![false; n];
        let mut path_ok = path.iter().all(|&v| v < n && !std::mem::replace(&mut seen[v], true));
        let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
        if path_ok {
            for w in path.windows(2) {
                match g.edge_between(w[0], w[1]) {
                    Some(e) => parent[w[1]] = Some((w[0], e)),
                    None => path_ok = false,
                }
            }
        }
        if !path_ok {
            rej.reject_malformed(
                path.first().copied().filter(|&v| v < n).unwrap_or(0),
                "pop: committed path uses a non-edge or unknown node",
            );
            stats.per_round_max_bits = vec![1, 0, 0];
            return rej.into_result(stats);
        }
        let forest = RootedForest::from_parents(g, parent);
        let code = ForestCode::encode_traced(g, &forest, rec);
        // The per-node label decode and every node-local check loop below
        // run on the intra-job chunk grid (`pdip_core::par`): chunk-local
        // rejection collectors absorbed in chunk order reproduce the
        // serial rejection stream — and with it every downstream artifact
        // — byte for byte at any worker count.
        let claimed_parent: Vec<Option<NodeId>> =
            par::map_indexed(n, PAR_GRAIN, |v| decode_parent(g, &code.labels, v));
        let claimed_root: Vec<bool> = (0..n).map(|v| code.labels[v].root).collect();
        // Node-local structure checks: at most one child; root flags match.
        // A neighbor u is a decoded child of v exactly when u's own parent
        // decode resolves to v (decode_children's parity/color/root filters
        // are implied by `decode_parent(u) == Some(v)`), so the child count
        // reads off the already-computed `claimed_parent` table instead of
        // re-deriving each neighbor's parent.
        for local in par::map_chunks(n, PAR_GRAIN, |vs| {
            let mut local = Rejections::new();
            for v in vs {
                let kids = g.neighbor_nodes(v).filter(|&u| claimed_parent[u] == Some(v)).count();
                local.check(v, kids <= 1, || "pop: committed path branches".into());
                local.check(v, claimed_root[v] == claimed_parent[v].is_none(), || {
                    "pop: root flag inconsistent with parent decode".into()
                });
            }
            local
        }) {
            rej.absorb(local);
        }
        // Spanning-tree verification on the committed structure.
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        let st_coins = st.draw_coins(n, &mut rng);
        let st_msgs = st.honest_response_traced(&forest, &st_coins, rec);
        for local in par::map_chunks(n, PAR_GRAIN, |vs| {
            let mut local = Rejections::new();
            for v in vs {
                st.check(g, v, claimed_parent[v], claimed_root[v], &st_coins, &st_msgs, &mut local);
            }
            local
        }) {
            rej.absorb(local);
        }
        // If the committed structure is not a genuine Hamiltonian path and
        // the probabilistic checks somehow passed, the adversary wins this
        // run (conservative accounting, see DESIGN.md §2).
        let truly_hamiltonian = path.len() == n && {
            let mut seen = vec![false; n];
            path.iter().all(|&v| !std::mem::replace(&mut seen[v], true))
                && path.windows(2).all(|w| g.has_edge(w[0], w[1]))
        };
        if !truly_hamiltonian {
            stats.per_round_max_bits = vec![code.label_bits() + 1, st.msg_bits(), 0];
            stats.coin_bits = n * st.coin_bits();
            return rej.into_result(stats);
        }
        drop(commit_watch);
        drop(stage1);

        // ---- Stage 2: LR-sorting on the claimed orientation ----
        let stage2 = span(rec, 0, SpanId::at("path-outerplanarity/stage", 2));
        let orient_watch = Stopwatch::start(rec, "round/lr-orientation");
        let mut positions = vec![0usize; n];
        for (i, &v) in path.iter().enumerate() {
            positions[v] = i;
        }
        let mut orientation = Orientation::by(g, |u, v| positions[u] < positions[v]);
        let mut lr_cheat: Option<LrCheat> = None;
        if cheat == Some(PopCheat::FlipOrientation) {
            if let Some(e) = first_unmarkable_arc(g, &positions) {
                orientation.flip(e);
                lr_cheat = Some(LrCheat::OuterForgedIndex);
            }
        }
        // Every window is a real edge here: `truly_hamiltonian` above
        // verified the path, so the filter drops nothing.
        let path_edges: Vec<usize> =
            path.windows(2).filter_map(|w| g.edge_between(w[0], w[1])).collect();
        let lr_inst = LrInstance {
            graph: g.clone(),
            orientation: orientation.clone(),
            path: path.clone(),
            path_edges: path_edges.clone(),
            is_yes: true,
        };
        let lr = LrSorting::new(
            &lr_inst,
            LrParams { c: self.params.c, block_len: None },
            self.transport,
        );
        drop(orient_watch);
        let lr_res = lr.run_with(lr_cheat, rng.gen(), rec);
        stats.merge_parallel(&lr_res.stats);
        for ((v, reason), kind) in lr_res.rejections.into_iter().zip(lr_res.kinds) {
            rej.reject_as(v, kind, format!("pop/lr: {reason}"));
        }
        drop(stage2);

        // ---- Stage 3: nesting verification ----
        let _stage3 = span(rec, 0, SpanId::at("path-outerplanarity/stage", 3));
        let _nest_watch = Stopwatch::start(rec, "round/nesting");
        let mut is_path_edge = vec![false; g.m()];
        for &e in &path_edges {
            is_path_edge[e] = true;
        }
        let tags: Vec<Tag> = (0..n).map(|_| Tag::random(self.tag_bits, &mut rng)).collect();
        pdip_core::capture::emit("pop/nesting-tags", |s| {
            for t in &tags {
                s.put_usize(t.bits);
                s.put_u64(t.value);
            }
        });
        let mut labels = nesting::sweep_assign(g, &positions, &path, &is_path_edge, &tags);
        if cheat == Some(PopCheat::NestingForceMark) {
            if let Some(e) = first_unmarkable_arc(g, &positions) {
                nesting::force_longest_left(&mut labels, g, &positions, e);
            }
        }
        // The per-node nesting checks chunk like the stage-1 loops; each
        // chunk owns its scratch (no sharing across workers) and the
        // merged rejection order is the serial one.
        for local in par::map_chunks(n, PAR_GRAIN, |vs| {
            let mut local = Rejections::new();
            let mut nest_scratch = nesting::NestingScratch::new();
            for v in vs {
                let posn = positions[v];
                let left_nb = if posn > 0 { Some(path[posn - 1]) } else { None };
                let right_nb = if posn + 1 < n { Some(path[posn + 1]) } else { None };
                // Left/right classification per the *claimed, LR-verified*
                // orientation: the arc is a left arc iff v is its head.
                let is_left = |e: usize| orientation.head(g, e) == v;
                nesting::check_node_with(
                    g,
                    v,
                    left_nb,
                    right_nb,
                    &is_path_edge,
                    &is_left,
                    &tags,
                    &labels,
                    &mut local,
                    &mut nest_scratch,
                );
            }
            local
        }) {
            rej.absorb(local);
        }

        // ---- Size accounting ----
        let tb = self.tag_bits;
        let arc_bits = NestingLabels::arc_bits(tb);
        let commit_bits = code.label_bits() + 1; // forest code + orientation stage flag
        let edge_p1_bits = 1 + 2; // orientation bit + two longest marks
        let edge_p2_bits = 2 * tb + (1 + 2 * tb) + NestingLabels::gap_bits(tb); // name + succ / gap
        let (p1_extra, p2_extra) = match self.transport {
            Transport::Native => (edge_p1_bits, edge_p2_bits),
            Transport::Simulated => {
                let max_deg_burden = 5; // forests carried per node (planar)
                (max_deg_burden * (edge_p1_bits + 1) + 5 * 8, max_deg_burden * (edge_p2_bits + 1))
            }
        };
        let own = SizeStats {
            per_round_max_bits: vec![
                commit_bits + p1_extra,
                st.msg_bits() + NestingLabels::node_bits(tb) + arc_bits.max(p2_extra),
                0,
            ],
            per_round_total_bits: vec![],
            coin_bits: n * (st.coin_bits() + tb),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        let _ = &labels;
        rej.into_result(stats)
    }
}

/// A greedy longest path: repeated DFS deepening from the deepest node.
fn greedy_longest_path(g: &Graph) -> Vec<NodeId> {
    if g.n() == 0 {
        return Vec::new();
    }
    // Double-BFS heuristic endpoint, then greedy extension by unvisited
    // neighbors.
    let far = pdip_graph::bfs_order(g, 0).last().copied().unwrap_or(0);
    let mut path = vec![far];
    let mut used = vec![false; g.n()];
    used[far] = true;
    let mut last = far;
    loop {
        // Warnsdorff with dead-end avoidance: prefer the unvisited
        // neighbor with the fewest *positive* number of onward options;
        // enter a dead end only when nothing else remains.
        let next = g.neighbor_nodes(last).filter(|&u| !used[u]).min_by_key(|&u| {
            let onward = g.neighbor_nodes(u).filter(|&w| !used[w]).count();
            (onward == 0, onward)
        });
        match next {
            Some(u) => {
                used[u] = true;
                path.push(u);
                last = u;
            }
            None => break,
        }
    }
    path
}

/// An arc that violates Observation 2.1 w.r.t. the given positions (it is
/// neither the longest right arc of its tail nor the longest left arc of
/// its head), i.e. direct evidence of a crossing. Falls back to any
/// crossing arc.
fn first_unmarkable_arc(g: &Graph, positions: &[usize]) -> Option<usize> {
    let arcs: Vec<usize> = (0..g.m())
        .filter(|&e| {
            let edge = g.edge(e);
            positions[edge.u].abs_diff(positions[edge.v]) > 1
        })
        .collect();
    let span = |e: usize| {
        let edge = g.edge(e);
        let (a, b) = (positions[edge.u], positions[edge.v]);
        (a.min(b), a.max(b))
    };
    for &e in &arcs {
        let (lo, hi) = span(e);
        let longest_right = arcs.iter().all(|&f| {
            let (flo, fhi) = span(f);
            flo != lo || fhi <= hi
        });
        let longest_left = arcs.iter().all(|&f| {
            let (flo, fhi) = span(f);
            fhi != hi || flo >= lo
        });
        if !longest_right && !longest_left {
            return Some(e);
        }
    }
    // Fall back: any crossing arc.
    for (i, &e) in arcs.iter().enumerate() {
        let (lo, hi) = span(e);
        for &f in &arcs[i + 1..] {
            let (flo, fhi) = span(f);
            if (lo < flo && flo < hi && hi < fhi) || (flo < lo && lo < fhi && fhi < hi) {
                return Some(e);
            }
        }
    }
    None
}

impl DipProtocol for PathOuterplanarity<'_> {
    fn name(&self) -> String {
        "path-outerplanarity".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec![
            "fake-path".into(),
            "flip-orientation".into(),
            "nesting-honest-sweep".into(),
            "nesting-force-mark".into(),
        ]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(POP_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(POP_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::outerplanar_no_hamiltonian_path;
    use pdip_graph::gen::outerplanar::{fan_path_outerplanar, random_path_outerplanar};

    fn yes_instance(n: usize, seed: u64) -> PopInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = random_path_outerplanar(n, 0.7, &mut rng);
        PopInstance { graph: inst.graph, witness: Some(inst.path), is_yes: true }
    }

    #[test]
    fn perfect_completeness() {
        for n in [2usize, 3, 8, 30, 101, 300] {
            for seed in 0..4 {
                let inst = yes_instance(n, seed);
                let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
                let res = p.run_honest(seed * 7 + 1);
                assert!(res.accepted(), "n={n} seed={seed}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn completeness_with_simulated_edge_labels() {
        for seed in 0..5 {
            let inst = yes_instance(60, 100 + seed);
            let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Simulated);
            let res = p.run_honest(seed);
            assert!(res.accepted(), "{:?}", res.rejections.first());
        }
    }

    #[test]
    fn fan_completeness() {
        let mut rng = SmallRng::seed_from_u64(3);
        let fan = fan_path_outerplanar(40, &mut rng);
        let inst = PopInstance { graph: fan.graph, witness: Some(fan.path), is_yes: true };
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        for seed in 0..10 {
            assert!(p.run_honest(seed).accepted());
        }
    }

    #[test]
    fn non_hamiltonian_fake_path_rejected() {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = outerplanar_no_hamiltonian_path(5, &mut rng);
        let inst = PopInstance { graph: g, witness: None, is_yes: false };
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        let mut accepted = 0;
        for seed in 0..100 {
            if p.run(Some(PopCheat::FakePath), seed).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 5, "fake path accepted {accepted}/100");
    }

    #[test]
    fn crossing_instances_rejected_under_all_cheats() {
        // Polygon with two crossing chords has a Hamiltonian path but is
        // not path-outerplanar w.r.t. it... it *is* path-outerplanar as a
        // graph though (biconnected outerplanar isn't -- crossing chords
        // make it non-outerplanar). Build it directly:
        let mut rng = SmallRng::seed_from_u64(5);
        let g = pdip_graph::gen::no_instances::planar_not_outerplanar(10, &mut rng);
        // Recover a Hamiltonian path: the polygon order is hidden by the
        // relabeling; rebuild an explicit instance instead.
        let mut h = Graph::new(8);
        for i in 0..8 {
            h.add_edge(i, (i + 1) % 8);
        }
        h.add_edge(0, 3);
        h.add_edge(2, 6);
        assert!(!pdip_graph::is_outerplanar(&h));
        let witness: Vec<usize> = (0..8).collect();
        let inst = PopInstance { graph: h, witness: Some(witness), is_yes: false };
        let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
        for (ci, cheat) in POP_CHEATS.iter().enumerate().skip(1) {
            let mut accepted = 0;
            for seed in 0..100 {
                if p.run(Some(*cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 10, "cheat {ci} accepted {accepted}/100");
        }
        let _ = g;
    }

    #[test]
    fn proof_size_loglog() {
        for n in [1usize << 8, 1 << 11, 1 << 13] {
            let inst = yes_instance(n, 9);
            let p = PathOuterplanarity::new(&inst, PopParams::default(), Transport::Native);
            let res = p.run_honest(1);
            let loglog = ((n as f64).log2()).log2();
            assert!(
                (res.stats.proof_size() as f64) <= 90.0 * loglog,
                "n={n}: {} bits",
                res.stats.proof_size()
            );
        }
    }
}
