//! The planarity protocol (Theorem 1.5, Lemma 7.2 of the paper).
//!
//! The prover computes a combinatorial planar embedding ρ(G) and hands
//! every node its clockwise values: for each edge `e = (u, v)` the ordered
//! pair `(ρ_u(e), ρ_v(e))` is written on the edge (via the Lemma 2.4
//! forest slots), costing O(log Δ) bits. Each node locally checks the
//! received values form a permutation of `0..deg(v)`, then the
//! embedded-planarity protocol (Theorem 1.4) verifies that ρ is planar.
//! `G` is planar iff some ρ passes — completeness picks the witness
//! embedding, soundness inherits from Theorem 1.4 because a non-planar
//! graph has no genus-0 rotation system.

use crate::embedded_planarity::{EmbCheat, EmbInstance, EmbeddedPlanarity};
use crate::lr_sorting::Transport;
use crate::path_outerplanar::PopParams;
use pdip_core::{bits_for_domain, trace_stats, DipProtocol, Rejections, RunResult};
use pdip_graph::{Graph, RotationSystem};
use pdip_obs::{counter, span, NoopRecorder, Recorder, SpanId, Stopwatch};

/// A planarity instance: graph plus (for yes-instances) a witness
/// embedding.
#[derive(Debug, Clone)]
pub struct PlInstance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// A genus-0 rotation system, when one is known.
    pub witness_rho: Option<RotationSystem>,
    /// Ground truth.
    pub is_yes: bool,
}

/// Cheats: the rotation the prover distributes on a non-planar graph,
/// plus the sub-cheat played inside the embedded-planarity run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlCheat {
    /// Port-order rotations + honest sweep.
    PortOrderHonestSweep,
    /// Port-order rotations + force-marked arc.
    PortOrderForceMark,
    /// Port-order rotations + fake spanning tree.
    PortOrderFakeTree,
}

/// All cheats in interface order.
pub const PL_CHEATS: [PlCheat; 3] =
    [PlCheat::PortOrderHonestSweep, PlCheat::PortOrderForceMark, PlCheat::PortOrderFakeTree];

/// The planarity DIP bound to an instance.
#[derive(Debug)]
pub struct Planarity<'a> {
    inst: &'a PlInstance,
    params: PopParams,
    transport: Transport,
}

impl<'a> Planarity<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a PlInstance, params: PopParams, transport: Transport) -> Self {
        Planarity { inst, params, transport }
    }

    /// One full run.
    pub fn run(&self, cheat: Option<PlCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`Planarity::run`] with an instrumentation [`Recorder`]: a rotation
    /// span with a `delta_bits` counter, the inner Theorem 1.4 trace, and
    /// per-round bit counters ([`trace_stats`]). With a disabled recorder
    /// this is the same run.
    pub fn run_with(&self, cheat: Option<PlCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = &self.inst.graph;
        let mut rej = Rejections::new();
        // The prover's rotation system.
        let rot_span = span(rec, 0, SpanId::new("planarity/rotation"));
        let rot_watch = Stopwatch::start(rec, "round/rotation");
        let rho = match (&self.inst.witness_rho, cheat) {
            (Some(w), None) => w.clone(),
            _ => RotationSystem::port_order(g),
        };
        drop(rot_span);
        // Local well-formedness: each node's received values are a
        // permutation of 0..deg(v) (RotationSystem enforces this
        // structurally; a malformed assignment would be a deterministic
        // local reject, so nothing probabilistic is lost here).
        for v in 0..g.n() {
            rej.check(v, rho.order_at(v).len() == g.degree(v), || {
                "pl: rotation is not a permutation of incident edges".into()
            });
        }
        drop(rot_watch);
        let prep_watch = Stopwatch::start(rec, "round/instance-prep");
        let emb_inst = EmbInstance { graph: g.clone(), is_yes: rho.is_planar_embedding(g), rho };
        drop(prep_watch);
        let emb = EmbeddedPlanarity::new(&emb_inst, self.params, self.transport);
        let sub_cheat = match cheat {
            Some(PlCheat::PortOrderHonestSweep) => Some(EmbCheat::HonestSweep),
            Some(PlCheat::PortOrderForceMark) => Some(EmbCheat::ForceMark),
            Some(PlCheat::PortOrderFakeTree) => Some(EmbCheat::FakeTree),
            None => None,
        };
        let res = emb.run_with(sub_cheat, seed, rec);
        let mut stats = res.stats.clone();
        // The Δ-dependent overhead: the pair (ρ_u(e), ρ_v(e)) on each edge
        // rides round 1.
        let delta_bits = 2 * bits_for_domain(g.max_degree().max(1));
        counter(rec, 0, SpanId::new("planarity/rotation"), "delta_bits", delta_bits as u64);
        if let Some(b) = stats.per_round_max_bits.first_mut() {
            *b += match self.transport {
                Transport::Native => delta_bits,
                Transport::Simulated => 5 * (delta_bits + 1),
            };
        }
        for ((v, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
            rej.reject_as(v, kind, reason);
        }
        trace_stats(rec, "planarity", &stats);
        rej.into_result(stats)
    }
}

impl DipProtocol for Planarity<'_> {
    fn name(&self) -> String {
        "planarity".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.inst.graph.n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec![
            "port-order+honest-sweep".into(),
            "port-order+force-mark".into(),
            "port-order+fake-tree".into(),
        ]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(PL_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(PL_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::nonplanar_with_gadget;
    use pdip_graph::gen::planar::{random_planar, triangulation_with_degree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(101);
        for n in [4usize, 12, 50, 150] {
            let gen = random_planar(n, 0.7, &mut rng);
            let inst = PlInstance { graph: gen.graph, witness_rho: Some(gen.rho), is_yes: true };
            let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
            for seed in 0..3 {
                let res = p.run_honest(seed);
                assert!(res.accepted(), "n={n}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn nonplanar_rejected() {
        let mut rng = SmallRng::seed_from_u64(102);
        for cheat in [PlCheat::PortOrderHonestSweep, PlCheat::PortOrderForceMark] {
            let mut accepted = 0;
            for seed in 0..40 {
                let g = nonplanar_with_gadget(15, 1, seed % 2 == 0, &mut rng);
                let inst = PlInstance { graph: g, witness_rho: None, is_yes: false };
                let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
                if p.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 4, "{cheat:?} accepted {accepted}/40");
        }
    }

    #[test]
    fn round1_size_grows_with_delta() {
        // The O(log Δ) term rides the first prover round (the rotation
        // values); with moderate Δ the O(log log n) rounds still dominate
        // the overall proof size, so measure round 1 directly.
        let mut rng = SmallRng::seed_from_u64(103);
        let mut sizes = Vec::new();
        for delta in [6usize, 30, 120] {
            let gen = triangulation_with_degree(200, delta, &mut rng);
            let inst = PlInstance { graph: gen.graph, witness_rho: Some(gen.rho), is_yes: true };
            let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
            let res = p.run_honest(5);
            assert!(res.accepted());
            sizes.push(res.stats.per_round_max_bits[0]);
        }
        assert!(sizes[2] > sizes[0], "Δ-dependence missing: {sizes:?}");
    }
}
