//! The Ω(log n) one-round lower bound (Theorem 1.8) — experimental
//! machinery.
//!
//! Theorem 1.8 says no one-round scheme with o(log n)-bit proofs can
//! certify path-outerplanarity (or any of the paper's families), even with
//! randomized verifiers and shared randomness. This module reproduces the
//! *mechanism* behind the bound as a concrete forgery:
//!
//! Consider the one-round nesting scheme of [`crate::pls_baseline`] with
//! its position names compressed to `b` bits. Take the **crossing**
//! instance `Z` = path + arcs `A = (x, c)`, `B = (x + 2^b, c + 2^b)` and
//! the **nested** instance `P` = path + arcs `(x, c + 2^b)`,
//! `(x + 2^b, c)` on the same node set. Every `b`-bit name collides
//! between the two pairings (`t_x ≡ t_{x+2^b}`, `t_c ≡ t_{c+2^b}`), so the
//! honest accepting labels of `P`, transplanted arc-for-arc onto `Z`, pass
//! every local check — a forged proof of a no-instance. The forgery needs
//! `2^b` to fit inside the instance, so it exists iff `b ≲ log₂ n − 2`:
//! the experiment measures the forgery threshold `b*(n) = Θ(log n)`,
//! while the interactive 5-round protocol achieves O(log log n) bits —
//! randomized per-run names cannot be precomputed against.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::nesting::{self, NestingLabels};
use pdip_core::{Rejections, Tag};
use pdip_graph::{Graph, NodeId};

/// The geometry of one forgery attempt.
#[derive(Debug, Clone, Copy)]
pub struct ForgeryGeometry {
    /// Total path length.
    pub n: usize,
    /// Left endpoint of the first arc.
    pub x: usize,
    /// Right endpoint of the first arc.
    pub c: usize,
    /// The collision stride `2^b`.
    pub stride: usize,
}

impl ForgeryGeometry {
    /// A valid geometry for path length `n` and name width `b`, if the
    /// stride fits.
    pub fn new(n: usize, b: usize) -> Option<Self> {
        if b >= usize::BITS as usize - 2 {
            return None;
        }
        let stride = 1usize << b;
        let x = 1;
        let c = x + stride + 2; // x < x+stride < c required
        let top = c + stride; // c + stride <= n-2
        if top + 2 > n {
            return None;
        }
        Some(ForgeryGeometry { n, x, c, stride })
    }

    /// The crossing no-instance `Z` (returns graph + the arc edge ids).
    pub fn crossing_instance(&self) -> (Graph, usize, usize) {
        let mut g = path_graph(self.n);
        let a = g.add_edge(self.x, self.c);
        let b = g.add_edge(self.x + self.stride, self.c + self.stride);
        (g, a, b)
    }

    /// The nested yes-instance `P` on the same nodes.
    pub fn nested_instance(&self) -> (Graph, usize, usize) {
        let mut g = path_graph(self.n);
        let a = g.add_edge(self.x, self.c + self.stride);
        let b = g.add_edge(self.x + self.stride, self.c);
        (g, a, b)
    }
}

fn path_graph(n: usize) -> Graph {
    Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
}

/// Runs the `b`-bit one-round nesting verifier on `(g, labels)` with
/// truncated position tags. Returns whether every node accepts.
pub fn truncated_check(g: &Graph, labels: &NestingLabels, b: usize) -> bool {
    let n = g.n();
    if n == 0 {
        return true;
    }
    let tags: Vec<Tag> = (0..n).map(|v| truncated_tag(v, b)).collect();
    let mut is_path_edge = vec![false; g.m()];
    for v in 0..n - 1 {
        // A malformed instance whose spine is not a path is rejected,
        // never a panic.
        match g.edge_between(v, v + 1) {
            Some(e) => is_path_edge[e] = true,
            None => return false,
        }
    }
    let mut rej = Rejections::new();
    for v in 0..n {
        let left_nb = if v > 0 { Some(v - 1) } else { None };
        let right_nb = if v + 1 < n { Some(v + 1) } else { None };
        let is_left = |e: usize| g.edge(e).other(v) < v;
        nesting::check_node(
            g,
            v,
            left_nb,
            right_nb,
            &is_path_edge,
            &is_left,
            &tags,
            labels,
            &mut rej,
        );
    }
    !rej.any()
}

fn truncated_tag(pos: usize, b: usize) -> Tag {
    let bits = b.min(60);
    Tag { value: (pos as u64) & ((1u64 << bits) - 1), bits }
}

/// Honest truncated labels for a path instance.
pub fn truncated_labels(g: &Graph, b: usize) -> NestingLabels {
    let n = g.n();
    let positions: Vec<usize> = (0..n).collect();
    let path: Vec<NodeId> = (0..n).collect();
    let mut is_path_edge = vec![false; g.m()];
    for v in 0..n.saturating_sub(1) {
        if let Some(e) = g.edge_between(v, v + 1) {
            is_path_edge[e] = true;
        }
    }
    let tags: Vec<Tag> = (0..n).map(|v| truncated_tag(v, b)).collect();
    nesting::sweep_assign(g, &positions, &path, &is_path_edge, &tags)
}

/// Attempts the collision forgery for path length `n` and name width `b`
/// bits. The two crossing arcs of `Z` are congruent mod `2^b` at *both*
/// endpoints, so they share one truncated name σ; the adversary labels
/// both arcs (and every `succ`/`above`/`gap` field) with σ — the verifier
/// cannot tell which arc covers which stretch, and every equality check
/// passes. Returns `Some(accepted)` when the geometry fits, `None` when
/// `2^b` does not fit in the instance (no collision available).
pub fn attempt_forgery(n: usize, b: usize) -> Option<bool> {
    let geo = ForgeryGeometry::new(n, b)?;
    let (z, z_a, z_b) = geo.crossing_instance();
    debug_assert!(!pdip_graph::is_properly_nested(&z, &(0..n).collect::<Vec<_>>()));
    let sigma = (truncated_tag(geo.x, b), truncated_tag(geo.c, b));
    debug_assert_eq!(sigma.0, truncated_tag(geo.x + geo.stride, b));
    debug_assert_eq!(sigma.1, truncated_tag(geo.c + geo.stride, b));
    let mut arcs = vec![None; z.m()];
    for e in [z_a, z_b] {
        arcs[e] = Some(nesting::ArcLabel {
            longest_right_of_tail: true,
            longest_left_of_head: true,
            name: sigma,
            succ: Some(sigma),
        });
    }
    let mut gaps = vec![None; z.m()];
    for v in 0..n - 1 {
        if let Some(e) = z.edge_between(v, v + 1) {
            gaps[e] = Some(Some(sigma));
        }
    }
    let forged =
        NestingLabels { arcs, above: vec![nesting::AboveLabel { above: Some(sigma) }; n], gaps };
    Some(truncated_check(&z, &forged, b))
}

/// The forgery threshold: the largest `b` for which the transplant forgery
/// is accepted on a path of length `n` (0 when none succeeds).
pub fn forgery_threshold(n: usize) -> usize {
    let mut best = 0;
    for b in 1..=usize::BITS as usize - 3 {
        match attempt_forgery(n, b) {
            Some(true) => best = b,
            Some(false) => {}
            None => break,
        }
    }
    best
}

/// Sanity counterpart: with full-width names (`b ≥ log₂ n`) the honest
/// labeling of a crossing instance is rejected.
pub fn full_width_rejects_crossing(n: usize) -> bool {
    let b = (usize::BITS - (n - 1).leading_zeros()) as usize;
    let Some(geo) = ForgeryGeometry::new(n, b.min(10)) else {
        // Use a small stride but full-width names: build the crossing
        // instance by hand.
        let mut g = path_graph(n);
        g.add_edge(1, n / 2);
        g.add_edge(2, n / 2 + 1);
        let labels = truncated_labels(&g, b);
        return !truncated_check(&g, &labels, b);
    };
    let (z, _, _) = geo.crossing_instance();
    let labels = truncated_labels(&z, b);
    !truncated_check(&z, &labels, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forgery_succeeds_for_small_b() {
        // n = 1024: strides up to 2^7 fit comfortably.
        for b in 2..=7 {
            assert_eq!(attempt_forgery(1024, b), Some(true), "b = {b}");
        }
    }

    #[test]
    fn forgery_impossible_when_stride_does_not_fit() {
        assert_eq!(attempt_forgery(64, 8), None);
        assert_eq!(attempt_forgery(100, 10), None);
    }

    #[test]
    fn threshold_grows_logarithmically() {
        let t256 = forgery_threshold(256);
        let t4096 = forgery_threshold(4096);
        let t65536 = forgery_threshold(65536);
        assert!(t256 >= 4, "t(256) = {t256}");
        // Each 16x in n buys ~4 more bits of threshold.
        assert!(t4096 >= t256 + 3, "t(4096) = {t4096} vs t(256) = {t256}");
        assert!(t65536 >= t4096 + 3, "t(65536) = {t65536} vs t(4096) = {t4096}");
        assert!(t65536 <= 17, "threshold cannot exceed log2(n)");
    }

    #[test]
    fn full_width_names_catch_the_crossing() {
        for n in [64usize, 256, 1024] {
            assert!(full_width_rejects_crossing(n), "n = {n}");
        }
    }

    #[test]
    fn nested_instances_accepted_at_any_width() {
        for b in [4usize, 8, 16] {
            let Some(geo) = ForgeryGeometry::new(1 << 12, b) else { continue };
            let (p, _, _) = geo.nested_instance();
            let labels = truncated_labels(&p, b);
            assert!(truncated_check(&p, &labels, b), "b = {b}");
        }
    }
}
