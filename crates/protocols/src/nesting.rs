//! The nesting-verification stage of the path-outerplanarity protocol
//! (§5 of the paper).
//!
//! Given a committed Hamiltonian path and a (verified) left/right
//! orientation of every non-path edge, the prover proves that the arcs are
//! properly nested. Every node samples a random tag `s_v`; the *name* of
//! arc `(u, v)` (with `u ≺ v`) is the pair `(s_u, s_v)`. The prover marks
//! the longest left/right arc at each node (Observation 2.1), and assigns
//! each arc its successor's name (`succ`) and each node the name of the
//! first arc drawn entirely above it (`above`, with ⊥ for none). The
//! verifier's local conditions (1)–(5) tie these together so that any
//! crossing forces a chain of equalities that ends in a tag collision —
//! probability `2^{-Θ(ℓ)}`.
//!
//! The condition-(2) check ("there exists an ordering of my arcs") is
//! existential. With distinct names it reduces to following unique `succ`
//! pointers; under adversarial tag collisions it is solved exactly by a
//! grouped DP (the model does not bound verifier computation), with a
//! state cap that rejects pathological blow-ups.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use pdip_core::{Rejections, Tag};
use pdip_graph::{EdgeId, Graph, NodeId};

/// The name of a (possibly virtual) arc: `None` is the paper's ⊥ (the
/// virtual edge covering everything).
pub type ArcName = Option<(Tag, Tag)>;

/// Per-arc prover labels of the nesting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArcLabel {
    /// Marked as the longest right arc of its left endpoint.
    pub longest_right_of_tail: bool,
    /// Marked as the longest left arc of its right endpoint.
    pub longest_left_of_head: bool,
    /// The arc's own name (round 3; must match the sampled tags).
    pub name: (Tag, Tag),
    /// The successor's name (⊥ when the successor is virtual).
    pub succ: ArcName,
}

/// Per-node prover label of the nesting stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AboveLabel {
    /// Name of the first arc drawn entirely above this node (⊥ for none).
    pub above: ArcName,
}

/// The complete nesting-stage assignment.
///
/// Besides the paper's `name` / `succ` / `above` labels this carries one
/// extra name-sized label per *path edge*: `gap(v, u)` — the name of the
/// innermost arc strictly covering the gap between consecutive path nodes.
/// The announcement's conditions (4)/(5), read literally, fail on honest
/// fan instances (`above` of adjacent nodes legitimately differ when an
/// arc ends between them); the gap label restores a sound *and* complete
/// local condition: each side of a path edge must derive the same covering
/// arc — `name(e₁)` of its innermost arc on that side, or its own `above`
/// when it has none. See DESIGN.md §3.
#[derive(Debug, Clone)]
pub struct NestingLabels {
    /// Arc labels indexed by edge id (`None` on path edges).
    pub arcs: Vec<Option<ArcLabel>>,
    /// Node labels.
    pub above: Vec<AboveLabel>,
    /// Per-path-edge gap labels (`None` on non-path edges).
    pub gaps: Vec<Option<ArcName>>,
}

impl NestingLabels {
    /// Size in bits of the per-arc label (2 mark bits + name + succ).
    pub fn arc_bits(tag_bits: usize) -> usize {
        2 + 2 * tag_bits + (1 + 2 * tag_bits)
    }

    /// Size in bits of the per-node label.
    pub fn node_bits(tag_bits: usize) -> usize {
        1 + 2 * tag_bits
    }

    /// Size in bits of the per-path-edge gap label.
    pub fn gap_bits(tag_bits: usize) -> usize {
        1 + 2 * tag_bits
    }
}

/// The prover-side sweep. `positions[v]` is the claimed path position of
/// node `v` (a permutation); `arcs` lists the non-path edges. On properly
/// nested instances the output satisfies all verifier conditions; on
/// crossing instances it is the natural best-effort assignment (arcs
/// buried in the stack are extracted out of order).
pub fn sweep_assign(
    g: &Graph,
    positions: &[usize],
    path_order: &[NodeId],
    is_path_edge: &[bool],
    tags: &[Tag],
) -> NestingLabels {
    let n = g.n();
    let m = g.m();
    // Flat per-arc endpoint tables, resolved once: `al[e]` / `ar[e]` are
    // the left/right (by path position) endpoints of non-path edge `e`
    // (`u32::MAX` on path edges, which never equals a node id). Everything
    // downstream — pops, names, sort keys — becomes array lookups instead
    // of re-deriving endpoints through `g.edge` + position compares.
    const NOT_ARC: u32 = u32::MAX;
    let mut al: Vec<u32> = vec![NOT_ARC; m];
    let mut ar: Vec<u32> = vec![NOT_ARC; m];
    // Longest arcs per node and side (ties keep the first edge in edge
    // order, as before), plus the number of arcs ending (rightward) at
    // each node — the sweep uses the counts to pop its stack from the top
    // instead of rescanning it.
    let mut longest_right: Vec<Option<EdgeId>> = vec![None; n];
    let mut longest_left: Vec<Option<EdgeId>> = vec![None; n];
    let mut best_r_pos: Vec<usize> = vec![0; n];
    let mut best_l_pos: Vec<usize> = vec![0; n];
    let mut ends_at: Vec<u32> = vec![0; n];
    for e in 0..m {
        if is_path_edge[e] {
            continue;
        }
        let edge = g.edge(e);
        let (a, b) =
            if positions[edge.u] < positions[edge.v] { (edge.u, edge.v) } else { (edge.v, edge.u) };
        al[e] = a as u32;
        ar[e] = b as u32;
        ends_at[b] += 1;
        if longest_right[a].is_none() || positions[b] > best_r_pos[a] {
            longest_right[a] = Some(e);
            best_r_pos[a] = positions[b];
        }
        if longest_left[b].is_none() || positions[a] < best_l_pos[b] {
            longest_left[b] = Some(e);
            best_l_pos[b] = positions[a];
        }
    }
    let name_of = |e: EdgeId| -> (Tag, Tag) { (tags[al[e] as usize], tags[ar[e] as usize]) };
    // Sweep left to right with an arc stack.
    let mut arcs: Vec<Option<ArcLabel>> = vec![None; m];
    let mut above: Vec<AboveLabel> = vec![AboveLabel { above: None }; n];
    let mut gaps: Vec<Option<ArcName>> = vec![None; m];
    let mut stack: Vec<EdgeId> = Vec::new();
    let mut starting: Vec<(usize, EdgeId)> = Vec::new();
    for &w in path_order {
        // Pop (extract) arcs ending at w. On properly nested instances
        // they sit on top of the stack; buried arcs (crossings) need the
        // full rescan, which keeps the remaining order exactly as a
        // `retain` would.
        let mut to_pop = ends_at[w];
        while to_pop > 0 && stack.last().is_some_and(|&e| ar[e] as usize == w) {
            stack.pop();
            to_pop -= 1;
        }
        if to_pop > 0 {
            stack.retain(|&e| ar[e] as usize != w);
        }
        // `above(w)`: the innermost arc strictly covering w at this point.
        above[w] = AboveLabel { above: stack.last().map(|&e| name_of(e)) };
        // Push arcs starting at w, longest first (stable on ties, so equal
        // right positions keep incidence order).
        starting.clear();
        for e in g.incident_edges(w) {
            if al[e] as usize == w {
                starting.push((positions[ar[e] as usize], e));
            }
        }
        starting.sort_by_key(|&(p, _)| std::cmp::Reverse(p));
        for &(_, e) in &starting {
            let succ = stack.last().map(|&f| name_of(f));
            arcs[e] = Some(ArcLabel {
                longest_right_of_tail: longest_right[al[e] as usize] == Some(e),
                longest_left_of_head: longest_left[ar[e] as usize] == Some(e),
                name: name_of(e),
                succ,
            });
            stack.push(e);
        }
        // The gap between w and its right path neighbor: innermost arc on
        // the stack after w's pushes.
        if positions[w] + 1 < n {
            let next = path_order[positions[w] + 1];
            if let Some(pe) = g.edge_between(w, next) {
                gaps[pe] = Some(stack.last().map(|&e| name_of(e)));
            }
        }
    }
    NestingLabels { arcs, above, gaps }
}

/// Tamper: forcibly mark `edge` as the longest left arc of its head and
/// clear the mark from the currently marked arc (a minimal cheating move
/// for arcs that violate Observation 2.1).
pub fn force_longest_left(
    labels: &mut NestingLabels,
    g: &Graph,
    positions: &[usize],
    edge: EdgeId,
) {
    let e = g.edge(edge);
    let head = if positions[e.u] > positions[e.v] { e.u } else { e.v };
    for f in g.incident_edges(head) {
        if let Some(l) = labels.arcs[f].as_mut() {
            let fe = g.edge(f);
            let fhead = if positions[fe.u] > positions[fe.v] { fe.u } else { fe.v };
            if fhead == head {
                l.longest_left_of_head = f == edge;
            }
        }
    }
}

/// One arc as seen from a node during the decision: its name, successor
/// name, and whether it is marked longest on this node's side.
#[derive(Debug, Clone, Copy)]
struct SideArc {
    name: (Tag, Tag),
    succ: ArcName,
    longest_here: bool,
    longest_other: bool,
}

/// Reusable buffers for [`check_node_with`]. One scratch serves any
/// number of nodes sequentially; reusing it across a whole verification
/// sweep makes the per-node decision allocation-free on honest runs.
#[derive(Debug, Default)]
pub struct NestingScratch {
    lefts: Vec<SideArc>,
    rights: Vec<SideArc>,
}

impl NestingScratch {
    /// A fresh scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The verifier's nesting checks at node `v` (conditions of §5).
///
/// * `left_nb` / `right_nb` — path neighbors (from the committed path);
/// * `is_left_arc(e)` — the verified orientation: `e`'s other endpoint
///   precedes `v`;
/// * `tags` — the sampled round-2 coins (only `v`'s own and neighbors'
///   entries are read);
/// * `labels` — the prover's round-3 assignment.
#[allow(clippy::too_many_arguments)]
pub fn check_node(
    g: &Graph,
    v: NodeId,
    left_nb: Option<NodeId>,
    right_nb: Option<NodeId>,
    is_path_edge: &[bool],
    is_left_arc: &dyn Fn(EdgeId) -> bool,
    tags: &[Tag],
    labels: &NestingLabels,
    rej: &mut Rejections,
) {
    let mut scratch = NestingScratch::new();
    check_node_with(
        g,
        v,
        left_nb,
        right_nb,
        is_path_edge,
        is_left_arc,
        tags,
        labels,
        rej,
        &mut scratch,
    );
}

/// [`check_node`] with caller-owned scratch buffers — the allocation-free
/// form for sweeping a whole graph node by node.
#[allow(clippy::too_many_arguments)]
pub fn check_node_with(
    g: &Graph,
    v: NodeId,
    left_nb: Option<NodeId>,
    right_nb: Option<NodeId>,
    is_path_edge: &[bool],
    is_left_arc: &dyn Fn(EdgeId) -> bool,
    tags: &[Tag],
    labels: &NestingLabels,
    rej: &mut Rejections,
    scratch: &mut NestingScratch,
) {
    scratch.lefts.clear();
    scratch.rights.clear();
    let NestingScratch { lefts, rights } = scratch;
    for e in g.incident_edges(v) {
        if is_path_edge.get(e) != Some(&false) {
            if is_path_edge.get(e).is_none() {
                rej.reject_malformed(v, "nest: truncated path-edge table");
                return;
            }
            continue;
        }
        let Some(l) = labels.arcs.get(e).copied().flatten() else {
            rej.reject_malformed(v, "nest: unlabeled or truncated arc");
            return;
        };
        let u = g.edge(e).other(v);
        let left = is_left_arc(e);
        // Name must match the sampled tags (own tag and the neighbor's tag,
        // both visible to v).
        let (Some(&tu), Some(&tv)) = (tags.get(u), tags.get(v)) else {
            rej.reject_malformed(v, "nest: missing sampled tag");
            return;
        };
        let want = if left { (tu, tv) } else { (tv, tu) };
        if l.name != want {
            rej.reject(v, "nest: arc name does not match sampled tags");
            return;
        }
        let sa = SideArc {
            name: l.name,
            succ: l.succ,
            longest_here: if left { l.longest_left_of_head } else { l.longest_right_of_tail },
            longest_other: if left { l.longest_right_of_tail } else { l.longest_left_of_head },
        };
        if left {
            lefts.push(sa);
        } else {
            rights.push(sa);
        }
    }
    // Initial marking checks: exactly one longest per nonempty side; every
    // non-longest arc here must be longest at its other endpoint.
    for (side, arcs) in [("left", &lefts), ("right", &rights)] {
        if arcs.is_empty() {
            continue;
        }
        let marked = arcs.iter().filter(|a| a.longest_here).count();
        if marked != 1 {
            rej.reject_malformed(v, format!("nest: {marked} longest-{side} marks"));
            return;
        }
        for a in arcs.iter() {
            if !a.longest_here && !a.longest_other {
                rej.reject_malformed(v, "nest: non-longest arc unmarked at both ends");
                return;
            }
        }
    }
    let Some(my_above) = labels.above.get(v).map(|a| a.above) else {
        rej.reject_malformed(v, "nest: missing above label");
        return;
    };
    // Conditions (3): the longest arcs on both sides share succ == above(v).
    for arcs in [&lefts, &rights] {
        if let Some(a) = arcs.iter().find(|a| a.longest_here) {
            if a.succ != my_above {
                rej.reject(v, "nest: longest arc succ != above(v)");
                return;
            }
        }
    }
    // Conditions (4)/(5), gap form: each side of a path edge derives the
    // arc covering the gap — the innermost arc on that side (its chain's
    // first element) or, with no arcs on that side, the node's `above`.
    if let Some(u) = right_nb {
        let Some(pe) = g.edge_between(v, u) else {
            rej.reject_malformed(v, "nest: committed path uses a non-edge");
            return;
        };
        let Some(gap) = labels.gaps.get(pe).copied().flatten() else {
            rej.reject_malformed(v, "nest: path edge without gap label");
            return;
        };
        if rights.is_empty() {
            if my_above != gap {
                rej.reject(v, "nest: above differs from right gap");
                return;
            }
        } else if !exists_chain(rights, Some(gap), rej, v, "right") {
            return;
        }
    } else if !rights.is_empty() && !exists_chain(rights, None, rej, v, "right") {
        return;
    }
    if let Some(u) = left_nb {
        let Some(pe) = g.edge_between(v, u) else {
            rej.reject_malformed(v, "nest: committed path uses a non-edge");
            return;
        };
        let Some(gap) = labels.gaps.get(pe).copied().flatten() else {
            rej.reject_malformed(v, "nest: path edge without gap label");
            return;
        };
        if lefts.is_empty() {
            if my_above != gap {
                rej.reject(v, "nest: above differs from left gap");
            }
        } else if !exists_chain(lefts, Some(gap), rej, v, "left") {
        }
    } else if !lefts.is_empty() && !exists_chain(lefts, None, rej, v, "left") {
    }
}

/// Condition (1)+(2): does an ordering `e_1, ..., e_k` of `arcs` exist with
/// `succ(e_i) = name(e_{i+1})`, ending at the longest-marked arc, and (if
/// `first` is given) starting at an arc whose name equals `first`?
///
/// Exact under distinct names; under name collisions a grouped DP searches
/// all orderings, with a visited-state cap (reject beyond — adversarial
/// blow-up only, see module docs).
fn exists_chain(
    arcs: &[SideArc],
    first: Option<ArcName>,
    rej: &mut Rejections,
    v: NodeId,
    side: &str,
) -> bool {
    let Some(longest_idx) = arcs.iter().position(|a| a.longest_here) else {
        // Unreachable through `check_node` (the mark checks run first),
        // but a library caller may feed an arbitrary side: structured
        // reject, never a panic.
        rej.reject_malformed(v, format!("nest: no longest-{side} mark"));
        return false;
    };
    if arcs.len() == 1 {
        // The chain is just the longest arc: condition (4)/(5) pins its name.
        let ok = first.is_none_or(|f| f == Some(arcs[0].name));
        if !ok {
            rej.reject(v, format!("nest: single {side} arc name mismatch with neighbor above"));
        }
        return ok;
    }
    // Fast path: with pairwise-distinct names AND pairwise-distinct succs
    // (the honest case — random tags collide with probability 2^{-Θ(ℓ)}),
    // every DP state has at most one successor, so the grouped search
    // degenerates to a forced backward walk from the longest arc. The walk
    // gives the identical verdict (and, on failure, the identical
    // rejection) in O(k²) scalar work with no allocation; any collision
    // falls through to the exact DP below.
    let k = arcs.len();
    if k <= 128 {
        let mut eligible = true;
        'pairs: for i in 0..k {
            for j in i + 1..k {
                let same_succ =
                    i != longest_idx && j != longest_idx && arcs[i].succ == arcs[j].succ;
                if arcs[i].name == arcs[j].name || same_succ {
                    eligible = false;
                    break 'pairs;
                }
            }
        }
        if eligible {
            let mut placed = 0u128;
            let mut need = arcs[longest_idx].name;
            for step in 0..k - 1 {
                let hit = (0..k).find(|&i| {
                    i != longest_idx && placed & (1 << i) == 0 && arcs[i].succ == Some(need)
                });
                let Some(i) = hit else {
                    rej.reject(v, format!("nest: no valid {side} arc ordering"));
                    return false;
                };
                if step == k - 2 {
                    // e_1: enforce the `first` constraint on its name.
                    if first.is_none_or(|f| f == Some(arcs[i].name)) {
                        return true;
                    }
                    rej.reject(v, format!("nest: no valid {side} arc ordering"));
                    return false;
                }
                placed |= 1 << i;
                need = arcs[i].name;
            }
        }
    }
    // Group the non-longest arcs by (name, succ): chain feasibility only
    // depends on group counts.
    let mut groups: Vec<((Tag, Tag), ArcName, usize)> = Vec::new();
    for (i, a) in arcs.iter().enumerate() {
        if i == longest_idx {
            continue;
        }
        if let Some(gr) = groups.iter_mut().find(|g| g.0 == a.name && g.1 == a.succ) {
            gr.2 += 1;
        } else {
            groups.push((a.name, a.succ, 1));
        }
    }
    // Search backwards from the end: the arc before the longest must have
    // succ == Some(name(longest)); each further backwards step places an
    // arc whose succ equals Some(name of the arc placed after it). The
    // final backwards placement is e_1, whose *name* must match `first`.
    let mut visited: std::collections::HashSet<((Tag, Tag), Vec<usize>)> = Default::default();
    let init_remaining: Vec<usize> = groups.iter().map(|g| g.2).collect();
    let mut stack: Vec<((Tag, Tag), Vec<usize>)> = vec![(arcs[longest_idx].name, init_remaining)];
    let cap = 200_000usize;
    let mut steps = 0usize;
    while let Some((need, remaining)) = stack.pop() {
        steps += 1;
        if steps > cap {
            rej.reject(v, format!("nest: {side} ordering search exceeded cap"));
            return false;
        }
        if !visited.insert((need, remaining.clone())) {
            continue;
        }
        let left: usize = remaining.iter().sum();
        for (gi, gr) in groups.iter().enumerate() {
            if remaining[gi] == 0 {
                continue;
            }
            if gr.1 != Some(need) {
                continue; // the arc's succ must name the arc placed after it
            }
            if left == 1 {
                // Placing e_1: enforce the `first` constraint.
                if first.is_none_or(|f| f == Some(gr.0)) {
                    return true;
                }
                continue;
            }
            let mut rem2 = remaining.clone();
            rem2[gi] -= 1;
            stack.push((gr.0, rem2));
        }
    }
    rej.reject(v, format!("nest: no valid {side} arc ordering"));
    false
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_graph::gen::outerplanar::random_path_outerplanar;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn run_nesting(
        g: &Graph,
        path: &[NodeId],
        tamper: impl Fn(&mut NestingLabels),
        seed: u64,
    ) -> bool {
        let n = g.n();
        let mut positions = vec![0usize; n];
        for (i, &v) in path.iter().enumerate() {
            positions[v] = i;
        }
        let mut is_path_edge = vec![false; g.m()];
        for w in path.windows(2) {
            is_path_edge[g.edge_between(w[0], w[1]).unwrap()] = true;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let tag_bits = 24;
        let tags: Vec<Tag> = (0..n).map(|_| Tag::random(tag_bits, &mut rng)).collect();
        let mut labels = sweep_assign(g, &positions, path, &is_path_edge, &tags);
        tamper(&mut labels);
        let mut rej = Rejections::new();
        for v in 0..n {
            let pos = positions[v];
            let left_nb = if pos > 0 { Some(path[pos - 1]) } else { None };
            let right_nb = if pos + 1 < n { Some(path[pos + 1]) } else { None };
            let is_left = |e: EdgeId| positions[g.edge(e).other(v)] < pos;
            check_node(g, v, left_nb, right_nb, &is_path_edge, &is_left, &tags, &labels, &mut rej);
        }
        !rej.any()
    }

    #[test]
    fn honest_nested_instances_accepted() {
        let mut rng = SmallRng::seed_from_u64(71);
        for n in [2usize, 3, 5, 12, 40, 120] {
            for _ in 0..4 {
                let inst = random_path_outerplanar(n, 0.7, &mut rng);
                let seed = rng.gen();
                assert!(run_nesting(&inst.graph, &inst.path, |_| {}, seed), "n = {n}");
            }
        }
    }

    #[test]
    fn fan_instance_accepted() {
        let mut rng = SmallRng::seed_from_u64(72);
        let inst = pdip_graph::gen::outerplanar::fan_path_outerplanar(30, &mut rng);
        for seed in 0..10 {
            assert!(run_nesting(&inst.graph, &inst.path, |_| {}, seed));
        }
    }

    #[test]
    fn crossing_arcs_rejected() {
        // Path 0-1-2-3-4 with crossing arcs (0,2) and (1,4): with the path
        // *fixed as input*, the nesting stage must reject (whp).
        let mut g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        g.add_edge(0, 2);
        g.add_edge(1, 4);
        let path = vec![0, 1, 2, 3, 4];
        let mut accepted = 0;
        for seed in 0..200 {
            if run_nesting(&g, &path, |_| {}, seed) {
                accepted += 1;
            }
        }
        assert!(accepted <= 4, "crossing accepted {accepted}/200");
    }

    #[test]
    fn crossing_with_forced_marks_rejected() {
        let mut g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let cross1 = g.add_edge(0, 3);
        g.add_edge(2, 5);
        let path = vec![0, 1, 2, 3, 4, 5];
        let mut positions = vec![0usize; 6];
        for (i, &v) in path.iter().enumerate() {
            positions[v] = i;
        }
        let mut accepted = 0;
        for seed in 0..200 {
            if run_nesting(
                &g,
                &path,
                |labels| force_longest_left(labels, &g, &positions, cross1),
                seed,
            ) {
                accepted += 1;
            }
        }
        assert!(accepted <= 4, "forced-mark cheat accepted {accepted}/200");
    }

    #[test]
    fn tampered_succ_rejected() {
        let mut rng = SmallRng::seed_from_u64(73);
        let inst = random_path_outerplanar(30, 0.8, &mut rng);
        let arc = (0..inst.graph.m()).find(|&e| {
            // a non-path edge
            let edge = inst.graph.edge(e);
            let pu = inst.path.iter().position(|&x| x == edge.u).unwrap();
            let pv = inst.path.iter().position(|&x| x == edge.v).unwrap();
            pu.abs_diff(pv) > 1
        });
        let Some(arc) = arc else { return };
        let mut rejected = 0;
        for seed in 0..50 {
            let ok = run_nesting(
                &inst.graph,
                &inst.path,
                |labels| {
                    if let Some(l) = labels.arcs[arc].as_mut() {
                        l.succ = Some((Tag::zero(24), Tag::zero(24)));
                    }
                },
                seed,
            );
            if !ok {
                rejected += 1;
            }
        }
        assert!(rejected >= 45, "tampered succ rejected only {rejected}/50");
    }
}
