//! Multiset equality by polynomial identity testing (Lemma 2.6).
//!
//! Each node of a rooted aggregation segment (a block path or a spanning
//! tree) holds two local multisets `S1(v)`, `S2(v)`; the task is to decide
//! whether the global multiset unions agree. The segment root samples a
//! point `z`, the prover assigns every node `z` plus the subtree
//! evaluations `φ_{S1^v}(z)`, `φ_{S2^v}(z)` over 𝔽_p, and each node checks
//! its value against its children's ("aggregation up the tree", KKP10
//! Lemma 4.4). The root compares the two totals. Soundness `deg/p`.
//!
//! This module works on *segment-local* indices `0..k`; callers embed the
//! segment into the graph (a block of the LR-sorting path, the committed
//! Hamiltonian path, a sub-ear, ...).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use pdip_core::Rejections;
use pdip_field::{multiset_poly_eval, Fp};
use pdip_obs::{counter, span, Recorder, SpanId};

/// The prover's message to one segment node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsMsg {
    /// Echo of the root's challenge.
    pub z: u64,
    /// `φ_{S1^v}(z)`: evaluation over the multiset union of `v`'s subtree.
    pub a1: u64,
    /// `φ_{S2^v}(z)` likewise.
    pub a2: u64,
}

/// The multiset-equality sub-protocol over a fixed field.
#[derive(Debug, Clone, Copy)]
pub struct MultisetEq {
    field: Fp,
}

impl MultisetEq {
    /// Creates the sub-protocol over 𝔽_p.
    pub fn new(field: Fp) -> Self {
        MultisetEq { field }
    }

    /// The field in use.
    pub fn field(&self) -> Fp {
        self.field
    }

    /// Message size in bits (three field elements).
    pub fn msg_bits(&self) -> usize {
        3 * self.field.element_bits()
    }

    /// Honest prover: computes all subtree evaluations for a segment of
    /// size `k` with parent pointers `parent[i]` (local indices; exactly
    /// one root) and per-node multisets `s1`, `s2`.
    ///
    /// The accessors *borrow* each node's multiset (no per-call clones),
    /// and the aggregation is a single bottom-up pass: every node's own
    /// multiset is fingerprinted exactly once
    /// ([`pdip_field::multiset_poly_eval`], division-free), then each
    /// node's finished product folds into its parent as soon as all its
    /// children are folded — O(k + Σ|S(v)|) field operations total,
    /// independent of the tree depth.
    ///
    /// # Panics
    /// Panics if the parent pointers are cyclic.
    pub fn honest_response<'s>(
        &self,
        parent: &[Option<usize>],
        s1: impl Fn(usize) -> &'s [u64],
        s2: impl Fn(usize) -> &'s [u64],
        z: u64,
    ) -> Vec<MsMsg> {
        let k = parent.len();
        let f = &self.field;
        let mut a1: Vec<u64> =
            (0..k).map(|i| multiset_poly_eval(f, s1(i).iter().copied(), z)).collect();
        let mut a2: Vec<u64> =
            (0..k).map(|i| multiset_poly_eval(f, s2(i).iter().copied(), z)).collect();
        // One bottom-up pass (Kahn order over the parent forest): a node
        // is ready once every child has folded into it; fold it into its
        // parent and decrement the parent's pending count.
        let mut pending = vec![0usize; k];
        for i in 0..k {
            if let Some(p) = parent[i] {
                pending[p] += 1;
            }
        }
        let mut ready: Vec<usize> = (0..k).filter(|&i| pending[i] == 0).collect();
        let mut folded = 0usize;
        while let Some(i) = ready.pop() {
            folded += 1;
            if let Some(p) = parent[i] {
                a1[p] = f.mul(a1[p], a1[i]);
                a2[p] = f.mul(a2[p], a2[i]);
                pending[p] -= 1;
                if pending[p] == 0 {
                    ready.push(p);
                }
            }
        }
        assert!(folded == k, "cyclic parents");
        (0..k).map(|i| MsMsg { z, a1: a1[i], a2: a2[i] }).collect()
    }

    /// [`MultisetEq::honest_response`] under a Lemma 2.6 span with
    /// `segment_len` / `msg_bits` counters. The hot one-pass
    /// implementation is untouched; with a disabled recorder this is
    /// the same call (the PR-2 bench numbers measure the inner fn).
    pub fn honest_response_traced<'s>(
        &self,
        parent: &[Option<usize>],
        s1: impl Fn(usize) -> &'s [u64],
        s2: impl Fn(usize) -> &'s [u64],
        z: u64,
        rec: &dyn Recorder,
    ) -> Vec<MsMsg> {
        let id = SpanId::new("lemma2.6/multiset-eq");
        let _g = span(rec, 0, id);
        counter(rec, 0, id, "segment_len", parent.len() as u64);
        counter(rec, 0, id, "msg_bits", self.msg_bits() as u64);
        self.honest_response(parent, s1, s2, z)
    }

    /// The verifier check at segment node `i`.
    ///
    /// * `node` — the graph-level node id (for rejection reporting only);
    /// * `root_coin` — `Some(z)` iff `i` is the segment root that sampled `z`;
    /// * `children` — `i`'s children (local indices);
    /// * `own_s1` / `own_s2` — `i`'s local multisets (its *input*).
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &self,
        node: usize,
        i: usize,
        parent: Option<usize>,
        children: &[usize],
        own_s1: &[u64],
        own_s2: &[u64],
        msgs: &[MsMsg],
        root_coin: Option<u64>,
        rej: &mut Rejections,
    ) {
        let f = &self.field;
        let Some(me) = msgs.get(i).copied() else {
            rej.reject_malformed(node, "mseq: truncated message vector");
            return;
        };
        if me.z >= f.modulus() || me.a1 >= f.modulus() || me.a2 >= f.modulus() {
            rej.reject_malformed(node, "mseq: message not reduced mod p");
            return;
        }
        if let Some(z) = root_coin {
            if me.z != z {
                rej.reject(node, "mseq: root challenge ignored");
                return;
            }
        }
        if let Some(p) = parent {
            if msgs.get(p).map(|m| m.z) != Some(me.z) {
                rej.reject(node, "mseq: challenge differs from parent");
                return;
            }
        }
        // Recompute own contribution and fold in children's claims.
        let mut e1 = multiset_poly_eval(f, own_s1.iter().copied(), me.z);
        let mut e2 = multiset_poly_eval(f, own_s2.iter().copied(), me.z);
        for &c in children {
            let Some(cm) = msgs.get(c) else {
                rej.reject_malformed(node, "mseq: child message missing");
                return;
            };
            if cm.z != me.z {
                rej.reject(node, "mseq: challenge differs from a child");
                return;
            }
            e1 = f.mul(e1, cm.a1);
            e2 = f.mul(e2, cm.a2);
        }
        if me.a1 != e1 || me.a2 != e2 {
            rej.reject(node, "mseq: subtree aggregation mismatch");
            return;
        }
        if parent.is_none() && me.a1 != me.a2 {
            rej.reject(node, "mseq: root totals differ (S1 != S2)");
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use pdip_field::smallest_prime_above;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Runs the sub-protocol end to end on a path segment rooted at 0.
    fn run_path(
        s1: Vec<Vec<u64>>,
        s2: Vec<Vec<u64>>,
        tamper: impl Fn(&mut Vec<MsMsg>),
        seed: u64,
    ) -> bool {
        let k = s1.len();
        let f = Fp::new(smallest_prime_above(1 << 16));
        let ms = MultisetEq::new(f);
        let parent: Vec<Option<usize>> =
            (0..k).map(|i| if i == 0 { None } else { Some(i - 1) }).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        let z = rng.gen_range(0..f.modulus());
        let mut msgs = ms.honest_response(&parent, |i| s1[i].as_slice(), |i| s2[i].as_slice(), z);
        tamper(&mut msgs);
        let mut rej = Rejections::new();
        for i in 0..k {
            let children: Vec<usize> = if i + 1 < k { vec![i + 1] } else { vec![] };
            ms.check(
                i,
                i,
                parent[i],
                &children,
                &s1[i],
                &s2[i],
                &msgs,
                if i == 0 { Some(z) } else { None },
                &mut rej,
            );
        }
        !rej.any()
    }

    #[test]
    fn equal_multisets_accepted() {
        let s1 = vec![vec![3, 5], vec![], vec![7, 7], vec![9]];
        let s2 = vec![vec![7], vec![9, 3], vec![5], vec![7]];
        for seed in 0..30 {
            assert!(run_path(s1.clone(), s2.clone(), |_| {}, seed));
        }
    }

    #[test]
    fn unequal_multisets_rejected_whp() {
        let s1 = vec![vec![3, 5], vec![], vec![7, 7], vec![9]];
        let s2 = vec![vec![7], vec![9, 3], vec![5], vec![8]]; // 8 instead of 7
        let mut accepted = 0;
        for seed in 0..300 {
            if run_path(s1.clone(), s2.clone(), |_| {}, seed) {
                accepted += 1;
            }
        }
        // Degree <= 5 difference over a 2^16 field: acceptance ~ 5/65536.
        assert!(accepted <= 2, "accepted {accepted}/300");
    }

    #[test]
    fn multiplicity_difference_rejected() {
        let s1 = vec![vec![4, 4], vec![4]];
        let s2 = vec![vec![4], vec![4]];
        let mut accepted = 0;
        for seed in 0..200 {
            if run_path(s1.clone(), s2.clone(), |_| {}, seed) {
                accepted += 1;
            }
        }
        assert!(accepted <= 2);
    }

    #[test]
    fn tampered_aggregate_rejected() {
        let s1 = vec![vec![1], vec![2], vec![3]];
        let s2 = vec![vec![3], vec![1], vec![2]];
        // Flip one aggregate value: the parent's recomputation catches it,
        // or the node's own check does.
        for seed in 0..20 {
            let ok = run_path(
                s1.clone(),
                s2.clone(),
                |msgs| {
                    msgs[1].a1 = msgs[1].a1.wrapping_add(1) % (1 << 16);
                },
                seed,
            );
            assert!(!ok);
        }
    }

    #[test]
    fn forged_challenge_rejected() {
        let s1 = vec![vec![1], vec![2]];
        let s2 = vec![vec![2], vec![1]];
        for seed in 0..20 {
            let ok = run_path(
                s1.clone(),
                s2.clone(),
                |msgs| {
                    let z2 = (msgs[0].z + 1) % 65537;
                    for m in msgs.iter_mut() {
                        m.z = z2;
                    }
                },
                seed,
            );
            assert!(!ok, "root must catch a replaced challenge");
        }
    }

    #[test]
    fn works_on_star_trees() {
        // Root 0 with 5 leaf children.
        let f = Fp::new(smallest_prime_above(1 << 16));
        let ms = MultisetEq::new(f);
        let parent: Vec<Option<usize>> =
            std::iter::once(None).chain((1..6).map(|_| Some(0))).collect();
        let s1: Vec<Vec<u64>> = vec![vec![10], vec![1], vec![2], vec![3], vec![4], vec![5]];
        let s2: Vec<Vec<u64>> = vec![vec![5], vec![10], vec![4], vec![3], vec![2], vec![1]];
        let z = 12345;
        let msgs = ms.honest_response(&parent, |i| s1[i].as_slice(), |i| s2[i].as_slice(), z);
        let mut rej = Rejections::new();
        let children: Vec<usize> = (1..6).collect();
        ms.check(0, 0, None, &children, &s1[0], &s2[0], &msgs, Some(z), &mut rej);
        for i in 1..6 {
            ms.check(i, i, Some(0), &[], &s1[i], &s2[i], &msgs, None, &mut rej);
        }
        assert!(!rej.any());
    }
}
