//! Shard-by-block-cut-tree verification of the planarity protocol.
//!
//! A graph is planar iff every biconnected component ("block") is planar:
//! blocks meet in at most one (cut) node, and one-point unions of planar
//! embeddings glue into a planar embedding of the whole graph. The
//! [`ShardPlan`] exploits this to verify a multi-million-node instance
//! without ever holding more than one block's protocol state: each block
//! becomes an independent [`Planarity`] run on its own small instance, and
//! the [`ShardCombiner`] folds the per-block results back into one
//! [`RunResult`] — AND of verdicts, rejections absorbed in block order
//! with node ids mapped back to the global graph, per-round proof-size
//! maxima merged with [`SizeStats::merge_shard_max`].
//!
//! Determinism contract: the combined result depends only on the instance,
//! the cheat, and the base seed — never on how blocks are grouped into
//! jobs or how many threads run them. Per-block seeds are keyed by block
//! index ([`job_seed`]), groups are contiguous block ranges on the
//! worker-count-independent chunk grid, and partial combiners are absorbed
//! in chunk order, so `run_grouped(groups, workers, ..)` is byte-identical
//! for every choice of `groups` and `workers` (property-tested in
//! `tests/sharded_equivalence.rs`).

use crate::lr_sorting::Transport;
use crate::path_outerplanar::PopParams;
use crate::planarity::{PlCheat, PlInstance, Planarity};
use pdip_core::par::{chunk_ranges, map_chunks_with};
use pdip_core::{Rejections, RunResult, SizeStats};
use pdip_graph::seed::job_seed;
use pdip_graph::{BiconnectedComponents, EdgeId, Graph, NodeId, RotationSystem};

/// One block of the decomposition, as a self-contained planarity instance
/// with the bookkeeping to map local ids back to the global graph.
#[derive(Debug, Clone)]
pub struct BlockShard {
    /// Position in the plan's block order.
    pub index: usize,
    /// Ascending global node ids; local node `v` is `globals[v]`.
    pub globals: Vec<NodeId>,
    /// Ascending global edge ids; local edge `e` is `edges[e]`.
    pub edges: Vec<EdgeId>,
    /// The block as an instance (local ids), with the witness embedding
    /// restricted from the global one when it exists.
    pub inst: PlInstance,
}

/// The sharded verification plan: one [`BlockShard`] per biconnected
/// component, in decomposition order.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// The shards, in block order.
    pub shards: Vec<BlockShard>,
}

impl ShardPlan {
    /// Decomposes an instance along its block–cut tree.
    ///
    /// Each biconnected component becomes an independent local instance:
    /// nodes relabeled by rank among the block's (ascending) global node
    /// ids, edges added in ascending global edge id order (so local edge
    /// ids are ranks too), and the witness embedding — when the instance
    /// carries one — restricted by filtering each node's rotation to the
    /// block's edges (a sub-rotation of a genus-0 system on a connected
    /// subgraph is genus-0). Per-block ground truth is re-derived with the
    /// LR planarity test, never trusted from the witness.
    ///
    /// An edgeless instance yields a single shard holding the instance
    /// unchanged.
    pub fn decompose(inst: &PlInstance) -> Self {
        let g = &inst.graph;
        if g.m() == 0 {
            let shard = BlockShard {
                index: 0,
                globals: (0..g.n()).collect(),
                edges: Vec::new(),
                inst: inst.clone(),
            };
            return ShardPlan { shards: vec![shard] };
        }
        let bcc = BiconnectedComponents::compute(g);
        let mut shards = Vec::with_capacity(bcc.count());
        for c in 0..bcc.count() {
            let globals = bcc.component_nodes(g, c);
            let mut edges = bcc.components[c].clone();
            edges.sort_unstable();
            let local_of = |v: NodeId| -> NodeId {
                globals.binary_search(&v).unwrap_or_else(|_| unreachable!("node not in block"))
            };
            let mut local = Graph::new(globals.len());
            for &e in &edges {
                let edge = g.edge(e);
                local.add_edge(local_of(edge.u), local_of(edge.v));
            }
            let witness_rho = inst.witness_rho.as_ref().map(|rho| {
                let order = globals
                    .iter()
                    .map(|&v| {
                        rho.order_at(v)
                            .iter()
                            .filter_map(|ge| edges.binary_search(ge).ok())
                            .collect()
                    })
                    .collect();
                RotationSystem::from_orders(&local, order)
            });
            let is_yes = pdip_graph::is_planar(&local);
            shards.push(BlockShard {
                index: c,
                globals,
                edges,
                inst: PlInstance { graph: local, witness_rho, is_yes },
            });
        }
        ShardPlan { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Nodes of the largest shard — the memory high-water mark of a
    /// streamed verification is proportional to this, not to `n`.
    pub fn max_shard_n(&self) -> usize {
        self.shards.iter().map(|s| s.inst.graph.n()).max().unwrap_or(0)
    }

    /// Whether every block is planar (the decomposed ground truth).
    pub fn all_blocks_planar(&self) -> bool {
        self.shards.iter().all(|s| s.inst.is_yes)
    }

    /// Runs every block serially in block order and combines.
    /// Equivalent to `run_grouped(1, 1, ..)`.
    pub fn run(
        &self,
        params: PopParams,
        transport: Transport,
        cheat: Option<PlCheat>,
        seed: u64,
    ) -> RunResult {
        self.run_grouped(1, 1, params, transport, cheat, seed)
    }

    /// Runs the blocks grouped into (at most) `groups` contiguous jobs on
    /// (at most) `workers` threads, and combines the per-block results.
    ///
    /// The output is byte-identical for every `(groups, workers)` choice:
    /// block `i` always runs with seed `job_seed(seed, i)`, groups are
    /// cut on the deterministic chunk grid, and the per-group partial
    /// combiners are folded in group order.
    pub fn run_grouped(
        &self,
        groups: usize,
        workers: usize,
        params: PopParams,
        transport: Transport,
        cheat: Option<PlCheat>,
        seed: u64,
    ) -> RunResult {
        let k = self.shards.len();
        let grain = k.div_ceil(groups.max(1)).max(1);
        debug_assert_eq!(chunk_ranges(k, grain).count(), k.div_ceil(grain));
        let partials = map_chunks_with(workers, k, grain, |range| {
            let mut part = ShardCombiner::new();
            for i in range {
                let shard = &self.shards[i];
                let p = Planarity::new(&shard.inst, params, transport);
                let res = p.run(cheat, job_seed(seed, i as u64));
                part.absorb_block(|v| shard.globals[v], res);
            }
            part
        });
        let mut combined = ShardCombiner::new();
        for part in partials {
            combined.absorb_partial(part);
        }
        combined.finish()
    }
}

/// Folds per-block [`RunResult`]s into the global one.
///
/// Also usable standalone (the streaming E11 driver feeds it block
/// results without ever building a [`ShardPlan`]): absorb blocks in block
/// order, or absorb per-chunk partial combiners in chunk order — both
/// reproduce the serial fold byte for byte, because
/// [`Rejections::absorb`] replays entries through the serial collector
/// and [`SizeStats::merge_shard_max`] is order-insensitive.
#[derive(Debug, Default)]
pub struct ShardCombiner {
    rej: Rejections,
    stats: SizeStats,
    blocks: usize,
}

impl ShardCombiner {
    /// An empty combiner (accepting, zero stats).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of block results absorbed so far (via either absorb path).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Absorbs one block's result; `to_global` maps the block-local node
    /// ids in its rejections back to the global graph.
    pub fn absorb_block(&mut self, to_global: impl Fn(NodeId) -> NodeId, res: RunResult) {
        let items = res.rejections.into_iter().map(|(v, reason)| (to_global(v), reason)).collect();
        self.rej.absorb(Rejections::from_parts(items, res.kinds));
        self.stats.merge_shard_max(&res.stats);
        self.blocks += 1;
    }

    /// Absorbs a partial combiner built over a later contiguous block
    /// range (the parallel merge path).
    pub fn absorb_partial(&mut self, other: ShardCombiner) {
        self.rej.absorb(other.rej);
        self.stats.merge_shard_max(&other.stats);
        self.blocks += other.blocks;
    }

    /// Finalizes: accept iff *every* absorbed block accepted.
    pub fn finish(self) -> RunResult {
        self.rej.into_result(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::no_instances::nonplanar_with_gadget;
    use pdip_graph::gen::planar::random_planar;
    use pdip_graph::{StreamMode, StreamSkeleton, StreamSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn planar_instance(n: usize, seed: u64) -> PlInstance {
        let mut rng = SmallRng::seed_from_u64(seed);
        let gen = random_planar(n, 0.5, &mut rng);
        PlInstance { graph: gen.graph, witness_rho: Some(gen.rho), is_yes: true }
    }

    #[test]
    fn decompose_partitions_edges_and_restricts_witness() {
        let inst = planar_instance(60, 11);
        let plan = ShardPlan::decompose(&inst);
        let total_edges: usize = plan.shards.iter().map(|s| s.edges.len()).sum();
        assert_eq!(total_edges, inst.graph.m(), "blocks partition the edges");
        assert!(plan.all_blocks_planar());
        for s in &plan.shards {
            assert_eq!(s.inst.graph.n(), s.globals.len());
            assert_eq!(s.inst.graph.m(), s.edges.len());
            let rho = s.inst.witness_rho.as_ref().expect("witness restricts to every block");
            assert!(
                rho.is_planar_embedding(&s.inst.graph),
                "restricted witness stays genus-0 on block {}",
                s.index
            );
        }
    }

    #[test]
    fn honest_sharded_run_accepts_planar() {
        for seed in 0..3 {
            let inst = planar_instance(80, 20 + seed);
            let plan = ShardPlan::decompose(&inst);
            assert!(plan.shard_count() >= 1);
            let res = plan.run(PopParams::default(), Transport::Native, None, seed);
            assert!(res.accepted(), "seed {seed}: {:?}", res.rejections.first());
            assert!(res.stats.proof_size() > 0);
        }
    }

    #[test]
    fn sharded_run_rejects_nonplanar_blocks() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = nonplanar_with_gadget(30, 1, true, &mut rng);
        let inst = PlInstance { graph: g, witness_rho: None, is_yes: false };
        let plan = ShardPlan::decompose(&inst);
        assert!(!plan.all_blocks_planar());
        // Detection of the K5 subdivision is probabilistic per seed.
        let caught = (0..8)
            .any(|seed| !plan.run(PopParams::default(), Transport::Native, None, seed).accepted());
        assert!(caught, "no seed in 0..8 rejected the gadget block");
    }

    #[test]
    fn rejection_nodes_are_global_ids() {
        // Two triangles joined by a path; make the far triangle's ids large
        // so a local/global mixup is visible.
        let g = Graph::from_edges(
            8,
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 5)],
        );
        let inst = PlInstance { graph: g, witness_rho: None, is_yes: true };
        let plan = ShardPlan::decompose(&inst);
        // No witness: the per-block honest run uses port-order rotations,
        // which are planar here, so this still accepts — force rejections
        // with a cheat instead.
        let res =
            plan.run(PopParams::default(), Transport::Native, Some(PlCheat::PortOrderFakeTree), 3);
        for &(v, _) in &res.rejections {
            assert!(v < 8, "rejection node {v} is not a global id");
        }
    }

    #[test]
    fn grouping_and_workers_do_not_change_a_byte() {
        let inst = planar_instance(70, 40);
        let plan = ShardPlan::decompose(&inst);
        let base = plan.run_grouped(1, 1, PopParams::default(), Transport::Native, None, 9);
        for (groups, workers) in [(2, 1), (4, 2), (plan.shard_count().max(1), 4), (64, 3)] {
            let other =
                plan.run_grouped(groups, workers, PopParams::default(), Transport::Native, None, 9);
            assert_eq!(other.verdict, base.verdict, "groups={groups} workers={workers}");
            assert_eq!(other.rejections, base.rejections, "groups={groups} workers={workers}");
            assert_eq!(other.kinds, base.kinds, "groups={groups} workers={workers}");
            assert_eq!(other.stats, base.stats, "groups={groups} workers={workers}");
        }
    }

    #[test]
    fn combiner_matches_plan_run_on_streamed_blocks() {
        // The streaming path (per-shard instances straight from the
        // skeleton, no global graph) must produce the same combined result
        // as decomposing the materialized graph... up to block *order*,
        // which both sides fix as "skeleton block order" here.
        let spec =
            StreamSpec { n: 400, shard_n: 64, keep: 0.5, seed: 0xCAFE, mode: StreamMode::Planar };
        let skel = StreamSkeleton::new(spec);
        let mut combiner = ShardCombiner::new();
        for i in 0..skel.shard_count() {
            let shard = skel.shard(i);
            let inst =
                PlInstance { graph: shard.graph, witness_rho: shard.rho, is_yes: shard.planar };
            let p = Planarity::new(&inst, PopParams::default(), Transport::Native);
            let res = p.run(None, job_seed(7, i as u64));
            combiner.absorb_block(|v| skel.to_global(i, v), res);
        }
        assert_eq!(combiner.blocks(), skel.shard_count());
        let streamed = combiner.finish();
        assert!(streamed.accepted(), "{:?}", streamed.rejections.first());
        assert!(streamed.stats.proof_size() > 0);
    }
}
