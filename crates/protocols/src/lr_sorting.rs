//! The LR-sorting protocol (§4 of the paper, Lemmas 4.1 and 4.2).
//!
//! Instance: a directed graph `G` with a directed Hamiltonian path `P`
//! known to the nodes; yes-instances direct every edge left→right along
//! `P`. The protocol runs in 5 interaction rounds with O(log log n)-bit
//! labels:
//!
//! * **P1** — block construction: the prover splits `P` into blocks of
//!   `L = ⌈log₂ n⌉` consecutive nodes, distributes each block's position
//!   `pos(b)` and `pos(b)+1` bitwise (node `i` of the block holds the i-th
//!   most significant bits of both), marks the increment pivot `v_b` (the
//!   least significant 0 of `pos(b)`), classifies every non-path edge as
//!   inner- or outer-block, writes the claimed distinguishing index
//!   `I(pos(b_u), pos(b_v))` on every outer edge, and pre-assigns the
//!   verification-scheme multiplicities.
//! * **V1** — the path head samples `r, r'` ∈ 𝔽_p; each block head samples
//!   an inner-block challenge `r_b` ∈ 𝔽_p.
//! * **P2** — the prover distributes `r, r', r_b`, the cumulative
//!   evaluations `A2 = φ_{x₂(b)}(r)` (left→right), `B1 = φ_{x₁(b)}(r)`
//!   (right→left) for the adjacent-block equality `x₂(b) = x₁(b')`, the
//!   prefix evaluations `PH_i = φ^b_i(r')` of the commitment scheme, and
//!   the committed prefix value `j_e = φ_{I_e−1}(r')` on every outer edge.
//! * **V2** — each block head samples `z₀, z₁` ∈ 𝔽_{p'}.
//! * **P3** — per block, two multiset-equality runs compare `C₁(b)` vs the
//!   multiplicity-expanded `D₁(b)` and `C₀(b)` vs `D₀(b)` (§4.2).
//!
//! Edge labels are carried natively (Lemma 4.1) or simulated through
//! [`crate::edge_labels::EdgeLabelCarrier`] on planar instances
//! (Lemma 4.2).

use crate::edge_labels::EdgeLabelCarrier;
use crate::multiset_eq::{MsMsg, MultisetEq};
use pdip_core::{bits_for_max, capture, trace_stats, Rejections, RunResult, SizeStats};
use pdip_field::{prefix_poly_evals, smallest_prime_above, Fp};
use pdip_graph::gen::lr::LrInstance;
use pdip_graph::{EdgeId, Graph, NodeId};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId, Stopwatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct LrParams {
    /// Soundness exponent: fields have size ≥ log^c n.
    pub c: u32,
    /// Override for the block length (`None` = the paper's ⌈log₂ n⌉;
    /// used by the E8 block-size ablation).
    pub block_len: Option<usize>,
}

impl Default for LrParams {
    fn default() -> Self {
        LrParams { c: 3, block_len: None }
    }
}

/// How edge labels reach the endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Labels are written on edges directly (Lemma 4.1).
    Native,
    /// Labels are folded into node labels via forest decompositions
    /// (Lemma 4.2; requires bounded degeneracy, e.g. planar instances).
    Simulated,
}

/// Cheating-prover strategies for no-instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LrCheat {
    /// Label every reversed edge as inner-block (hopes for an `r_b`
    /// collision across blocks; deterministically caught inside a block).
    ClaimInner,
    /// Label reversed edges as outer with the *true* distinguishing index
    /// (whose bits point the wrong way).
    OuterTrueIndex,
    /// Label reversed edges as outer with a forged index whose bits point
    /// the right way but whose prefixes differ (falls back to the true
    /// index if none exists); commits the tail block's prefix value.
    OuterForgedIndex,
    /// Renumber the two affected blocks' positions so the reversed edge
    /// looks fine, breaking block-adjacency consecutiveness instead.
    SwapBlockPositions,
}

/// All cheat strategies (order matches [`LrSorting::cheat_names`]).
pub const LR_CHEATS: [LrCheat; 4] = [
    LrCheat::ClaimInner,
    LrCheat::OuterTrueIndex,
    LrCheat::OuterForgedIndex,
    LrCheat::SwapBlockPositions,
];

/// Consecutiveness mark relative to the pivot `v_b` (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsecMark {
    /// Strictly left of the pivot: bits of `pos(b)` and `pos(b)+1` agree.
    Left,
    /// The pivot: bit flips 0 → 1.
    Pivot,
    /// Strictly right: bit flips 1 → 0 (trailing ones).
    Right,
}

/// Per-node round-1 label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct R1Node {
    /// 1-based index within the block (1 starts a new block).
    pub idx: usize,
    /// The `idx`-th most significant bit of `pos(b)` (meaningful for `idx <= L`).
    pub x1_bit: bool,
    /// The `idx`-th most significant bit of `pos(b) + 1`.
    pub x2_bit: bool,
    /// Position relative to the increment pivot.
    pub mark: ConsecMark,
    /// Verification-scheme multiplicity for `C0` (if `x1_bit == 0`).
    pub m0: u64,
    /// Verification-scheme multiplicity for `C1` (if `x1_bit == 1`).
    pub m1: u64,
}

/// Per-edge round-1 label (non-path edges only; `None` on path edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum R1Edge {
    /// Endpoints in the same block.
    Inner,
    /// Endpoints in different blocks; carries the claimed distinguishing
    /// index (1-based, MSB first).
    Outer {
        /// The claimed distinguishing index `I(pos(b_u), pos(b_v))`.
        index: usize,
    },
}

/// Per-node round-2 (P2) label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct R2Node {
    /// Echo of the global challenge `r`.
    pub r: u64,
    /// Echo of the global challenge `r'`.
    pub rp: u64,
    /// Echo of this block's inner-edge challenge `r_b`.
    pub rb: u64,
    /// Left→right cumulative `φ` over the `x₂` bits at `r`.
    pub a2: u64,
    /// Right→left cumulative `φ` over the `x₁` bits at `r`.
    pub b1: u64,
    /// Prefix evaluation `φ^b_idx(r')` over the `x₁` bits.
    pub ph: u64,
}

/// Per-edge round-2 label: the committed common-prefix value on outer edges.
pub type R2Edge = u64;

/// Per-node round-3 (P3) label: the two in-block multiset-equality runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct R3Node {
    /// `C1(b)` vs multiplicity-expanded `D1(b)`.
    pub eq1: MsMsg,
    /// `C0(b)` vs multiplicity-expanded `D0(b)`.
    pub eq0: MsMsg,
}

/// Verifier coins of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LrCoins {
    /// V1: global challenge (used only by the path head).
    pub r: u64,
    /// V1: global prefix challenge (path head).
    pub rp: u64,
    /// V1: inner-block challenge (block heads).
    pub rb: u64,
    /// V2: verification challenge for the `C1` equality (block heads).
    pub z1: u64,
    /// V2: verification challenge for the `C0` equality (block heads).
    pub z0: u64,
}

/// The full prover transcript of one run.
#[derive(Debug, Clone)]
pub struct LrTranscript {
    /// Round-1 node labels.
    pub r1_node: Vec<R1Node>,
    /// Round-1 edge labels (`None` on path edges).
    pub r1_edge: Vec<Option<R1Edge>>,
    /// Round-2 node labels.
    pub r2_node: Vec<R2Node>,
    /// Round-2 edge labels (`None` on path/inner edges).
    pub r2_edge: Vec<Option<R2Edge>>,
    /// Round-3 node labels.
    pub r3_node: Vec<R3Node>,
}

/// Reusable working buffers for the per-node decision sweep: the sorted
/// index→commitment maps and the four reconstructed multisets. One scratch
/// serves the whole sweep, so warm nodes allocate nothing.
#[derive(Debug, Default)]
struct DecideScratch {
    head_pairs: Vec<(usize, u64)>,
    tail_pairs: Vec<(usize, u64)>,
    s1_head: Vec<u64>,
    s1_tail: Vec<u64>,
    d_head: Vec<u64>,
    d_tail: Vec<u64>,
}

/// The LR-sorting protocol bound to an instance.
#[derive(Debug)]
pub struct LrSorting<'a> {
    inst: &'a LrInstance,
    transport: Transport,
    /// Block length L.
    pub block_len: usize,
    /// The base field 𝔽_p, `p > log^c n`.
    pub field_p: Fp,
    /// The verification field 𝔽_{p'}, `p' > p * L`.
    pub field_pp: Fp,
    // Node-local path inputs (part of the LR-sorting task input).
    left_path: Vec<Option<NodeId>>,
    right_path: Vec<Option<NodeId>>,
    is_path_edge: Vec<bool>,
}

impl<'a> LrSorting<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a LrInstance, params: LrParams, transport: Transport) -> Self {
        let n = inst.graph.n();
        let ln = (n.max(2) as f64).log2();
        let mut block_len = params.block_len.unwrap_or_else(|| (ln.ceil() as usize).max(1));
        // A block of length L must be able to hold pos(b) + 1 in L bits:
        // bump L until ⌊n/L⌋ + 1 ≤ 2^L (only matters for tiny n or
        // deliberately small ablation block lengths).
        while n / block_len.max(1) + 1 > 1usize << block_len.min(60) {
            block_len += 1;
        }
        let p = smallest_prime_above((ln.powi(params.c as i32) as u64).max(17));
        let pp = smallest_prime_above(p * block_len as u64 + 1);
        let mut left_path = vec![None; n];
        let mut right_path = vec![None; n];
        for w in inst.path.windows(2) {
            right_path[w[0]] = Some(w[1]);
            left_path[w[1]] = Some(w[0]);
        }
        let mut is_path_edge = vec![false; inst.graph.m()];
        for &e in &inst.path_edges {
            is_path_edge[e] = true;
        }
        LrSorting {
            inst,
            transport,
            block_len,
            field_p: Fp::new(p),
            field_pp: Fp::new(pp),
            left_path,
            right_path,
            is_path_edge,
        }
    }

    /// Number of interaction rounds.
    pub fn rounds(&self) -> usize {
        5
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// Block id of each node under the honest block construction:
    /// consecutive runs of `L` path nodes, the remainder merged into the
    /// last block.
    fn honest_blocks(&self) -> (Vec<usize>, usize) {
        let n = self.g().n();
        let l = self.block_len;
        let nblocks = (n / l).max(1);
        let mut block = vec![0usize; n];
        for (posn, &v) in self.inst.path.iter().enumerate() {
            block[v] = (posn / l).min(nblocks - 1);
        }
        (block, nblocks)
    }

    /// Honest round-1 labels, optionally applying a cheat.
    fn round1(&self, cheat: Option<LrCheat>) -> (Vec<R1Node>, Vec<Option<R1Edge>>) {
        let g = self.g();
        let n = g.n();
        let l = self.block_len;
        let (block_of, nblocks) = self.honest_blocks();
        // Block positions, possibly tampered by SwapBlockPositions.
        let mut pos_of_block: Vec<usize> = (0..nblocks).collect();
        if cheat == Some(LrCheat::SwapBlockPositions) {
            if let Some(e) = self.first_reversed_edge() {
                let (t, h) = (self.tail(e), self.head(e));
                let (bt, bh) = (block_of[t], block_of[h]);
                if bt != bh {
                    pos_of_block.swap(bt, bh);
                }
            }
        }
        let pos = self.inst.positions();
        // Per-block bit material, computed once per block instead of once
        // per node: every node of block b reads the same x1/x2 bitstrings
        // (the L-bit MSB-first forms of pos(b) and pos(b)+1, i.e. bit idx
        // is bit `cap - idx` of the word) and the same pivot jb (the least
        // significant 0 of x1 = cap minus the trailing-ones count).
        let mut cap_of = vec![0usize; nblocks];
        let mut jb_of = vec![0usize; nblocks];
        for b in 0..nblocks {
            let cap = self.block_cap(b);
            cap_of[b] = cap;
            let to = pos_of_block[b].trailing_ones() as usize;
            jb_of[b] = if to >= cap { 1 } else { cap - to };
        }
        let bit_at = |x: usize, shift: usize| shift < usize::BITS as usize && (x >> shift) & 1 == 1;
        let mut nodes = Vec::with_capacity(n);
        for v in 0..n {
            let b = block_of[v];
            let idx = pos[v] - self.block_start(b) + 1;
            let cap = cap_of[b];
            let jb = jb_of[b];
            let (x1b, x2b) = if idx <= cap {
                let s = cap - idx;
                (bit_at(pos_of_block[b], s), bit_at(pos_of_block[b] + 1, s))
            } else {
                (false, false)
            };
            let mark = if idx < jb || idx > cap {
                ConsecMark::Left
            } else if idx == jb {
                ConsecMark::Pivot
            } else {
                ConsecMark::Right
            };
            nodes.push(R1Node { idx, x1_bit: x1b, x2_bit: x2b, mark, m0: 0, m1: 0 });
        }
        // Edge classification. The distinguishing index (first differing
        // bit, MSB first) comes straight from the XOR of the two block
        // positions: bit shift `s` is index `cap - s`, so the smallest
        // index is the highest set bit of the masked XOR.
        let top_index = |word: u64, cap: usize| cap - (63 - word.leading_zeros() as usize);
        let mut edges: Vec<Option<R1Edge>> = vec![None; g.m()];
        for e in 0..g.m() {
            if self.is_path_edge[e] {
                continue;
            }
            let (t, h) = (self.tail(e), self.head(e));
            let (bt, bh) = (block_of[t], block_of[h]);
            let reversed = pos[t] > pos[h];
            #[allow(clippy::if_same_then_else)] // distinct honest/cheat cases
            let label = if bt == bh && !(reversed && cheat.is_some()) {
                R1Edge::Inner
            } else if reversed && cheat == Some(LrCheat::ClaimInner) {
                R1Edge::Inner
            } else {
                // Outer: distinguishing index of the two block positions.
                let (pt, ph_) = (pos_of_block[bt] as u64, pos_of_block[bh] as u64);
                let cap = cap_of[bt].min(cap_of[bh]);
                let mask = if cap >= 64 { u64::MAX } else { (1u64 << cap) - 1 };
                let diff = (pt ^ ph_) & mask;
                let index = match cheat {
                    Some(LrCheat::OuterForgedIndex) if reversed => {
                        // An index where tail-bit = 0, head-bit = 1.
                        let t0h1 = !pt & ph_ & mask;
                        if t0h1 != 0 {
                            top_index(t0h1, cap)
                        } else if diff != 0 {
                            top_index(diff, cap)
                        } else {
                            1
                        }
                    }
                    _ if diff != 0 => top_index(diff, cap),
                    _ => 1,
                };
                R1Edge::Outer { index }
            };
            edges[e] = Some(label);
        }
        // Multiplicities: count C-side pairs per (block, index, side). The
        // pair value j is determined later (depends on r'), but the honest
        // multiset multiplicity only depends on (index, side) because all
        // honest pairs with the same index share the same j. We count the
        // *distinct-per-node* pairs, i.e. per node per index per side at
        // most one — indices fit in L ≤ 64 bits, so a pair of per-node
        // bitmasks replaces the hash sets.
        let mut m1 = vec![vec![0u64; l * 2 + 2]; nblocks];
        let mut m0 = vec![vec![0u64; l * 2 + 2]; nblocks];
        for v in 0..n {
            let mut seen_head = 0u64;
            let mut seen_tail = 0u64;
            for e in g.incident_edges(v) {
                if let Some(R1Edge::Outer { index }) = edges[e] {
                    let bit = 1u64 << (index - 1);
                    if self.head(e) == v {
                        if seen_head & bit == 0 {
                            seen_head |= bit;
                            m1[block_of[v]][index] += 1;
                        }
                    } else if seen_tail & bit == 0 {
                        seen_tail |= bit;
                        m0[block_of[v]][index] += 1;
                    }
                }
            }
        }
        for v in 0..n {
            let b = block_of[v];
            let idx = nodes[v].idx;
            if idx <= self.block_cap(b) {
                if nodes[v].x1_bit {
                    nodes[v].m1 = m1[b][idx];
                } else {
                    nodes[v].m0 = m0[b][idx];
                }
            }
        }
        (nodes, edges)
    }

    /// Capacity (number of position bits) of block `b`: `min(L, |b|)`.
    fn block_cap(&self, b: usize) -> usize {
        self.block_len.min(self.block_size(b))
    }

    fn block_size(&self, b: usize) -> usize {
        let n = self.g().n();
        let l = self.block_len;
        let nblocks = (n / l).max(1);
        if b + 1 < nblocks {
            l
        } else {
            n - (nblocks - 1) * l
        }
    }

    fn block_start(&self, b: usize) -> usize {
        b * self.block_len
    }

    fn tail(&self, e: EdgeId) -> NodeId {
        self.inst.orientation.tail(self.g(), e)
    }

    fn head(&self, e: EdgeId) -> NodeId {
        self.inst.orientation.head(self.g(), e)
    }

    fn first_reversed_edge(&self) -> Option<EdgeId> {
        let pos = self.inst.positions();
        (0..self.g().m()).find(|&e| pos[self.tail(e)] > pos[self.head(e)])
    }

    /// Honest round-2 labels given round-1 labels and coins.
    fn round2(
        &self,
        r1n: &[R1Node],
        r1e: &[Option<R1Edge>],
        coins: &[LrCoins],
        cheat: Option<LrCheat>,
    ) -> (Vec<R2Node>, Vec<Option<R2Edge>>) {
        let g = self.g();
        let n = g.n();
        let fp = self.field_p;
        let head_node = self.inst.path[0];
        let (r, rp) = (coins[head_node].r, coins[head_node].rp);
        let (block_of, nblocks) = self.honest_blocks();
        // r_b per block from each block head's coins.
        let mut rb_of_block = vec![0u64; nblocks];
        for v in 0..n {
            if r1n[v].idx == 1 {
                rb_of_block[block_of[v]] = coins[v].rb;
            }
        }
        // Per-block bit vectors (by idx) reconstructed from R1 labels so
        // that tampered R1 stays consistent with R2.
        let mut x1_bits: Vec<Vec<bool>> =
            (0..nblocks).map(|b| vec![false; self.block_cap(b)]).collect();
        let mut x2_bits = x1_bits.clone();
        for v in 0..n {
            let b = block_of[v];
            let idx = r1n[v].idx;
            if idx <= self.block_cap(b) {
                x1_bits[b][idx - 1] = r1n[v].x1_bit;
                x2_bits[b][idx - 1] = r1n[v].x2_bit;
            }
        }
        // Cumulatives per block. The x1 prefix evaluations at r' are kept
        // per block (`prefp_of`) so the outer-edge commitment loop below
        // reads cached values instead of re-evaluating the prefix
        // polynomial twice per edge.
        let mut a2 = vec![0u64; n];
        let mut b1 = vec![0u64; n];
        let mut ph = vec![0u64; n];
        let mut prefp_of: Vec<Vec<u64>> = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let cap = self.block_cap(b);
            let size = self.block_size(b);
            // Nodes of the block in idx order.
            let start = self.block_start(b);
            let pref2 = prefix_poly_evals(&fp, &x2_bits[b], r);
            let prefp = prefix_poly_evals(&fp, &x1_bits[b], rp);
            // Right-to-left suffix products over the x1 bits at r:
            // suff[i] = prod over { j >= i+1 : x1[j-1] } of (j - r).
            let mut suff1 = vec![1u64; cap + 1];
            for i in (0..cap).rev() {
                let fac = if x1_bits[b][i] { fp.sub((i + 1) as u64, r) } else { 1 };
                suff1[i] = fp.mul(suff1[i + 1], fac);
            }
            for i in 0..size {
                let v = self.inst.path[start + i];
                let idx = i + 1;
                let j = idx.min(cap);
                a2[v] = pref2[j];
                ph[v] = prefp[j];
                // Right-to-left cumulative of x1: product over bits >= idx.
                b1[v] = if idx > cap { 1 } else { suff1[idx - 1] };
            }
            prefp_of.push(prefp);
        }
        let r2n: Vec<R2Node> = (0..n)
            .map(|v| R2Node {
                r,
                rp,
                rb: rb_of_block[block_of[v]],
                a2: a2[v],
                b1: b1[v],
                ph: ph[v],
            })
            .collect();
        // Outer-edge commitments.
        let mut r2e: Vec<Option<R2Edge>> = vec![None; g.m()];
        for e in 0..g.m() {
            if let Some(R1Edge::Outer { index }) = r1e[e] {
                let (t, h) = (self.tail(e), self.head(e));
                let (bt, bh) = (block_of[t], block_of[h]);
                let it = (index - 1).min(self.block_cap(bt));
                let ih = (index - 1).min(self.block_cap(bh));
                let jt = prefp_of[bt][it];
                let jh = prefp_of[bh][ih];
                // Honest: jt == jh (common prefix). Cheats commit the value
                // that passes the tail block's check.
                let j = match cheat {
                    Some(LrCheat::OuterForgedIndex) | Some(LrCheat::OuterTrueIndex) => jt,
                    _ => jh,
                };
                r2e[e] = Some(j);
            }
        }
        (r2n, r2e)
    }

    /// Honest round-3 labels: two multiset equalities per block.
    fn round3(
        &self,
        r1n: &[R1Node],
        r1e: &[Option<R1Edge>],
        r2n: &[R2Node],
        r2e: &[Option<R2Edge>],
        coins: &[LrCoins],
        rec: &dyn Recorder,
    ) -> Vec<R3Node> {
        let g = self.g();
        let n = g.n();
        let ms = MultisetEq::new(self.field_pp);
        let (_block_of, nblocks) = self.honest_blocks();
        let mut out =
            vec![
                R3Node { eq1: MsMsg { z: 0, a1: 0, a2: 0 }, eq0: MsMsg { z: 0, a1: 0, a2: 0 } };
                n
            ];
        // Arena buffers reused across blocks: the four per-node multisets
        // live in flat value arrays with per-node offset tables (node i of
        // the block owns flat[off[i]..off[i+1]]), so the inner loop does no
        // per-node allocation.
        let mut parent: Vec<Option<usize>> = Vec::new();
        let mut flats: [Vec<u64>; 4] = Default::default();
        let mut offs: [Vec<usize>; 4] = Default::default();
        for b in 0..nblocks {
            let size = self.block_size(b);
            let start = self.block_start(b);
            let headv = self.inst.path[start];
            let (z1, z0) = (coins[headv].z1, coins[headv].z0);
            parent.clear();
            parent.extend((0..size).map(|i| if i == 0 { None } else { Some(i - 1) }));
            for k in 0..4 {
                flats[k].clear();
                offs[k].clear();
                offs[k].push(0);
            }
            {
                let [c1, c0, d1, d0] = &mut flats;
                let [c1o, c0o, d1o, d0o] = &mut offs;
                for i in 0..size {
                    let v = self.inst.path[start + i];
                    self.c_sides_into(v, r1e, r2e, c1, c0);
                    self.d_side_into(v, true, r1n, r2n, d1);
                    self.d_side_into(v, false, r1n, r2n, d0);
                    c1o.push(c1.len());
                    c0o.push(c0.len());
                    d1o.push(d1.len());
                    d0o.push(d0.len());
                }
            }
            let [c1, c0, d1, d0] = &flats;
            let [c1o, c0o, d1o, d0o] = &offs;
            let msgs1 = ms.honest_response_traced(
                &parent,
                |i| &c1[c1o[i]..c1o[i + 1]],
                |i| &d1[d1o[i]..d1o[i + 1]],
                z1,
                rec,
            );
            let msgs0 = ms.honest_response_traced(
                &parent,
                |i| &c0[c0o[i]..c0o[i + 1]],
                |i| &d0[d0o[i]..d0o[i + 1]],
                z0,
                rec,
            );
            for i in 0..size {
                let v = self.inst.path[start + i];
                out[v] = R3Node { eq1: msgs1[i], eq0: msgs0[i] };
            }
        }
        out
    }

    /// Encodes a pair `(index, j)` as a field element of 𝔽_{p'}.
    fn encode_pair(&self, index: usize, j: u64) -> u64 {
        (index as u64 - 1) * self.field_p.modulus() + j
    }

    /// The C-side multiset of node `v`: the *set* of pairs on its incident
    /// outer edges where `v` is the head (`head_side = true`) or the tail.
    /// Node-local: reads only `v`'s incident edge labels.
    /// The C-side multiset appended to a caller-owned buffer: the new
    /// tail of `out` holds the sorted distinct pairs (the same ascending
    /// order the set-based construction produced), with no allocation when
    /// `out` has capacity.
    #[cfg_attr(not(test), allow(dead_code))] // scalar reference for the differential test
    fn c_side_into(
        &self,
        v: NodeId,
        head_side: bool,
        r1e: &[Option<R1Edge>],
        r2e: &[Option<R2Edge>],
        out: &mut Vec<u64>,
    ) {
        let g = self.g();
        let start = out.len();
        for e in g.incident_edges(v) {
            if let Some(R1Edge::Outer { index }) = r1e[e] {
                let mine = (self.head(e) == v) == head_side;
                if mine {
                    if let Some(j) = r2e[e] {
                        out.push(self.encode_pair(index.max(1), j));
                    }
                }
            }
        }
        sort_dedup_tail(out, start);
    }

    /// Both C-side multisets of `v` in a single incidence scan: head-side
    /// pairs append to `out_head`, tail-side pairs to `out_tail`, then each
    /// fresh tail is sorted + deduped — the same result as one
    /// [`LrSorting::c_side_into`] call per side at half the scan cost.
    fn c_sides_into(
        &self,
        v: NodeId,
        r1e: &[Option<R1Edge>],
        r2e: &[Option<R2Edge>],
        out_head: &mut Vec<u64>,
        out_tail: &mut Vec<u64>,
    ) {
        let g = self.g();
        let start_h = out_head.len();
        let start_t = out_tail.len();
        for e in g.incident_edges(v) {
            if let Some(R1Edge::Outer { index }) = r1e[e] {
                if let Some(j) = r2e[e] {
                    let out = if self.head(e) == v { &mut *out_head } else { &mut *out_tail };
                    out.push(self.encode_pair(index.max(1), j));
                }
            }
        }
        sort_dedup_tail(out_head, start_h);
        sort_dedup_tail(out_tail, start_t);
    }

    /// The D-side multiset of node `v`: `m1` (or `m0`) copies of
    /// `(idx, φ_{idx−1}(r'))`, where the prefix value is read from the left
    /// block-neighbor's round-2 label. Node-local.
    fn d_side_into(
        &self,
        v: NodeId,
        one_side: bool,
        r1n: &[R1Node],
        r2n: &[R2Node],
        out: &mut Vec<u64>,
    ) {
        let me = r1n[v];
        // Bit capacity is min(L, block size); it is below the index only
        // when idx > L (blocks smaller than L exist only in the single-
        // block case, where every index fits).
        if me.idx > self.block_len {
            return;
        }
        if one_side != me.x1_bit {
            return;
        }
        let mult = if one_side { me.m1 } else { me.m0 };
        if mult == 0 {
            return;
        }
        let prev_ph = if me.idx == 1 {
            1
        } else {
            match self.left_path[v] {
                Some(u) => r2n[u].ph,
                None => 1,
            }
        };
        let enc = self.encode_pair(me.idx, prev_ph);
        let new_len = out.len() + mult as usize;
        out.resize(new_len, enc);
    }

    /// Runs the whole protocol and decides.
    pub fn run(&self, cheat: Option<LrCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`LrSorting::run`] with instrumentation: prover-round and decide
    /// spans plus per-round bit counters (span name `"lr-sorting"`).
    /// Identical RNG call order and result — `rec` is observe-only.
    pub fn run_with(&self, cheat: Option<LrCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let mut rng = SmallRng::seed_from_u64(seed);
        // V-rounds: all nodes draw all coins (public coin model).
        let coins = {
            let _c = span(rec, 0, SpanId::new("lr-sorting/coins"));
            let _w = Stopwatch::start(rec, "round/lr-coins");
            self.draw_coins(&mut rng)
        };
        let t = self.prove(cheat, &coins, rec);
        let stats = {
            let _w = Stopwatch::start(rec, "round/transcript");
            self.emit_captured(&coins, &t);
            self.stats(&t)
        };
        let res = {
            let _d = span(rec, 0, SpanId::new("lr-sorting/decide"));
            let _w = Stopwatch::start(rec, "round/lr-decide");
            self.verify_given_stats(&t, &coins, stats)
        };
        trace_stats(rec, "lr-sorting", &res.stats);
        res
    }

    /// Verifier rounds V1/V2: every node draws its public coins. The RNG
    /// call order is exactly the one [`LrSorting::run_with`] uses, so
    /// replaying a stored seed reproduces the run's coins.
    pub fn draw_coins(&self, rng: &mut SmallRng) -> Vec<LrCoins> {
        (0..self.g().n())
            .map(|_| LrCoins {
                r: rng.gen_range(0..self.field_p.modulus()),
                rp: rng.gen_range(0..self.field_p.modulus()),
                rb: rng.gen_range(0..self.field_p.modulus()),
                z1: rng.gen_range(0..self.field_pp.modulus()),
                z0: rng.gen_range(0..self.field_pp.modulus()),
            })
            .collect()
    }

    /// Prover rounds P1–P3 under the given coins (honest, or applying a
    /// cheat). Pure in `(self, cheat, coins)` — the prover side draws no
    /// randomness of its own; `rec` is observe-only.
    pub fn prove(
        &self,
        cheat: Option<LrCheat>,
        coins: &[LrCoins],
        rec: &dyn Recorder,
    ) -> LrTranscript {
        let s1 = span(rec, 0, SpanId::at("lr-sorting/prover-round", 1));
        let w1 = Stopwatch::start(rec, "round/lr-labels");
        let (r1n, r1e) = self.round1(cheat);
        drop(w1);
        drop(s1);
        let s2 = span(rec, 0, SpanId::at("lr-sorting/prover-round", 2));
        let w2 = Stopwatch::start(rec, "round/lr-commit");
        let (r2n, r2e) = self.round2(&r1n, &r1e, coins, cheat);
        drop(w2);
        drop(s2);
        let s3 = span(rec, 0, SpanId::at("lr-sorting/prover-round", 3));
        let w3 = Stopwatch::start(rec, "round/lr-msets");
        let r3n = self.round3(&r1n, &r1e, &r2n, &r2e, coins, rec);
        drop(w3);
        drop(s3);
        LrTranscript { r1_node: r1n, r1_edge: r1e, r2_node: r2n, r2_edge: r2e, r3_node: r3n }
    }

    /// Stored-label verification: decides from a transcript and coins
    /// alone, with **no prover in the loop**. This is the replay-verify
    /// core used by `pdip verify` on LR-level transcripts: the decision
    /// functions read only per-node labels, neighbor labels, and the
    /// node's own coins. Transcripts whose vector arity does not match
    /// the graph are rejected as malformed up front.
    pub fn verify_transcript(&self, t: &LrTranscript, coins: &[LrCoins]) -> RunResult {
        if !self.arity_ok(t, coins) {
            let mut rej = Rejections::new();
            rej.reject_malformed(0, "lr: truncated transcript");
            return rej.into_result(SizeStats { rounds: 5, ..Default::default() });
        }
        let stats = self.stats(t);
        self.verify_given_stats(t, coins, stats)
    }

    fn arity_ok(&self, t: &LrTranscript, coins: &[LrCoins]) -> bool {
        let (n, m) = (self.g().n(), self.g().m());
        t.r1_node.len() == n
            && t.r2_node.len() == n
            && t.r3_node.len() == n
            && t.r1_edge.len() == m
            && t.r2_edge.len() == m
            && coins.len() == n
    }

    /// The per-node decision sweep with externally supplied size stats
    /// (the chaos harness reports the honest pre-tamper stats).
    fn verify_given_stats(
        &self,
        t: &LrTranscript,
        coins: &[LrCoins],
        stats: SizeStats,
    ) -> RunResult {
        let mut rej = Rejections::new();
        if !self.arity_ok(t, coins) {
            rej.reject_malformed(0, "lr: truncated transcript");
            return rej.into_result(stats);
        }
        let mut scratch = DecideScratch::default();
        for v in 0..self.g().n() {
            self.decide(v, t, coins, &mut rej, &mut scratch);
        }
        rej.into_result(stats)
    }

    /// Emits the coins and the three prover rounds into the active
    /// transcript-capture scope, if any (see [`pdip_core::capture`]).
    /// Observe-only: no RNG, no effect on the run.
    fn emit_captured(&self, coins: &[LrCoins], t: &LrTranscript) {
        if !capture::is_capturing() {
            return;
        }
        capture::emit("lr/coins", |s| {
            for c in coins {
                s.put_u64(c.r);
                s.put_u64(c.rp);
                s.put_u64(c.rb);
                s.put_u64(c.z1);
                s.put_u64(c.z0);
            }
        });
        capture::emit("lr/round1", |s| {
            for l in &t.r1_node {
                s.put_usize(l.idx);
                s.put_bool(l.x1_bit);
                s.put_bool(l.x2_bit);
                s.put_u8(match l.mark {
                    ConsecMark::Left => 0,
                    ConsecMark::Pivot => 1,
                    ConsecMark::Right => 2,
                });
                s.put_u64(l.m0);
                s.put_u64(l.m1);
            }
            for l in &t.r1_edge {
                match l {
                    None => s.put_u8(0),
                    Some(R1Edge::Inner) => s.put_u8(1),
                    Some(R1Edge::Outer { index }) => {
                        s.put_u8(2);
                        s.put_usize(*index);
                    }
                }
            }
        });
        capture::emit("lr/round2", |s| {
            for l in &t.r2_node {
                s.put_u64(l.r);
                s.put_u64(l.rp);
                s.put_u64(l.rb);
                s.put_u64(l.a2);
                s.put_u64(l.b1);
                s.put_u64(l.ph);
            }
            for l in &t.r2_edge {
                s.put_bool(l.is_some());
                s.put_u64(l.unwrap_or(0));
            }
        });
        capture::emit("lr/round3", |s| {
            for l in &t.r3_node {
                for m in [l.eq1, l.eq0] {
                    s.put_u64(m.z);
                    s.put_u64(m.a1);
                    s.put_u64(m.a2);
                }
            }
        });
    }

    /// Runs the honest prover rounds, lets `tamper` corrupt the finished
    /// transcript and/or the verifier coins (a stale-coin replay overwrites
    /// the coins the nodes check against), then runs the per-node decision
    /// on the corrupted state. An identity `tamper` reproduces the honest
    /// verdict bit-for-bit; this is the chaos harness's entry point (E9).
    ///
    /// Transcript vectors whose arity no longer matches the graph are
    /// rejected as malformed up front — the decision functions assume
    /// well-arity transcripts.
    pub fn run_tampered(
        &self,
        seed: u64,
        tamper: impl FnOnce(&mut LrTranscript, &mut [LrCoins]),
    ) -> RunResult {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut coins = self.draw_coins(&mut rng);
        let mut t = self.prove(None, &coins, &NoopRecorder);
        let stats = self.stats(&t);
        tamper(&mut t, &mut coins);
        self.verify_given_stats(&t, &coins, stats)
    }

    /// Size accounting for the honest transcript.
    fn stats(&self, t: &LrTranscript) -> SizeStats {
        let g = self.g();
        let l = self.block_len;
        let pb = self.field_p.element_bits();
        let ppb = self.field_pp.element_bits();
        let r1_node_bits = bits_for_max(2 * l) + 2 + 2 + 2 * bits_for_max(2 * l);
        let r1_edge_bits = 1 + bits_for_max(l);
        let r2_node_bits = 6 * pb;
        let r2_edge_bits = pb;
        let r3_node_bits = 6 * ppb;
        let (max1, max2) = match self.transport {
            Transport::Native => (r1_node_bits.max(r1_edge_bits), r2_node_bits.max(r2_edge_bits)),
            Transport::Simulated => {
                // Edge labels fold into the accountable endpoints' labels:
                // count the real per-node burden through the carrier.
                let values1: Vec<Option<R1Edge>> = t.r1_edge.clone();
                let carrier = EdgeLabelCarrier::assign(g, &values1);
                let per_edge1 = 1 + r1_edge_bits;
                let per_edge2 = 1 + r2_edge_bits;
                let code_and_slots =
                    carrier.max_bits(g, |v| if v.is_some() { per_edge1 + per_edge2 } else { 2 });
                (r1_node_bits + code_and_slots, r2_node_bits)
            }
        };
        SizeStats {
            per_round_max_bits: vec![max1, max2, r3_node_bits],
            per_round_total_bits: vec![max1 * g.n(), max2 * g.n(), r3_node_bits * g.n()],
            coin_bits: g.n() * (3 * pb + 2 * ppb),
            rounds: 5,
        }
    }

    /// The verifier decision at node `v` (node-local information only).
    /// `scratch` holds the per-node working buffers; the sweep in
    /// [`LrSorting::verify_given_stats`] reuses one scratch across all
    /// nodes so warm iterations allocate nothing.
    fn decide(
        &self,
        v: NodeId,
        t: &LrTranscript,
        coins: &[LrCoins],
        rej: &mut Rejections,
        scratch: &mut DecideScratch,
    ) {
        let g = self.g();
        let l = self.block_len;
        let fp = self.field_p;
        let me1 = t.r1_node[v];
        let me2 = t.r2_node[v];
        let left = self.left_path[v];
        let right = self.right_path[v];
        // --- S: structural checks on the block construction ---
        if me1.idx == 0 || me1.idx > 2 * l.max(1) {
            rej.reject(v, "lr: index out of range");
            return;
        }
        if left.is_none() && me1.idx != 1 {
            rej.reject(v, "lr: path head must start block 1");
            return;
        }
        if let Some(u) = right {
            let next = t.r1_node[u].idx;
            let ok = next == me1.idx + 1 || (me1.idx >= l && next == 1);
            rej.check(v, ok, || "lr: successor index breaks block structure".into());
        }
        // Consecutiveness marks (only bit-holding nodes).
        let in_cap = me1.idx <= l && me1.idx <= self.block_len; // idx <= L
        if in_cap {
            let same_block_right = right.filter(|&u| t.r1_node[u].idx != 1);
            let same_block_left = left.filter(|_| me1.idx != 1);
            match me1.mark {
                ConsecMark::Right => {
                    rej.check(v, me1.x1_bit && !me1.x2_bit, || {
                        "lr: right-of-pivot bits must be 1/0".into()
                    });
                    if let Some(u) = same_block_right {
                        if t.r1_node[u].idx <= l {
                            rej.check(v, t.r1_node[u].mark == ConsecMark::Right, || {
                                "lr: right-of-pivot must extend right".into()
                            });
                        }
                    }
                }
                ConsecMark::Pivot => {
                    rej.check(v, !me1.x1_bit && me1.x2_bit, || "lr: pivot bits must be 0/1".into());
                    if let Some(u) = same_block_right {
                        if t.r1_node[u].idx <= l {
                            rej.check(v, t.r1_node[u].mark == ConsecMark::Right, || {
                                "lr: right of pivot must be marked right".into()
                            });
                        }
                    }
                    if let Some(u) = same_block_left {
                        rej.check(v, t.r1_node[u].mark == ConsecMark::Left, || {
                            "lr: left of pivot must be marked left".into()
                        });
                    }
                }
                ConsecMark::Left => {
                    rej.check(v, me1.x1_bit == me1.x2_bit, || {
                        "lr: left-of-pivot bits must agree".into()
                    });
                    if let Some(u) = same_block_left {
                        rej.check(v, t.r1_node[u].mark == ConsecMark::Left, || {
                            "lr: left-of-pivot must extend left".into()
                        });
                    }
                }
            }
        }
        // --- R2 echoes and cumulatives ---
        if me2.r >= fp.modulus() || me2.rp >= fp.modulus() || me2.rb >= fp.modulus() {
            rej.reject(v, "lr: r2 values not reduced");
            return;
        }
        if left.is_none() {
            rej.check(v, me2.r == coins[v].r && me2.rp == coins[v].rp, || {
                "lr: path head challenge ignored".into()
            });
        }
        if let Some(u) = left {
            rej.check(v, t.r2_node[u].r == me2.r && t.r2_node[u].rp == me2.rp, || {
                "lr: global challenge echo differs along path".into()
            });
        }
        if me1.idx == 1 {
            rej.check(v, me2.rb == coins[v].rb, || "lr: block head r_b ignored".into());
        } else if let Some(u) = left {
            rej.check(v, t.r2_node[u].rb == me2.rb, || "lr: r_b differs within block".into());
        }
        // Cumulative A2 (left-to-right over x2 bits).
        let fac2 = if in_cap && me1.x2_bit { fp.sub(me1.idx as u64, me2.r) } else { 1 };
        let a2_prev = if me1.idx == 1 { 1 } else { left.map(|u| t.r2_node[u].a2).unwrap_or(1) };
        rej.check(v, me2.a2 == fp.mul(a2_prev, fac2), || "lr: A2 cumulative broken".into());
        // Cumulative PH (left-to-right over x1 bits at r').
        let facp = if in_cap && me1.x1_bit { fp.sub(me1.idx as u64, me2.rp) } else { 1 };
        let ph_prev = if me1.idx == 1 { 1 } else { left.map(|u| t.r2_node[u].ph).unwrap_or(1) };
        rej.check(v, me2.ph == fp.mul(ph_prev, facp), || "lr: PH cumulative broken".into());
        // Cumulative B1 (right-to-left over x1 bits at r).
        let fac1 = if in_cap && me1.x1_bit { fp.sub(me1.idx as u64, me2.r) } else { 1 };
        let block_rightmost = match right {
            None => true,
            Some(u) => t.r1_node[u].idx == 1,
        };
        let b1_next = if block_rightmost { 1 } else { right.map(|u| t.r2_node[u].b1).unwrap_or(1) };
        rej.check(v, me2.b1 == fp.mul(b1_next, fac1), || "lr: B1 cumulative broken".into());
        // Block-adjacency equality: x2(b) == x1(b') at the boundary.
        if let Some(u) = right {
            if t.r1_node[u].idx == 1 {
                rej.check(v, me2.a2 == t.r2_node[u].b1, || {
                    "lr: adjacent blocks are not consecutive".into()
                });
            }
        }
        // --- E: per-edge checks ---
        // Index→commitment maps as sorted scratch vectors: iteration and
        // first-insert-wins semantics match the former BTreeMaps, without
        // the per-node tree allocations. The C-side multisets (needed by
        // the V checks below) read the same Outer labels, so they build
        // during this same scan — every Outer edge with a commitment
        // contributes its pair, path edges included, exactly as the
        // standalone C-side scan did — and get set semantics from the
        // sort + dedup after the loop.
        let DecideScratch { head_pairs, tail_pairs, s1_head, s1_tail, d_head, d_tail } = scratch;
        head_pairs.clear();
        tail_pairs.clear();
        s1_head.clear();
        s1_tail.clear();
        d_head.clear();
        d_tail.clear();
        for e in g.incident_edges(v) {
            let i_am_head = self.head(e) == v;
            if self.is_path_edge[e] {
                // Path edges skip the E checks, but a (malformed) Outer
                // label on one still lands in the C-side multiset.
                if let Some(R1Edge::Outer { index }) = t.r1_edge[e] {
                    if let Some(j) = t.r2_edge[e] {
                        let c = if i_am_head { &mut *s1_head } else { &mut *s1_tail };
                        c.push(self.encode_pair(index.max(1), j));
                    }
                }
                continue;
            }
            let Some(lbl) = t.r1_edge[e] else {
                rej.reject(v, "lr: unlabeled non-path edge");
                return;
            };
            let u = g.edge(e).other(v);
            match lbl {
                R1Edge::Inner => {
                    // Same r_b and index order.
                    rej.check(v, t.r2_node[u].rb == me2.rb, || {
                        "lr: inner edge spans blocks (r_b mismatch)".into()
                    });
                    let (ti, hi) = if i_am_head {
                        (t.r1_node[u].idx, me1.idx)
                    } else {
                        (me1.idx, t.r1_node[u].idx)
                    };
                    rej.check(v, ti < hi, || "lr: inner edge directed right-to-left".into());
                }
                R1Edge::Outer { index } => {
                    rej.check(v, index >= 1 && index <= l, || "lr: index out of range".into());
                    let Some(j) = t.r2_edge[e] else {
                        rej.reject(v, "lr: outer edge without commitment");
                        return;
                    };
                    rej.check(v, j < fp.modulus(), || "lr: commitment not reduced".into());
                    let side = if i_am_head { &mut *head_pairs } else { &mut *tail_pairs };
                    match side.binary_search_by_key(&index, |&(i, _)| i) {
                        Err(slot) => side.insert(slot, (index, j)),
                        Ok(slot) => {
                            rej.check(v, side[slot].1 == j, || {
                                "lr: same index committed to two prefixes".into()
                            });
                        }
                    }
                    let c = if i_am_head { &mut *s1_head } else { &mut *s1_tail };
                    c.push(self.encode_pair(index.max(1), j));
                }
            }
        }
        sort_dedup_tail(s1_head, 0);
        sort_dedup_tail(s1_tail, 0);
        for (i, _) in head_pairs.iter() {
            rej.check(v, tail_pairs.binary_search_by_key(i, |&(i, _)| i).is_err(), || {
                "lr: index claims bit 1 and bit 0 simultaneously".into()
            });
        }
        // --- V: verification-scheme multiset equalities within the block ---
        let ms = MultisetEq::new(self.field_pp);
        let parent_local = if me1.idx == 1 { None } else { left };
        let child_local = right.filter(|&u| t.r1_node[u].idx != 1);
        // Build segment-local message views: we reuse MultisetEq::check by
        // passing messages indexed 0 = me, 1 = parent, 2 = child — at most
        // three, so they live on the stack.
        let zero = MsMsg { z: 0, a1: 0, a2: 0 };
        let mut msgs1 = [t.r3_node[v].eq1, zero, zero];
        let mut msgs0 = [t.r3_node[v].eq0, zero, zero];
        let mut len = 1;
        let parent_idx = parent_local.map(|u| {
            msgs1[len] = t.r3_node[u].eq1;
            msgs0[len] = t.r3_node[u].eq0;
            len += 1;
            len - 1
        });
        let child_idx = child_local.map(|u| {
            msgs1[len] = t.r3_node[u].eq1;
            msgs0[len] = t.r3_node[u].eq0;
            len += 1;
            len - 1
        });
        let children: &[usize] = match child_idx {
            Some(ref i) => std::slice::from_ref(i),
            None => &[],
        };
        self.d_side_checked_into(v, true, t, d_head);
        self.d_side_checked_into(v, false, t, d_tail);
        let root_z1 = if me1.idx == 1 { Some(coins[v].z1) } else { None };
        let root_z0 = if me1.idx == 1 { Some(coins[v].z0) } else { None };
        let m1 = &msgs1[..len];
        let m0 = &msgs0[..len];
        ms.check(v, 0, parent_idx, children, s1_head, d_head, m1, root_z1, rej);
        ms.check(v, 0, parent_idx, children, s1_tail, d_tail, m0, root_z0, rej);
    }

    /// D-side multiset as the verifier reconstructs it locally: uses the
    /// node's own idx / bit / multiplicity and the left neighbor's `ph`.
    /// Appends to a caller-owned buffer (no allocation when warm).
    fn d_side_checked_into(&self, v: NodeId, one_side: bool, t: &LrTranscript, out: &mut Vec<u64>) {
        let me = t.r1_node[v];
        if me.idx > self.block_len {
            return;
        }
        if one_side != me.x1_bit {
            return;
        }
        let mult = if one_side { me.m1 } else { me.m0 };
        if mult == 0 || mult as usize > 2 * self.block_len + 1 {
            return;
        }
        let prev_ph = if me.idx == 1 {
            1
        } else {
            match self.left_path[v] {
                Some(u) => t.r2_node[u].ph,
                None => 1,
            }
        };
        if prev_ph >= self.field_p.modulus() {
            return;
        }
        let new_len = out.len() + mult as usize;
        out.resize(new_len, self.encode_pair(me.idx, prev_ph));
    }

    /// Names of the cheat strategies in [`LR_CHEATS`] order.
    pub fn cheat_names() -> Vec<String> {
        vec![
            "claim-inner".into(),
            "outer-true-index".into(),
            "outer-forged-index".into(),
            "swap-block-positions".into(),
        ]
    }
}

/// Sorts and dedups `out[start..]` in place (set semantics for a multiset
/// tail freshly appended to a shared arena buffer).
fn sort_dedup_tail(out: &mut Vec<u64>, start: usize) {
    out[start..].sort_unstable();
    let mut w = start;
    for r in start..out.len() {
        if r == start || out[r] != out[w - 1] {
            out[w] = out[r];
            w += 1;
        }
    }
    out.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::lr::{random_lr_no, random_lr_yes};

    fn yes_accepts(
        n: usize,
        extra: usize,
        planar: bool,
        transport: Transport,
        seed: u64,
    ) -> RunResult {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = random_lr_yes(n, extra, planar, &mut rng);
        let lr = LrSorting::new(&inst, LrParams::default(), transport);
        lr.run(None, seed.wrapping_mul(31).wrapping_add(7))
    }

    #[test]
    fn perfect_completeness_native() {
        for n in [2usize, 3, 7, 16, 33, 100, 257] {
            for seed in 0..5 {
                let res = yes_accepts(n, n / 2, false, Transport::Native, seed);
                assert!(res.accepted(), "n={n} seed={seed}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn perfect_completeness_planar() {
        for n in [2usize, 5, 20, 64, 150] {
            for seed in 0..5 {
                let res = yes_accepts(n, n / 2, true, Transport::Simulated, seed);
                assert!(res.accepted(), "n={n} seed={seed}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn proof_size_is_loglog() {
        for n in [1usize << 8, 1 << 12, 1 << 14] {
            let res = yes_accepts(n, n / 4, true, Transport::Native, 42);
            let loglog = ((n as f64).log2()).log2();
            let size = res.stats.proof_size() as f64;
            assert!(size <= 40.0 * loglog, "n={n}: proof size {size} vs loglog {loglog}");
        }
    }

    #[test]
    fn all_cheats_mostly_rejected() {
        let trials = 60;
        for (ci, cheat) in LR_CHEATS.iter().enumerate() {
            let mut accepted = 0;
            let mut ran = 0;
            for seed in 0..trials {
                let mut rng = SmallRng::seed_from_u64(1000 + seed);
                let Some(inst) = random_lr_no(60, 30, true, 1, &mut rng) else { continue };
                let lr = LrSorting::new(&inst, LrParams::default(), Transport::Native);
                ran += 1;
                if lr.run(Some(*cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(ran > trials / 2);
            assert!((accepted as f64) < 0.2 * ran as f64, "cheat {ci}: accepted {accepted}/{ran}");
        }
    }

    #[test]
    fn rounds_are_five() {
        let mut rng = SmallRng::seed_from_u64(7);
        let inst = random_lr_yes(20, 5, true, &mut rng);
        let lr = LrSorting::new(&inst, LrParams::default(), Transport::Native);
        assert_eq!(lr.rounds(), 5);
        let res = lr.run(None, 3);
        assert_eq!(res.stats.rounds, 5);
        assert_eq!(res.stats.per_round_max_bits.len(), 3); // three prover rounds
    }

    /// Bit-scan reference for the XOR-based distinguishing index: the
    /// first position (1-based, MSB first over `cap` bits) where the two
    /// words differ.
    fn scan_index(pt: usize, ph: usize, cap: usize) -> usize {
        let bit = |x: usize, i: usize| {
            let shift = cap - i;
            shift < usize::BITS as usize && (x >> shift) & 1 == 1
        };
        (1..=cap).find(|&i| bit(pt, i) != bit(ph, i)).unwrap_or(1)
    }

    #[test]
    fn xor_distinguishing_index_matches_bit_scan() {
        let mut rng = SmallRng::seed_from_u64(77);
        for cap in [1usize, 2, 7, 17, 31, 60] {
            for _ in 0..200 {
                let bound = 1usize << cap.min(60);
                let (pt, ph) = (rng.gen_range(0..bound), rng.gen_range(0..bound));
                let mask = if cap >= 64 { u64::MAX } else { (1u64 << cap) - 1 };
                let diff = (pt as u64 ^ ph as u64) & mask;
                let fast = if diff != 0 { cap - (63 - diff.leading_zeros() as usize) } else { 1 };
                assert_eq!(fast, scan_index(pt, ph, cap), "pt={pt} ph={ph} cap={cap}");
            }
        }
    }

    /// Differential: the lane-batched commitment path (Montgomery
    /// `prefix_poly_evals` + `multiset_poly_eval` behind the round-2 `ph`
    /// values and the round-3 aggregates) against a scalar baseline built
    /// on `Fp::mul_naive`. A pipelining bug in the batch path would
    /// desynchronize the two transcripts.
    #[test]
    fn batched_commitments_match_scalar_baseline() {
        use pdip_field::multiset_poly_eval_naive;
        let mut rng = SmallRng::seed_from_u64(88);
        let inst = random_lr_yes(97, 40, true, &mut rng);
        let lr = LrSorting::new(&inst, LrParams::default(), Transport::Native);
        let mut run_rng = SmallRng::seed_from_u64(13);
        let coins = lr.draw_coins(&mut run_rng);
        let t = lr.prove(None, &coins, &pdip_obs::NoopRecorder);
        let fp = lr.field_p;
        let head = inst.path[0];
        let rp = coins[head].rp;
        // Scalar PH recomputation: left-to-right product of (idx - r')
        // over the x1 bits, restarting at each block head.
        let mut acc = 1u64;
        for &v in &inst.path {
            let l1 = t.r1_node[v];
            if l1.idx == 1 {
                acc = 1;
            }
            if l1.idx <= lr.block_len && l1.x1_bit {
                acc = fp.mul_naive(acc, fp.sub(l1.idx as u64, rp));
            }
            assert_eq!(t.r2_node[v].ph, acc, "ph at node {v}");
        }
        // Scalar round-3 recomputation: each node's aggregate must equal
        // the naive product of its own multiset evaluation and its
        // children's aggregates.
        let fpp = lr.field_pp;
        for (i, &v) in inst.path.iter().enumerate() {
            let child = inst.path.get(i + 1).copied().filter(|&u| t.r1_node[u].idx != 1);
            let mut s = Vec::new();
            lr.c_side_into(v, true, &t.r1_edge, &t.r2_edge, &mut s);
            let mut e1 = multiset_poly_eval_naive(&fpp, s.iter().copied(), t.r3_node[v].eq1.z);
            let mut d = Vec::new();
            lr.d_side_into(v, true, &t.r1_node, &t.r2_node, &mut d);
            let mut e2 = multiset_poly_eval_naive(&fpp, d.iter().copied(), t.r3_node[v].eq1.z);
            if let Some(u) = child {
                e1 = fpp.mul_naive(e1, t.r3_node[u].eq1.a1);
                e2 = fpp.mul_naive(e2, t.r3_node[u].eq1.a2);
            }
            assert_eq!(t.r3_node[v].eq1.a1, e1, "eq1.a1 at node {v}");
            assert_eq!(t.r3_node[v].eq1.a2, e2, "eq1.a2 at node {v}");
        }
    }

    #[test]
    fn single_block_instances_work() {
        // n smaller than the block length: a single short block.
        for seed in 0..10 {
            let res = yes_accepts(3, 1, true, Transport::Native, seed);
            assert!(res.accepted(), "seed {seed}: {:?}", res.rejections.first());
        }
    }
}
