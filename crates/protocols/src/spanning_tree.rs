//! Spanning-tree verification (Lemma 2.5).
//!
//! Verifies that a committed parent-pointer structure (with root flags) is
//! a rooted spanning tree of the connected communication graph. The paper
//! cites the 3-round constant-size protocol of NPY20 §7.1 black-box; this
//! reproduction implements a concrete 3-round protocol with
//! O(log log n)-bit labels and soundness error 1/polylog n (see DESIGN.md
//! §3.3 — all theorem asymptotics are unaffected because every caller
//! already spends Θ(log log n) bits):
//!
//! 1. *(prover)* tree + root flags committed (by the caller, e.g. via a
//!    [`crate::forest_code::ForestCode`]).
//! 2. *(verifier)* every node samples an index into the prime window
//!    `[W, 2W]`, `W = log^c n` (only the flagged roots' samples are used,
//!    but all are public coins).
//! 3. *(prover)* every node receives the *global* prime `p` (as a window
//!    index) and its depth mod `p`.
//!
//! Checks: `p` agrees across every edge of `G` (hence globally — `G` is
//! connected); each flagged root sampled exactly this `p`, has no parent
//! and depth ≡ 0; every other node has a parent and depth ≡ parent's + 1.
//! A parent cycle of length `ℓ` survives only if `p | ℓ`
//! (≤ log n / log W of the ~W/ln W window primes); k ≥ 2 roots survive
//! only if all k sampled the same prime. Parallel repetition with
//! independent primes drives the error to (1/polylog n)^r.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use pdip_core::{bits_for_domain, Rejections};
use pdip_field::primes_in_window;
use pdip_graph::{Graph, NodeId, RootedForest};
use pdip_obs::{counter, span, Recorder, SpanId};
use rand::Rng;

/// Parameters of the spanning-tree verifier.
#[derive(Debug, Clone, Copy)]
pub struct StParams {
    /// Lower end of the prime window `[window, 2 * window]`.
    pub window: u64,
    /// Number of parallel repetitions.
    pub repetitions: usize,
}

impl StParams {
    /// The paper's choice for instance size `n`: `W = max(16, log^c n)`
    /// with exponent `c`, and `r` repetitions.
    pub fn for_n(n: usize, c: u32, repetitions: usize) -> Self {
        let log = (n.max(2) as f64).log2();
        let window = (log.powi(c as i32) as u64).max(16);
        StParams { window, repetitions: repetitions.max(1) }
    }
}

/// The verifier coins of one node: one prime-window index per repetition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StCoin {
    /// Sampled indices into the window prime table (one per repetition).
    pub prime_indices: Vec<usize>,
}

/// The prover's round-3 message to one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StMsg {
    /// Claimed global prime, as an index into the window prime table
    /// (one per repetition).
    pub prime_indices: Vec<usize>,
    /// Claimed depth of the node modulo the prime (one per repetition).
    pub depth_mod_p: Vec<u64>,
}

/// The spanning-tree verification sub-protocol, bound to its parameters.
#[derive(Debug, Clone)]
pub struct SpanningTreeVerification {
    params: StParams,
    primes: Vec<u64>,
}

impl SpanningTreeVerification {
    /// Creates the verifier and materializes the prime window.
    pub fn new(params: StParams) -> Self {
        let primes = primes_in_window(params.window, 2 * params.window);
        assert!(!primes.is_empty(), "prime window [{0}, 2*{0}] is empty", params.window);
        SpanningTreeVerification { params, primes }
    }

    /// The prime window table.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Verifier round: every node draws its coins.
    pub fn draw_coins(&self, n: usize, rng: &mut impl Rng) -> Vec<StCoin> {
        (0..n)
            .map(|_| StCoin {
                prime_indices: (0..self.params.repetitions)
                    .map(|_| rng.gen_range(0..self.primes.len()))
                    .collect(),
            })
            .collect()
    }

    /// Coin size in bits per node (part of the public transcript, not of
    /// the proof size).
    pub fn coin_bits(&self) -> usize {
        self.params.repetitions * bits_for_domain(self.primes.len())
    }

    /// Honest prover: the tree is genuine, so answer with the first root's
    /// sampled primes and true depths.
    ///
    /// # Panics
    /// Panics if `forest` has no root (impossible for a real forest).
    pub fn honest_response(&self, forest: &RootedForest, coins: &[StCoin]) -> Vec<StMsg> {
        let root = forest.roots()[0];
        let prime_indices = coins[root].prime_indices.clone();
        (0..forest.n())
            .map(|v| StMsg {
                prime_indices: prime_indices.clone(),
                depth_mod_p: prime_indices
                    .iter()
                    .map(|&pi| (forest.depth(v) as u64) % self.primes[pi])
                    .collect(),
            })
            .collect()
    }

    /// [`SpanningTreeVerification::honest_response`] under a Lemma 2.5
    /// span with `msg_bits` / `coin_bits` counters; the response
    /// computation is untouched.
    pub fn honest_response_traced(
        &self,
        forest: &RootedForest,
        coins: &[StCoin],
        rec: &dyn Recorder,
    ) -> Vec<StMsg> {
        let id = SpanId::new("lemma2.5/spanning-tree");
        let _g = span(rec, 0, id);
        counter(rec, 0, id, "msg_bits", self.msg_bits() as u64);
        counter(rec, 0, id, "coin_bits", self.coin_bits() as u64);
        let msgs = self.honest_response(forest, coins);
        // Observe-only capture of the round-3 prover messages (and the
        // public coins they answer) for stored-transcript replay.
        pdip_core::capture::emit("lemma2.5/st", |s| {
            for c in coins {
                s.put_usize(c.prime_indices.len());
                for &pi in &c.prime_indices {
                    s.put_usize(pi);
                }
            }
            for m in &msgs {
                s.put_usize(m.prime_indices.len());
                for &pi in &m.prime_indices {
                    s.put_usize(pi);
                }
                for &d in &m.depth_mod_p {
                    s.put_u64(d);
                }
            }
        });
        msgs
    }

    /// Message size in bits per node.
    pub fn msg_bits(&self) -> usize {
        // Prime index + a residue below 2 * window, per repetition.
        self.params.repetitions
            * (bits_for_domain(self.primes.len())
                + bits_for_domain(2 * self.params.window as usize))
    }

    /// The verifier check at node `v`.
    ///
    /// `claimed_parent` / `claimed_root` come from the committed structure
    /// (round 1); `coins` and `msgs` are this node's and its neighbors'
    /// round 2/3 transcript entries. Locality: only `v`'s own entries and
    /// its graph neighbors' messages are read.
    #[allow(clippy::too_many_arguments)]
    pub fn check(
        &self,
        g: &Graph,
        v: NodeId,
        claimed_parent: Option<NodeId>,
        claimed_root: bool,
        coins: &[StCoin],
        msgs: &[StMsg],
        rej: &mut Rejections,
    ) {
        let Some(me) = msgs.get(v) else {
            rej.reject_malformed(v, "st: truncated message vector");
            return;
        };
        if me.prime_indices.len() != self.params.repetitions
            || me.depth_mod_p.len() != self.params.repetitions
        {
            rej.reject_malformed(v, "st: malformed message arity");
            return;
        }
        // Structure: exactly one of {root, parent}.
        match (claimed_root, claimed_parent) {
            (true, Some(_)) => {
                rej.reject_malformed(v, "st: flagged root has a parent");
                return;
            }
            (false, None) => {
                rej.reject_malformed(v, "st: non-root without parent");
                return;
            }
            _ => {}
        }
        for r in 0..self.params.repetitions {
            let pi = me.prime_indices[r];
            if pi >= self.primes.len() {
                rej.reject_malformed(v, "st: prime index out of window");
                return;
            }
            let p = self.primes[pi];
            if me.depth_mod_p[r] >= p {
                rej.reject_malformed(
                    v,
                    format!("st: residue {} not reduced mod {p}", me.depth_mod_p[r]),
                );
                return;
            }
            // Global prime consistency across all graph edges.
            for u in g.neighbor_nodes(v) {
                if msgs.get(u).map(|m| m.prime_indices.get(r)) != Some(Some(&pi)) {
                    rej.reject(v, "st: prime disagrees with a neighbor");
                    return;
                }
            }
            if claimed_root {
                if coins.get(v).and_then(|c| c.prime_indices.get(r)) != Some(&pi) {
                    rej.reject(v, "st: root's sampled prime ignored");
                    return;
                }
                if me.depth_mod_p[r] != 0 {
                    rej.reject(v, "st: root depth not 0");
                    return;
                }
            }
            if let Some(par) = claimed_parent {
                let Some(par_residue) = msgs.get(par).and_then(|m| m.depth_mod_p.get(r)) else {
                    rej.reject_malformed(v, "st: parent message truncated");
                    return;
                };
                let expect = (par_residue + 1) % p;
                if me.depth_mod_p[r] != expect {
                    rej.reject(v, "st: depth is not parent depth + 1");
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(
        g: &Graph,
        parent: &[Option<NodeId>],
        root_flags: &[bool],
        msgs_from: impl Fn(&SpanningTreeVerification, &[StCoin]) -> Vec<StMsg>,
        seed: u64,
    ) -> bool {
        let st = SpanningTreeVerification::new(StParams::for_n(g.n(), 3, 1));
        let mut rng = SmallRng::seed_from_u64(seed);
        let coins = st.draw_coins(g.n(), &mut rng);
        let msgs = msgs_from(&st, &coins);
        let mut rej = Rejections::new();
        for v in 0..g.n() {
            st.check(g, v, parent[v], root_flags[v], &coins, &msgs, &mut rej);
        }
        !rej.any()
    }

    #[test]
    fn honest_tree_accepted() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let f = RootedForest::bfs_spanning_tree(&g, 2);
        let parent: Vec<Option<NodeId>> = (0..6).map(|v| f.parent(v)).collect();
        let roots: Vec<bool> = (0..6).map(|v| f.parent(v).is_none()).collect();
        for seed in 0..20 {
            assert!(run(&g, &parent, &roots, |st, coins| st.honest_response(&f, coins), seed));
        }
    }

    #[test]
    fn parent_cycle_mostly_rejected() {
        // Claimed structure: a 6-cycle of parent pointers, no root —
        // the cheating prover fabricates depths around the cycle.
        let g = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        let parent: Vec<Option<NodeId>> = (0..6).map(|v| Some((v + 1) % 6)).collect();
        let roots = vec![false; 6];
        let mut accepted = 0;
        let trials = 200;
        for seed in 0..trials {
            let ok = run(
                &g,
                &parent,
                &roots,
                |st, _coins| {
                    // Best cheat: pick a prime dividing the cycle length if
                    // one is in the window (6 is too small, so pick any) and
                    // assign consistent residues greedily.
                    let pi = 0;
                    let p = st.primes()[pi];
                    (0..6u64)
                        .map(|v| StMsg { prime_indices: vec![pi], depth_mod_p: vec![(6 - v) % p] })
                        .collect()
                },
                seed,
            );
            if ok {
                accepted += 1;
            }
        }
        // depth(v) = parent's + 1 forces p | 6; window primes are >= 17.
        assert_eq!(accepted, 0, "cycle accepted {accepted}/{trials}");
    }

    #[test]
    fn two_roots_rarely_survive() {
        // Path graph, prover claims two trees with two roots.
        let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
        let mut parent: Vec<Option<NodeId>> = vec![None; 6];
        parent[1] = Some(0);
        parent[2] = Some(1);
        parent[4] = Some(3);
        parent[5] = Some(4);
        let mut roots = vec![false; 6];
        roots[0] = true;
        roots[3] = true;
        let mut accepted = 0;
        let trials = 300;
        for seed in 0..trials {
            let ok = run(
                &g,
                &parent,
                &roots,
                |_st, coins| {
                    // Cheat: commit to root 0's prime and hope root 3 drew
                    // the same one.
                    let pi = coins[0].prime_indices[0];
                    (0..6usize)
                        .map(|v| StMsg {
                            prime_indices: vec![pi],
                            depth_mod_p: vec![match v {
                                0 | 3 => 0,
                                1 | 4 => 1,
                                _ => 2,
                            }],
                        })
                        .collect()
                },
                seed,
            );
            if ok {
                accepted += 1;
            }
        }
        // Collision probability is 1/#primes(window for n=6) — small.
        let st = SpanningTreeVerification::new(StParams::for_n(6, 3, 1));
        let bound = (trials as f64) * 3.0 / st.primes().len() as f64 + 3.0;
        assert!(
            (accepted as f64) < bound,
            "two-root cheat accepted {accepted}/{trials} (bound {bound})"
        );
    }

    #[test]
    fn long_cycle_soundness_scales() {
        // A parent cycle of composite length L: the cheat succeeds iff the
        // root... no root exists; success iff sampled... the prover picks
        // p | L if available. With L = 2^k the window (odd primes) never
        // divides, so rejection is certain.
        let n = 64;
        let g = Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
        let parent: Vec<Option<NodeId>> = (0..n).map(|v| Some((v + 1) % n)).collect();
        let roots = vec![false; n];
        for seed in 0..50 {
            let ok = run(
                &g,
                &parent,
                &roots,
                |st, _| {
                    let pi = 0;
                    let p = st.primes()[pi];
                    (0..n as u64)
                        .map(|v| StMsg {
                            prime_indices: vec![pi],
                            depth_mod_p: vec![(n as u64 - v) % p],
                        })
                        .collect()
                },
                seed,
            );
            assert!(!ok);
        }
    }

    #[test]
    fn message_sizes_are_loglog() {
        for n in [1usize << 8, 1 << 12, 1 << 16] {
            let st = SpanningTreeVerification::new(StParams::for_n(n, 3, 1));
            let loglog = ((n as f64).log2()).log2();
            assert!(
                (st.msg_bits() as f64) <= 14.0 * loglog,
                "n={n}: {} bits vs loglog={loglog}",
                st.msg_bits()
            );
        }
    }
}
