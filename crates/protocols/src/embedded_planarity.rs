//! The planar-embedding protocol (Theorem 1.4, §7 of the paper) and the
//! reduction `h(G, T, ρ)` to path-outerplanarity.
//!
//! Every node holds a clockwise rotation `ρ_v` of its incident edges; the
//! task is to decide whether `ρ` induces a genus-0 embedding. The prover
//! commits a rooted spanning tree `T` (Lemma 2.3 + Lemma 2.5); the Euler
//! tour of `T` in rotation order defines a path `P(G,T,ρ)` over node
//! *copies* `x_0(v), ..., x_χ(v)`, and every non-tree edge maps to an arc
//! between the copies determined by the first counterclockwise tree edges
//! at its endpoints. Lemma 7.3: `ρ` is a planar embedding iff
//! `h(G,T,ρ)` is path-outerplanar w.r.t. `P` — so the Theorem 1.2 protocol
//! runs on `h`, with each original node simulating its ≤ 5 visible copies
//! (`x_i(v)` is handled by child `c_i(v)`).

use crate::lr_sorting::Transport;
use crate::path_outerplanar::{PathOuterplanarity, PopCheat, PopInstance, PopParams};
use crate::spanning_tree::{SpanningTreeVerification, StParams};
use pdip_core::{trace_stats, DipProtocol, Rejections, RunResult, SizeStats};
use pdip_graph::{with_thread_scratch, EdgeId, Graph, NodeId, RootedForest, RotationSystem};
use pdip_obs::{span, NoopRecorder, Recorder, SpanId, Stopwatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A planar-embedding instance: graph plus per-node rotations.
#[derive(Debug, Clone)]
pub struct EmbInstance {
    /// The instance graph (connected).
    pub graph: Graph,
    /// The given clockwise rotations ρ(G).
    pub rho: RotationSystem,
    /// Ground truth: does ρ induce a planar embedding?
    pub is_yes: bool,
}

/// The reduction output: the graph `h(G, T, ρ)` with bookkeeping.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced graph: nodes are Euler-tour visits, `P` plus the arcs `Q`.
    pub h: Graph,
    /// The Hamiltonian path of `h` (tour order: node `i` is the i-th visit).
    pub path: Vec<NodeId>,
    /// Which original node each copy belongs to.
    pub copy_of: Vec<NodeId>,
    /// For each non-tree edge of `G`, the corresponding arc in `h`.
    pub arc_of_edge: Vec<Option<EdgeId>>,
}

/// Builds `h(G, T, ρ)`: the cut-along-the-tree disk boundary.
///
/// The announcement sketches `h` with `χ(v) + 1` copies per node (one per
/// Euler-tour visit). That granularity determines only which *corner* each
/// non-tree edge-end lies in — but the rotation also fixes the order of
/// edge-ends *within* a corner, and swapping two same-corner ends can
/// change the genus without changing corners. This implementation
/// therefore uses the exact dart-level construction underlying FFM+21's
/// proof: the path `P` walks the boundary of the fattened tree, emitting
/// one anchor node per Euler-tour visit and one node per non-tree
/// edge-end, in clockwise order within each corner; every non-tree edge
/// becomes an arc between its two end nodes. Then ρ is a planar embedding
/// iff the arcs are properly nested (Lemma 7.3). Edge-end labels ride on
/// the edges (Lemma 2.4), so the per-node label burden stays O(ℓ). See
/// DESIGN.md §3.
///
/// # Panics
/// Panics if `tree` is not a spanning tree of `g` rooted at `root`.
pub fn build_reduction(
    g: &Graph,
    rho: &RotationSystem,
    tree: &RootedForest,
    root: NodeId,
) -> Reduction {
    assert!(tree.is_spanning_tree(g), "reduction needs a spanning tree");
    let n = g.n();
    // Every transient table below is an integer buffer recycled through
    // the thread scratch's slice arena (and the tree-edge bitmap an
    // edge-mark epoch), so a warm round builds the reduction without
    // touching the heap for anything but the returned `Reduction` itself.
    with_thread_scratch(|scratch| {
        // Tree-edge marks: every tree edge incident to a node is either
        // its parent edge or a child's parent edge.
        scratch.begin_edges(g.m());
        for v in 0..n {
            if let Some(e) = tree.parent_edge(v) {
                scratch.mark_edge(e);
            }
        }
        // One clockwise pass per node computes both the child order
        // c_1(v), ..., c_χ(v) (clockwise from the parent edge; for the root by
        // increasing ρ_r position) and every corner's non-tree edge-ends.
        // Corner 0 opens with the parent edge; corner i > 0 with the edge to
        // c_i(v); each corner's ends are the non-tree edges up to the next tree
        // edge. The root's corner 0 is empty, and its pre-first-child sector
        // wraps into corner χ (the first-counterclockwise-tree-edge rule).
        // Corner i of v spans ends[corner_start[base[v] + i]..corner_start[base[v] + i + 1]].
        // Children live in a flat offsets-plus-data table — per-node views
        // are slices `child_flat[child_off[v]..child_off[v + 1]]`, not
        // per-node vectors.
        let mut child_off = scratch.arena().take();
        let mut child_flat = scratch.arena().take();
        let mut ends = scratch.arena().take();
        let mut corner_start = scratch.arena().take();
        let mut base = scratch.arena().take();
        let mut prefix = scratch.arena().take();
        base.resize(n + 1, 0);
        for v in 0..n {
            base[v] = corner_start.len();
            child_off.push(child_flat.len());
            let order = rho.order_at(v);
            let d = order.len();
            corner_start.push(ends.len());
            match tree.parent_edge(v) {
                Some(pe) => {
                    let pos = rho.position(v, pe);
                    for k in 1..d {
                        let e = order[(pos + k) % d];
                        if scratch.edge_marked(e) {
                            child_flat.push(g.edge(e).other(v));
                            corner_start.push(ends.len());
                        } else {
                            ends.push(e);
                        }
                    }
                }
                None => {
                    prefix.clear();
                    let mut seen_child = false;
                    for &e in order {
                        if scratch.edge_marked(e) {
                            child_flat.push(g.edge(e).other(v));
                            corner_start.push(ends.len());
                            seen_child = true;
                        } else if seen_child {
                            ends.push(e);
                        } else {
                            prefix.push(e);
                        }
                    }
                    ends.extend_from_slice(&prefix);
                }
            }
        }
        base[n] = corner_start.len();
        child_off.push(child_flat.len());
        corner_start.push(ends.len());
        // Emit the boundary walk: the Euler tour of the child table
        // (every visit in tour order), inlined so the tour is never
        // materialized. Node ids are assigned in walk order, so the total
        // count is known up front: a spanning tree's tour makes 2(n-1)+1
        // visits, plus one node per non-tree edge-end.
        let hn = 2 * n.saturating_sub(1) + 1 + ends.len();
        let mut h = Graph::new(hn);
        let mut copy_of: Vec<NodeId> = Vec::with_capacity(hn);
        // end_node[2e + side]: the h-node of edge e's end at edge.u (side 0)
        // or edge.v (side 1).
        let mut end_node = scratch.arena().take();
        end_node.resize(2 * g.m(), usize::MAX);
        let mut visit_count = scratch.arena().take();
        visit_count.resize(n, 0);
        let mut emit_visit = |v: NodeId| {
            let i = visit_count[v];
            visit_count[v] += 1;
            // Anchor for the visit itself.
            copy_of.push(v);
            let c = base[v] + i;
            for &e in &ends[corner_start[c]..corner_start[c + 1]] {
                end_node[2 * e + usize::from(g.edge(e).u != v)] = copy_of.len();
                copy_of.push(v);
            }
        };
        // DFS over the child table; a node is visited on arrival and
        // again after each child's subtree returns.
        let mut stack_node = scratch.arena().take();
        let mut stack_cur = scratch.arena().take();
        stack_node.push(root);
        stack_cur.push(child_off[root]);
        emit_visit(root);
        while let (Some(&v), Some(cur)) = (stack_node.last(), stack_cur.last_mut()) {
            if *cur < child_off[v + 1] {
                let c = child_flat[*cur];
                *cur += 1;
                emit_visit(c);
                stack_node.push(c);
                stack_cur.push(child_off[c]);
            } else {
                stack_node.pop();
                stack_cur.pop();
                if let Some(&p) = stack_node.last() {
                    emit_visit(p);
                }
            }
        }
        debug_assert_eq!(copy_of.len(), hn);
        let path: Vec<NodeId> = (0..hn).collect();
        for i in 0..hn - 1 {
            h.add_edge(i, i + 1);
        }
        let mut arc_of_edge = vec![None; g.m()];
        for e in 0..g.m() {
            if scratch.edge_marked(e) {
                continue;
            }
            let xu = end_node[2 * e];
            let xv = end_node[2 * e + 1];
            debug_assert_ne!(xu, xv);
            if xu.abs_diff(xv) > 1 {
                arc_of_edge[e] = Some(h.add_edge(xu, xv));
            }
            // Adjacent end nodes: the arc is parallel to the path and can
            // never cross; leave it implicit.
        }
        // Reverse take order: the arena is a LIFO, so the next round's
        // takes see each buffer back in the role it grew for.
        let arena = scratch.arena();
        for buf in [
            stack_cur,
            stack_node,
            visit_count,
            end_node,
            prefix,
            base,
            corner_start,
            ends,
            child_flat,
            child_off,
        ] {
            arena.give(buf);
        }
        Reduction { h, path, copy_of, arc_of_edge }
    })
}

/// Cheat strategies for invalid embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbCheat {
    /// Honest reduction + honest sweep labels on the crossing `h`.
    HonestSweep,
    /// Honest reduction + force-marked violating arc.
    ForceMark,
    /// Commit a fake (non-spanning) tree.
    FakeTree,
}

/// All cheats in interface order.
pub const EMB_CHEATS: [EmbCheat; 3] =
    [EmbCheat::HonestSweep, EmbCheat::ForceMark, EmbCheat::FakeTree];

/// The planar-embedding DIP bound to an instance.
#[derive(Debug)]
pub struct EmbeddedPlanarity<'a> {
    inst: &'a EmbInstance,
    params: PopParams,
    transport: Transport,
}

impl<'a> EmbeddedPlanarity<'a> {
    /// Binds the protocol to an instance.
    pub fn new(inst: &'a EmbInstance, params: PopParams, transport: Transport) -> Self {
        EmbeddedPlanarity { inst, params, transport }
    }

    fn g(&self) -> &Graph {
        &self.inst.graph
    }

    /// One full run.
    pub fn run(&self, cheat: Option<EmbCheat>, seed: u64) -> RunResult {
        self.run_with(cheat, seed, &NoopRecorder)
    }

    /// [`EmbeddedPlanarity::run`] with an instrumentation [`Recorder`]:
    /// stage spans, Lemma 2.5 primitive spans, and per-round bit counters
    /// ([`trace_stats`]). With a disabled recorder this is the same run.
    pub fn run_with(&self, cheat: Option<EmbCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let res = self.run_inner(cheat, seed, rec);
        trace_stats(rec, "embedded-planarity", &res.stats);
        res
    }

    fn run_inner(&self, cheat: Option<EmbCheat>, seed: u64, rec: &dyn Recorder) -> RunResult {
        let g = self.g();
        let n = g.n();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rej = Rejections::new();
        let mut stats = SizeStats { rounds: 5, ..Default::default() };
        if n <= 2 {
            return rej.into_result(stats);
        }

        // ---- Spanning-tree commitment + verification ----
        let stage1 = span(rec, 0, SpanId::at("embedded-planarity/stage", 1));
        let st_watch = Stopwatch::start(rec, "round/spanning-tree");
        let root = 0;
        let tree = if cheat == Some(EmbCheat::FakeTree) {
            // A non-spanning "tree": BFS stopped halfway, rest are roots.
            let full = RootedForest::bfs_spanning_tree(g, root);
            let mut parent: Vec<Option<(NodeId, usize)>> = vec![None; n];
            for v in 0..n / 2 {
                if let (Some(p), Some(e)) = (full.parent(v), full.parent_edge(v)) {
                    parent[v] = Some((p, e));
                }
            }
            RootedForest::from_parents(g, parent)
        } else {
            RootedForest::bfs_spanning_tree(g, root)
        };
        let st = SpanningTreeVerification::new(StParams::for_n(
            n,
            self.params.c,
            self.params.st_repetitions,
        ));
        let st_coins = st.draw_coins(n, &mut rng);
        let st_msgs = st.honest_response_traced(&tree, &st_coins, rec);
        for v in 0..n {
            st.check(g, v, tree.parent(v), tree.parent(v).is_none(), &st_coins, &st_msgs, &mut rej);
        }
        if !tree.is_spanning_tree(g) {
            stats.per_round_max_bits = vec![8, st.msg_bits(), 0];
            stats.coin_bits = n * st.coin_bits();
            return rej.into_result(stats);
        }

        drop(st_watch);
        drop(stage1);

        // ---- The reduction + simulated path-outerplanarity on h ----
        let _stage2 = span(rec, 0, SpanId::at("embedded-planarity/stage", 2));
        let red_watch = Stopwatch::start(rec, "round/reduction");
        let red = build_reduction(g, &self.inst.rho, &tree, root);
        // Observe-only capture of the reduction shape for replay: the
        // auxiliary graph h and the Hamiltonian-path witness are pure
        // functions of (g, rho, tree), so their summary pins the stage-2
        // input deterministically.
        pdip_core::capture::emit("emb/reduction", |s| {
            s.put_usize(red.h.n());
            s.put_usize(red.h.m());
            s.put_usize(red.path.len());
            for &v in &red.path {
                s.put_usize(v);
            }
        });
        // Hand h and the witness path to the sub-instance by move — only
        // the copy_of map is needed after the sub-run (rejection remap).
        let Reduction { h, path, copy_of, arc_of_edge: _ } = red;
        let pop_inst = PopInstance { witness: Some(path), is_yes: self.inst.is_yes, graph: h };
        drop(red_watch);
        let sub = PathOuterplanarity::new(&pop_inst, self.params, self.transport);
        let sub_cheat = match cheat {
            Some(EmbCheat::HonestSweep) => Some(PopCheat::NestingHonestSweep),
            Some(EmbCheat::ForceMark) => Some(PopCheat::NestingForceMark),
            _ => None,
        };
        let res = sub.run_with(sub_cheat, rng.gen(), rec);
        // Each original node simulates at most 5 copies of h — multiply the
        // per-round bounds accordingly (§7 simulation argument).
        let mut sub_stats = res.stats.clone();
        for b in sub_stats.per_round_max_bits.iter_mut() {
            *b *= 5;
        }
        stats.merge_parallel(&sub_stats);
        let own = SizeStats {
            per_round_max_bits: vec![8, st.msg_bits(), 0],
            per_round_total_bits: vec![],
            coin_bits: n * st.coin_bits(),
            rounds: 5,
        };
        stats.merge_parallel(&own);
        for ((copy, reason), kind) in res.rejections.into_iter().zip(res.kinds) {
            let orig = copy_of.get(copy).copied().unwrap_or(0);
            rej.reject_as(orig, kind, format!("emb/h: {reason}"));
        }
        rej.into_result(stats)
    }
}

impl DipProtocol for EmbeddedPlanarity<'_> {
    fn name(&self) -> String {
        "embedded-planarity".into()
    }

    fn rounds(&self) -> usize {
        5
    }

    fn instance_size(&self) -> usize {
        self.g().n()
    }

    fn is_yes_instance(&self) -> bool {
        self.inst.is_yes
    }

    fn run_honest(&self, seed: u64) -> RunResult {
        self.run(None, seed)
    }

    fn cheat_names(&self) -> Vec<String> {
        vec!["honest-sweep".into(), "force-mark".into(), "fake-tree".into()]
    }

    fn run_cheat(&self, strategy: usize, seed: u64) -> RunResult {
        self.run(Some(EMB_CHEATS[strategy]), seed)
    }

    fn run_honest_traced(&self, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(None, seed, rec)
    }

    fn run_cheat_traced(&self, strategy: usize, seed: u64, rec: &dyn Recorder) -> RunResult {
        self.run_with(Some(EMB_CHEATS[strategy]), seed, rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdip_graph::gen::planar::{random_planar, random_triangulation, scrambled_embedding};
    use pdip_graph::outerplanar::is_path_outerplanar_with;

    #[test]
    fn lemma_7_3_forward() {
        // Valid embeddings reduce to path-outerplanar graphs.
        let mut rng = SmallRng::seed_from_u64(91);
        for n in [4usize, 8, 20, 60] {
            for keep in [0.3, 0.9] {
                let inst = random_planar(n, keep, &mut rng);
                let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
                let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
                assert!(is_path_outerplanar_with(&red.h, &red.path), "n={n} keep={keep}");
            }
        }
    }

    #[test]
    fn lemma_7_3_reverse() {
        // Invalid embeddings reduce to crossing (non-nested) instances.
        let mut rng = SmallRng::seed_from_u64(92);
        let mut crossing = 0;
        let trials = 20;
        for _ in 0..trials {
            let inst = scrambled_embedding(30, &mut rng);
            let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
            let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
            if !is_path_outerplanar_with(&red.h, &red.path) {
                crossing += 1;
            }
        }
        assert!(crossing >= trials - 2, "only {crossing}/{trials} reduced to crossings");
    }

    #[test]
    fn reduction_shape() {
        let mut rng = SmallRng::seed_from_u64(93);
        let inst = random_triangulation(12, &mut rng);
        let tree = RootedForest::bfs_spanning_tree(&inst.graph, 0);
        let red = build_reduction(&inst.graph, &inst.rho, &tree, 0);
        assert_eq!(red.h.n(), (2 * 12 - 1) + 2 * (inst.graph.m() - 11));
        assert_eq!(red.path.len(), red.h.n());
    }

    #[test]
    fn perfect_completeness() {
        let mut rng = SmallRng::seed_from_u64(94);
        for n in [4usize, 10, 40, 120] {
            let gen = random_planar(n, 0.6, &mut rng);
            let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: true };
            let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
            for seed in 0..3 {
                let res = p.run_honest(seed);
                assert!(res.accepted(), "n={n}: {:?}", res.rejections.first());
            }
        }
    }

    #[test]
    fn scrambled_embeddings_rejected() {
        let mut rng = SmallRng::seed_from_u64(95);
        for cheat in [EmbCheat::HonestSweep, EmbCheat::ForceMark] {
            let mut accepted = 0;
            for seed in 0..60 {
                let gen = scrambled_embedding(25, &mut rng);
                let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: false };
                let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
                if p.run(Some(cheat), seed).accepted() {
                    accepted += 1;
                }
            }
            assert!(accepted <= 6, "{cheat:?}: accepted {accepted}/60");
        }
    }

    #[test]
    fn fake_tree_rejected() {
        let mut rng = SmallRng::seed_from_u64(96);
        let gen = random_planar(30, 0.5, &mut rng);
        let inst = EmbInstance { graph: gen.graph, rho: gen.rho, is_yes: true };
        let p = EmbeddedPlanarity::new(&inst, PopParams::default(), Transport::Native);
        let mut accepted = 0;
        for seed in 0..100 {
            if p.run(Some(EmbCheat::FakeTree), seed).accepted() {
                accepted += 1;
            }
        }
        assert!(accepted <= 10, "fake tree accepted {accepted}/100");
    }
}
